"""Unit tests for the streaming R-peak detector."""

import pytest

from repro.apps.rpeak_detector import RPeakDetector
from repro.signals.ecg import SyntheticEcg


def run_detector(ecg, fs=200.0, duration_s=30.0, **kwargs):
    """Feed a sampled ECG through a detector; return detection times."""
    detector = RPeakDetector(fs, **kwargs)
    detections = []
    count = int(duration_s * fs)
    for index in range(count):
        t = index / fs
        lag = detector.process(ecg.value_at(t))
        if lag > 0:
            detections.append((index - lag) / fs)  # beat time, not confirm
    return detector, detections


class TestDetectionAccuracy:
    def test_finds_all_beats_at_75_bpm(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        _, detections = run_detector(ecg, duration_s=30.0)
        truth = [t for t in ecg.r_peak_times(30.0) if t > 1.0]
        matched = sum(1 for t in truth
                      if any(abs(d - t) < 0.06 for d in detections))
        assert matched >= len(truth) - 1

    def test_no_false_positives_on_clean_signal(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        _, detections = run_detector(ecg, duration_s=30.0)
        truth = ecg.r_peak_times(30.0)
        false_positives = [d for d in detections
                           if not any(abs(d - t) < 0.06 for t in truth)]
        assert false_positives == []

    def test_beat_count_tracks_heart_rate(self):
        for bpm in (50.0, 75.0, 100.0, 140.0):
            ecg = SyntheticEcg(heart_rate_bpm=bpm)
            detector, _ = run_detector(ecg, duration_s=30.0)
            expected = bpm / 60.0 * 29.0  # minus warm-up second
            assert detector.beats_detected \
                == pytest.approx(expected, rel=0.08)

    def test_works_at_different_sampling_rates(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        for fs in (100.0, 200.0, 500.0):
            detector, _ = run_detector(ecg, fs=fs, duration_s=20.0)
            assert detector.beats_detected == pytest.approx(24, abs=3)

    def test_lag_contract_positive_and_small(self):
        """The return value counts samples since the peak (paper's
        contract: 'how many samples ago a beat was detected')."""
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        detector = RPeakDetector(200.0)
        lags = []
        for index in range(int(200 * 10)):
            lag = detector.process(ecg.value_at(index / 200.0))
            if lag:
                lags.append(lag)
        assert lags
        assert all(0 < lag < 40 for lag in lags)  # < 200 ms at 200 Hz

    def test_refractory_blocks_t_wave(self):
        """The T wave is ~35% of R; with a 50% threshold and refractory
        it must never double-count."""
        ecg = SyntheticEcg(heart_rate_bpm=60.0)
        detector, detections = run_detector(ecg, duration_s=20.0)
        intervals = [b - a for a, b in zip(detections, detections[1:])]
        assert all(i > 0.5 for i in intervals)

    def test_amplitude_invariance(self):
        """Adaptive threshold: gain should not matter."""
        for amplitude in (0.2, 1.0, 5.0):
            ecg = SyntheticEcg(heart_rate_bpm=75.0,
                               amplitude_mv=amplitude)
            detector, _ = run_detector(ecg, duration_s=20.0)
            assert detector.beats_detected == pytest.approx(24, abs=2)

    def test_dc_offset_invariance(self):
        """Baseline removal: a big DC offset must not break detection
        (the ADC codes sit around mid-scale)."""
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        detector = RPeakDetector(200.0)
        for index in range(int(200 * 20)):
            detector.process(2048.0 + 800.0 * ecg.value_at(index / 200.0))
        assert detector.beats_detected == pytest.approx(24, abs=2)


class TestDetectorMechanics:
    def test_flat_signal_no_beats(self):
        detector = RPeakDetector(200.0)
        for _ in range(2000):
            assert detector.process(0.0) == 0
        assert detector.beats_detected == 0

    def test_warmup_suppresses_early_output(self):
        detector = RPeakDetector(200.0, warmup_s=1.0)
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        early = [detector.process(ecg.value_at(i / 200.0))
                 for i in range(200)]  # first second
        assert all(lag == 0 for lag in early)

    def test_samples_processed(self):
        detector = RPeakDetector(200.0)
        for _ in range(5):
            detector.process(0.0)
        assert detector.samples_processed == 5

    def test_last_beat_index(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        detector = RPeakDetector(200.0)
        for index in range(int(200 * 5)):
            detector.process(ecg.value_at(index / 200.0))
        assert detector.last_beat_index is not None
        assert detector.last_beat_index < detector.samples_processed

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RPeakDetector(0.0)
        with pytest.raises(ValueError):
            RPeakDetector(200.0, baseline_alpha=1.5)
        with pytest.raises(ValueError):
            RPeakDetector(200.0, amplitude_decay=0.0)
        with pytest.raises(ValueError):
            RPeakDetector(200.0, threshold_fraction=1.0)
