"""Rpeak application (Section 5.2): on-node beat detection.

Samples each channel at 200 Hz and runs the beat-detection algorithm on
every sample; when the algorithm reports a beat, a small packet with
the channel and the sample lag is queued for the node's next TDMA slot.
Moving the computation onto the node cuts the radio payload from a
continuous stream to ~1.25 packets/s (at 75 bpm), which is the 65 %
energy saving Figure 4 quantifies.

MCU cost: each channel-sample pays ``sample_acquisition`` plus the
calibrated ``rpeak_algorithm`` cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

from ..core.calibration import ModelCalibration
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..mac.base import AppPayload, NodeMac
from ..sim.kernel import Simulator
from ..sim.simtime import to_seconds
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import SamplingApplication
from .rpeak_detector import RPeakDetector

#: The Rpeak sampling frequency is fixed by the algorithm (Section 5.2).
RPEAK_SAMPLING_HZ = 200.0

#: On-air payload of one beat report: channel, lag, beat counter.
BEAT_PAYLOAD_BYTES = 4


class RpeakApp(SamplingApplication):
    """Detect beats locally; transmit one small packet per beat.

    Args:
        detector_kwargs: overrides forwarded to each channel's
            :class:`RPeakDetector` (threshold, refractory, ...).
        pending_limit: bound on queued, not-yet-transmitted beat
            reports; overflow drops the oldest (diagnostic counter).
    """

    def __init__(self, sim: Simulator, scheduler: TaskScheduler,
                 asic: BiopotentialAsic, adc: Adc12, mac: NodeMac,
                 calibration: ModelCalibration,
                 channels: Sequence[int] = (0, 1),
                 sampling_hz: float = RPEAK_SAMPLING_HZ,
                 detector_kwargs: Optional[Dict] = None,
                 pending_limit: int = 16,
                 name: str = "rpeak",
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, scheduler, asic, adc, mac, calibration,
                         channels, sampling_hz, name=name, trace=trace)
        kwargs = dict(detector_kwargs or {})
        self._detectors = {channel: RPeakDetector(sampling_hz, **kwargs)
                           for channel in self.channels}
        self._pending: Deque[Dict] = deque(maxlen=pending_limit)
        self.beats_detected = 0
        self.beat_packets_sent = 0
        self.reports_dropped = 0
        self._beat_counter = 0

    # ------------------------------------------------------------------
    def extra_cycles_per_channel(self) -> int:
        return self._cal.mcu_costs.rpeak_algorithm

    def handle_samples(self, codes: Tuple[int, ...]) -> None:
        for channel, code in zip(self.channels, codes):
            lag = self._detectors[channel].process(float(code))
            if lag > 0:
                self._beat_counter += 1
                self.beats_detected += 1
                report = {
                    "kind": "beat",
                    "channel": channel,
                    "lag_samples": lag,
                    "beat_id": self._beat_counter,
                    "detected_at_s": to_seconds(self._sim.now),
                }
                if len(self._pending) == self._pending.maxlen:
                    self.reports_dropped += 1
                self._pending.append(report)

    def next_payload(self) -> Optional[AppPayload]:
        if not self._pending:
            return None  # idle cycle: the radio slot stays unused
        report = self._pending.popleft()
        self.beat_packets_sent += 1
        return (BEAT_PAYLOAD_BYTES, report)

    # ------------------------------------------------------------------
    @property
    def pending_reports(self) -> int:
        """Beat reports waiting for a slot."""
        return len(self._pending)

    def detector_for(self, channel: int) -> RPeakDetector:
        """The per-channel detector (tests, diagnostics)."""
        return self._detectors[channel]


__all__ = ["RpeakApp", "RPEAK_SAMPLING_HZ", "BEAT_PAYLOAD_BYTES"]
