"""Tests for the typestate lifecycle verifier (LIF001-LIF005).

Three layers: the on-disk seeded-bug fixtures (each caught in both
directions — the buggy class fires, its fixed twin in the same file
stays silent); inline snippets pinning each rule's firing condition;
and the meta-level guarantees — the live specs in
``repro.core.lifecycles`` validate, LIF003 statically re-derives the
runtime ``RadioError`` guards from the *real* radio spec, and the
shipped ``src`` tree is clean under every LIF rule.
"""

import dataclasses
import pathlib
import textwrap

import pytest

from repro.core.lifecycles import (ALL_LIFECYCLE_SPECS,
                                   HANDLE_LIFECYCLE, RADIO_LIFECYCLE,
                                   SINK_LIFECYCLE, SPAN_LIFECYCLE,
                                   LifecycleSpec)
from repro.lint import LintConfig, lint_paths, lint_source, load_config

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"
LIF_CODES = ("LIF001", "LIF002", "LIF003", "LIF004", "LIF005")


def lif_findings(source, path="<fixture>", module_path="app/widget.py"):
    findings = lint_source(source, path, LintConfig(),
                           module_path=module_path)
    return [f for f in findings
            if f.rule.startswith("LIF") and not f.suppressed]


#: Shared template: a co-located spec, an exempt resource class, and a
#: holder whose method body each test drops in.
RADIO_TEMPLATE = '''\
from repro.core.lifecycles import LifecycleSpec

SPEC = LifecycleSpec(
    resource="fake-radio",
    module="hw/fake_radio.py",
    class_names=("FakeRadio",),
    acquire=("power_up",),
    release=("power_down",),
    uses=("send", "start_rx"),
    idempotent_release=False,
    boundary=(("on_start", "on_stop"),),
)


class FakeRadio:
    def power_up(self):
        pass

    def power_down(self):
        pass

    def send(self, payload):
        pass

    def start_rx(self):
        pass


class Holder:
    def __init__(self, radio: FakeRadio):
        self._radio = radio
        self._want = False
        self._cold = False

BODY
'''


def holder(body):
    return RADIO_TEMPLATE.replace(
        "BODY", textwrap.indent(textwrap.dedent(body), "    "))


class TestFixtures:
    """Each on-disk fixture is caught in both directions at once: the
    expected rules fire on the buggy classes only, and the fixed twins
    in the same file contribute nothing."""

    CASES = (
        ("leaked_radio", [("LIF001", "LeakyMac")]),
        ("dangling_timer", [("LIF004", "every"),
                            ("LIF004", "after")]),
        ("unbalanced_span", [("LIF001", "phase_close")]),
    )

    @pytest.mark.parametrize("name,expected",
                             CASES, ids=[c[0] for c in CASES])
    def test_fixture(self, name, expected):
        path = FIXTURES / f"{name}.py"
        found = lif_findings(path.read_text(encoding="utf-8"),
                             str(path),
                             module_path=f"tests/fixtures/lint/{name}.py")
        assert [f.rule for f in found] == [rule for rule, _ in expected]
        for finding, (_, fragment) in zip(found, expected):
            assert fragment in finding.message

    def test_leaked_radio_fix_silences(self):
        source = (FIXTURES / "leaked_radio.py").read_text(
            encoding="utf-8")
        fixed = source.replace(
            "self._started = False  # the radio stays in stand-by "
            "forever",
            "self._started = False\n        self._radio.power_down()")
        assert fixed != source
        assert lif_findings(fixed) == []

    def test_unbalanced_span_fix_silences(self):
        source = (FIXTURES / "unbalanced_span.py").read_text(
            encoding="utf-8")
        fixed = source.replace(
            'self._spans.phase_open("tx")  # never paired with '
            'phase_close',
            'self._spans.phase_open("tx")\n'
            '        self._spans.phase_close("tx", 0.0)')
        assert fixed != source
        assert lif_findings(fixed) == []


class TestBoundaryLeak:
    """LIF001: acquire on every start path, leak on a stop path."""

    def test_unconditional_leak_names_witness(self):
        found = lif_findings(holder('''
        def on_start(self):
            self._radio.power_up()

        def on_stop(self):
            self._want = False
        '''))
        assert [f.rule for f in found] == ["LIF001"]
        assert "self._radio" in found[0].message
        assert "power_down" in found[0].message

    def test_conditional_stop_path_leaks(self):
        found = lif_findings(holder('''
        def on_start(self):
            self._radio.power_up()

        def on_stop(self):
            if self._cold:
                return
            self._radio.power_down()
        '''))
        assert [f.rule for f in found] == ["LIF001"]
        assert "self._cold" in found[0].message  # the witness guard

    def test_release_on_every_path_is_clean(self):
        assert lif_findings(holder('''
        def on_start(self):
            self._radio.power_up()

        def on_stop(self):
            if self._cold:
                self._radio.power_down()
                return
            self._radio.power_down()
        ''')) == []

    def test_release_via_helper_discharges(self):
        assert lif_findings(holder('''
        def on_start(self):
            self._radio.power_up()

        def on_stop(self):
            self._teardown()

        def _teardown(self):
            self._radio.power_down()
        ''')) == []

    def test_conditional_acquire_carries_no_obligation(self):
        assert lif_findings(holder('''
        def on_start(self):
            if self._want:
                self._radio.power_up()
                self._radio.power_down()

        def on_stop(self):
            self._want = False
        ''')) == []


class TestDoubleRelease:
    """LIF002: release without acquire on a non-idempotent resource."""

    def test_double_power_down_fires(self):
        found = lif_findings(holder('''
        def reset(self):
            self._radio.power_down()
            self._radio.power_down()
        '''))
        assert [f.rule for f in found] == ["LIF002"]

    def test_reacquire_between_releases_is_clean(self):
        assert lif_findings(holder('''
        def reset(self):
            self._radio.power_down()
            self._radio.power_up()
            self._radio.power_down()
        ''')) == []

    def test_idempotent_release_is_exempt(self):
        source = holder('''
        def reset(self):
            self._radio.power_down()
            self._radio.power_down()
        ''').replace("idempotent_release=False",
                     "idempotent_release=True")
        assert lif_findings(source) == []


class TestUseAfterRelease:
    """LIF003: the static form of the runtime RadioError guards."""

    def test_send_after_power_down_fires(self):
        found = lif_findings(holder('''
        def drain(self):
            self._radio.power_down()
            self._radio.send(b"x")
        '''))
        assert [f.rule for f in found] == ["LIF003"]
        assert "use-after-release" in found[0].message

    def test_maybe_released_does_not_fire(self):
        # Path-sensitivity: only *definitely* released receivers fire.
        assert lif_findings(holder('''
        def drain(self):
            if self._cold:
                self._radio.power_down()
            self._radio.send(b"x")
        ''')) == []

    def test_rederives_real_radio_guard(self, tmp_path):
        """The shipped RADIO_LIFECYCLE spec proves what the runtime
        ``RadioError`` guard in ``hw/radio.py`` checks dynamically."""
        snippet = textwrap.dedent('''\
        class Collector:
            def __init__(self, radio: Nrf2401):
                self._radio = radio

            def shutdown_then_poll(self):
                self._radio.power_down()
                self._radio.start_rx()
        ''')
        target = tmp_path / "collector.py"
        target.write_text(snippet, encoding="utf-8")
        spec_file = ROOT / "src" / "repro" / "core" / "lifecycles.py"
        config = dataclasses.replace(LintConfig(), select=LIF_CODES)
        report = lint_paths([spec_file, target], config)
        rules = [f.rule for f in report.findings if not f.suppressed]
        assert rules == ["LIF003"]


class TestUnownedHandles:
    """LIF004: escaping resources with no owner."""

    SCHED_TEMPLATE = '''\
    from repro.core.lifecycles import LifecycleSpec

    SPEC = LifecycleSpec(
        resource="fake-tick",
        module="sim/fake_kernel.py",
        class_names=("FakeKernel",),
        release=("cancel_event",),
        boundary=(("on_start", "on_stop"),),
        handle_factories=("every",),
        reschedule_factories=("at", "after"),
    )


    def cancel_event(entry):
        entry[-1] = None


    class FakeKernel:
        def every(self, period, callback):
            return [period, callback]

        def after(self, delay, callback):
            return [delay, callback]


    class App:
        def __init__(self, sim: FakeKernel):
            self._sim = sim
            self._tick = None

    BODY
    '''

    def sched(self, body):
        template = textwrap.dedent(self.SCHED_TEMPLATE)
        return template.replace(
            "BODY", textwrap.indent(textwrap.dedent(body), "    "))

    def test_discarded_every_fires(self):
        found = lif_findings(self.sched('''
        def on_start(self):
            self._sim.every(1.0, self.poll)

        def on_stop(self):
            pass

        def poll(self):
            pass
        '''))
        assert [f.rule for f in found] == ["LIF004"]
        assert "never be cancelled" in found[0].message

    def test_stored_and_cancelled_is_clean(self):
        assert lif_findings(self.sched('''
        def on_start(self):
            self._tick = self._sim.every(1.0, self.poll)

        def on_stop(self):
            cancel_event(self._tick)

        def poll(self):
            pass
        ''')) == []

    def test_stored_but_never_cancelled_leaks_at_boundary(self):
        found = lif_findings(self.sched('''
        def on_start(self):
            self._tick = self._sim.every(1.0, self.poll)

        def on_stop(self):
            self._tick = self._tick

        def poll(self):
            pass
        '''))
        assert [f.rule for f in found] == ["LIF001"]

    def test_unconditional_self_rearm_fires(self):
        found = lif_findings(self.sched('''
        def poll(self):
            self._sim.after(1.0, self.poll)
        '''))
        assert [f.rule for f in found] == ["LIF004"]
        assert "re-arms itself" in found[0].message

    def test_guarded_self_rearm_is_clean(self):
        assert lif_findings(self.sched('''
        def poll(self):
            if self._tick is None:
                return
            self._sim.after(1.0, self.poll)
        ''')) == []


class TestGuardDecorrelation:
    """LIF005: acquire and release guarded by different conditions."""

    def test_mismatched_guards_fire(self):
        found = lif_findings(holder('''
        def toggle(self):
            if self._want:
                self._radio.power_up()
            if self._cold:
                self._radio.power_down()
        '''))
        assert "LIF005" in [f.rule for f in found]
        assert "decorrelates" in next(
            f.message for f in found if f.rule == "LIF005")

    def test_matching_guards_are_clean(self):
        assert lif_findings(holder('''
        def toggle(self):
            if self._want:
                self._radio.power_up()
            if self._want:
                self._radio.power_down()
        ''')) == []


class TestSpecTables:
    """The declared protocols validate, and malformed ones refuse."""

    def test_all_specs_well_formed(self):
        resources = [spec.resource for spec in ALL_LIFECYCLE_SPECS]
        assert len(resources) == len(set(resources))
        for spec in ALL_LIFECYCLE_SPECS:
            assert spec.module.endswith(".py")
            assert spec.class_names

    def test_radio_spec_matches_runtime_guards(self):
        assert RADIO_LIFECYCLE.uses >= ("send", "start_rx")
        assert not RADIO_LIFECYCLE.idempotent_release
        assert "_stop_pending" in RADIO_LIFECYCLE.defer_attrs

    def test_sink_spec_demands_unwind_safety(self):
        assert SINK_LIFECYCLE.acquire_on_construct
        assert SINK_LIFECYCLE.release_on_unwind

    def test_handle_spec_names_factories(self):
        assert "every" in HANDLE_LIFECYCLE.handle_factories
        assert set(HANDLE_LIFECYCLE.reschedule_factories) == \
            {"at", "after"}

    def test_span_spec_is_class_paired(self):
        assert SPAN_LIFECYCLE.class_paired

    def test_empty_class_names_rejected(self):
        with pytest.raises(ValueError):
            LifecycleSpec(resource="x", module="a.py", class_names=())

    def test_boundary_without_release_rejected(self):
        with pytest.raises(ValueError):
            LifecycleSpec(resource="x", module="a.py",
                          class_names=("C",), acquire=("open",),
                          boundary=(("on_start", "on_stop"),))

    def test_overlapping_acquire_release_rejected(self):
        with pytest.raises(ValueError):
            LifecycleSpec(resource="x", module="a.py",
                          class_names=("C",), acquire=("flip",),
                          release=("flip",))

    def test_self_paired_phase_rejected(self):
        with pytest.raises(ValueError):
            LifecycleSpec(resource="x", module="a.py",
                          class_names=("C",),
                          class_paired=(("tick", "tick"),))


class TestTreeIsCleanUnderLifecycle:
    """Meta-test: the shipped src tree carries no lifecycle bugs."""

    def test_src_clean_under_lif_rules(self):
        config = dataclasses.replace(
            load_config([ROOT / "src"]), select=LIF_CODES)
        report = lint_paths([ROOT / "src"], config)
        assert report.ok, [
            f"{f.path}:{f.line} {f.rule} {f.message}"
            for f in report.unsuppressed]

    def test_report_carries_lifecycle_artifacts(self):
        config = dataclasses.replace(
            load_config([ROOT / "src"]), select=LIF_CODES)
        report = lint_paths([ROOT / "src"], config)
        artifacts = report.extras["lifecycle"]
        resources = {spec["resource"] for spec in artifacts["specs"]}
        assert {"radio", "timer", "sched-handle", "trace-sink",
                "span"} <= resources
        assert artifacts["boundary_obligations"] >= 1
        assert artifacts["functions_walked"] > 100
