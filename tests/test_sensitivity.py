"""Tests for the calibration sensitivity (tornado) analysis."""

import pytest

from repro.analysis.sensitivity import (
    PARAMETERS,
    render_tornado,
    tornado,
)
from repro.net.scenario import BanScenarioConfig


def config_for(app="ecg_streaming", cycle_ms=30.0):
    return BanScenarioConfig(
        mac="static", app=app, num_nodes=5, cycle_ms=cycle_ms,
        sampling_hz=205.0 if app == "ecg_streaming" else None,
        measure_s=60.0)


class TestTornado:
    def test_sorted_by_swing(self):
        entries = tornado(config_for(), relative=0.1)
        swings = [entry.swing_mj for entry in entries]
        assert swings == sorted(swings, reverse=True)
        assert len(entries) == len(PARAMETERS)

    def test_rx_current_dominates_streaming(self):
        """At the 30 ms cycle, the beacon window at RX current is the
        budget — RX current and the static guard lead must rank first."""
        entries = tornado(config_for(), relative=0.1)
        top_two = {entries[0].parameter, entries[1].parameter}
        assert top_two == {"radio_rx_current", "static_guard_lead"}

    def test_rx_swing_magnitude(self):
        """±10% of RX current swings the window energy by ~20% of the
        radio's ~456 mJ window share => ~91 mJ."""
        entries = tornado(config_for(), relative=0.1)
        rx = next(e for e in entries
                  if e.parameter == "radio_rx_current")
        assert rx.swing_mj == pytest.approx(91.2, rel=0.03)
        assert rx.low_mj < rx.nominal_mj < rx.high_mj

    def test_rpeak_algorithm_matters_only_for_rpeak(self):
        streaming = {e.parameter: e.swing_mj
                     for e in tornado(config_for(), relative=0.1)}
        rpeak = {e.parameter: e.swing_mj
                 for e in tornado(config_for(app="rpeak", cycle_ms=120.0),
                                  relative=0.1)}
        assert streaming["rpeak_algorithm_cost"] == 0.0
        assert rpeak["rpeak_algorithm_cost"] > 1.0

    def test_quantity_selection(self):
        radio_only = tornado(config_for(), relative=0.1,
                             quantity="radio")
        by_name = {e.parameter: e for e in radio_only}
        assert by_name["mcu_active_current"].swing_mj == 0.0
        assert by_name["radio_rx_current"].swing_mj > 0.0

    def test_dynamic_guard_only_affects_dynamic(self):
        static_cfg = config_for()
        entries = {e.parameter: e.swing_mj
                   for e in tornado(static_cfg, relative=0.2)}
        assert entries["dynamic_guard_base"] == 0.0
        dynamic_cfg = BanScenarioConfig(mac="dynamic",
                                        app="ecg_streaming",
                                        num_nodes=5, measure_s=60.0)
        dynamic_entries = {e.parameter: e.swing_mj
                           for e in tornado(dynamic_cfg, relative=0.2)}
        assert dynamic_entries["dynamic_guard_base"] > 0.0
        assert dynamic_entries["static_guard_lead"] == 0.0

    def test_parameter_subset_and_validation(self):
        entries = tornado(config_for(), relative=0.1,
                          parameters=("radio_rx_current",))
        assert len(entries) == 1
        with pytest.raises(KeyError):
            tornado(config_for(), parameters=("flux_capacitor",))
        with pytest.raises(ValueError):
            tornado(config_for(), relative=0.0)
        with pytest.raises(ValueError):
            tornado(config_for(), quantity="entropy")

    def test_render(self):
        entries = tornado(config_for(), relative=0.1)
        text = render_tornado(entries)
        assert "radio_rx_current" in text
        assert "#" in text and "mJ" in text

    def test_render_empty(self):
        assert "no parameters" in render_tornado([])
