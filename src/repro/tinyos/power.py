"""MCU power-mode selection policies.

"Depending on the application, the TinyOS scheduler calculates in which
of the 5 available power save modes the microcontroller will be put
during the inactive periods.  Because of the relative complexity of the
applications considered here, the scheduler only used the first low
power mode." (Section 4.1.)

This module implements that calculation.  When the task queue drains,
the scheduler asks its policy how to sleep, passing the time until the
node's next *known* wake-up (sampling timers, beacon windows, slots —
composed by the node assembly).  Policies:

* :class:`Lpm0Only` — the paper's validated behaviour and the default:
  always the first low-power mode.
* :class:`ThresholdDeepSleep` — the what-if the quoted sentence
  implies: idle gaps at least ``threshold_ticks`` long are spent in the
  deep (LPM3-class) state instead.  Unknown gaps (no hint, e.g. an
  unscheduled radio interrupt could arrive) conservatively stay in
  LPM0.  The deep-sleep ablation quantifies the saving this would buy
  the platform.
"""

from __future__ import annotations

from typing import Optional


class DeepSleepPolicy:
    """Interface: should this idle gap be spent in the deep mode?"""

    def choose_deep(self, gap_ticks: Optional[int]) -> bool:
        """``gap_ticks`` is the time to the next known wake-up, or None
        when no wake-up is scheduled/known."""
        raise NotImplementedError


class Lpm0Only(DeepSleepPolicy):
    """The paper's behaviour: never leave the first low-power mode."""

    def choose_deep(self, gap_ticks: Optional[int]) -> bool:
        return False


class ThresholdDeepSleep(DeepSleepPolicy):
    """Deep-sleep any known idle gap of at least ``threshold_ticks``.

    The threshold models the overhead that makes short deep sleeps not
    worth it (clock restart, peripheral reconfiguration): gaps shorter
    than it — and gaps of unknown length — stay in LPM0.
    """

    def __init__(self, threshold_ticks: int) -> None:
        if threshold_ticks <= 0:
            raise ValueError(
                f"threshold must be positive: {threshold_ticks}")
        self.threshold_ticks = threshold_ticks

    def choose_deep(self, gap_ticks: Optional[int]) -> bool:
        return gap_ticks is not None \
            and gap_ticks >= self.threshold_ticks


__all__ = ["DeepSleepPolicy", "Lpm0Only", "ThresholdDeepSleep"]
