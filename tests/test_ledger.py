"""Unit tests for power states and the time-in-state energy ledger."""

import pytest

from repro.core.ledger import PowerStateLedger
from repro.core.states import PowerState, PowerStateTable
from repro.sim.kernel import Simulator
from repro.sim.simtime import seconds


def make_table():
    return PowerStateTable([
        PowerState("on", 10e-3),
        PowerState("off", 1e-3),
    ])


def make_ledger(sim, initial="off", supply=2.0):
    return PowerStateLedger(sim, "dev", make_table(), supply, initial)


class TestPowerState:
    def test_power_at_supply(self):
        state = PowerState("rx", 24.82e-3)
        assert state.power_w(2.8) == pytest.approx(69.496e-3)

    def test_negative_current_rejected(self):
        with pytest.raises(ValueError):
            PowerState("bad", -1e-3)

    def test_table_lookup(self):
        table = make_table()
        assert table["on"].current_a == 10e-3
        assert "off" in table
        assert "standby" not in table

    def test_table_unknown_state_raises_with_known_list(self):
        with pytest.raises(KeyError, match="off"):
            make_table()["nope"]

    def test_table_duplicate_rejected(self):
        with pytest.raises(ValueError):
            PowerStateTable([PowerState("x", 0), PowerState("x", 1)])

    def test_table_empty_rejected(self):
        with pytest.raises(ValueError):
            PowerStateTable([])

    def test_table_iteration(self):
        names = sorted(s.name for s in make_table())
        assert names == ["off", "on"]


class TestLedgerAccounting:
    def test_initial_state(self, sim):
        ledger = make_ledger(sim)
        assert ledger.state == "off"

    def test_energy_formula_single_state(self, sim):
        ledger = make_ledger(sim, initial="on", supply=2.0)
        sim.run_until(seconds(10.0))
        # E = I * V * t = 10 mA * 2 V * 10 s = 0.2 J
        assert ledger.energy_j() == pytest.approx(0.2)

    def test_energy_split_across_transition(self, sim):
        ledger = make_ledger(sim, initial="off", supply=2.0)
        sim.at(seconds(4.0), lambda: ledger.transition("on"))
        sim.run_until(seconds(10.0))
        expected = 1e-3 * 2.0 * 4.0 + 10e-3 * 2.0 * 6.0
        assert ledger.energy_j() == pytest.approx(expected)
        assert ledger.seconds_in("off") == pytest.approx(4.0)
        assert ledger.seconds_in("on") == pytest.approx(6.0)

    def test_time_sums_to_horizon(self, sim):
        ledger = make_ledger(sim)
        for t, state in [(1, "on"), (3, "off"), (7, "on")]:
            sim.at(seconds(float(t)),
                   lambda s=state: ledger.transition(s))
        sim.run_until(seconds(20.0))
        assert ledger.ticks_in() == seconds(20.0)

    def test_open_interval_included_in_queries(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.run_until(seconds(5.0))
        # close() ran via the end hook, but query again mid-flight:
        ledger.transition("off")
        assert ledger.seconds_in("on") == pytest.approx(5.0)

    def test_invalid_state_rejected(self, sim):
        with pytest.raises(KeyError):
            make_ledger(sim).transition("warp")

    def test_invalid_supply_rejected(self, sim):
        with pytest.raises(ValueError):
            make_ledger(sim, supply=0.0)

    def test_charge_is_energy_over_voltage(self, sim):
        ledger = make_ledger(sim, initial="on", supply=2.0)
        sim.run_until(seconds(3.0))
        assert ledger.charge_c() == pytest.approx(ledger.energy_j() / 2.0)

    def test_energy_mj_unit(self, sim):
        ledger = make_ledger(sim, initial="on", supply=2.0)
        sim.run_until(seconds(1.0))
        assert ledger.energy_mj() == pytest.approx(1e3 * ledger.energy_j())

    def test_transitions_counter(self, sim):
        ledger = make_ledger(sim)
        ledger.transition("on")
        ledger.transition("off")
        assert ledger.transitions == 2


class TestLedgerTags:
    def test_retag_splits_state_time(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.at(seconds(2.0), lambda: ledger.retag("listen"))
        sim.run_until(seconds(5.0))
        by_tag = ledger.energy_by_tag()
        assert by_tag["on"] == pytest.approx(10e-3 * 2.0 * 2.0)
        assert by_tag["listen"] == pytest.approx(10e-3 * 2.0 * 3.0)

    def test_tag_defaults_to_state_name(self, sim):
        ledger = make_ledger(sim)
        ledger.transition("on")
        assert ledger.tag == "on"

    def test_state_total_is_sum_over_tags(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.at(seconds(1.0), lambda: ledger.retag("a"))
        sim.at(seconds(2.0), lambda: ledger.retag("b"))
        sim.run_until(seconds(4.0))
        total = ledger.energy_j(state="on")
        by_tag = sum(ledger.energy_j(state="on", tag=t)
                     for t in ("on", "a", "b"))
        assert total == pytest.approx(by_tag)

    def test_filter_by_tag_across_states(self, sim):
        ledger = make_ledger(sim, initial="off")
        sim.at(seconds(1.0), lambda: ledger.transition("on", tag="work"))
        sim.at(seconds(2.0), lambda: ledger.transition("off", tag="work"))
        sim.run_until(seconds(3.0))
        assert ledger.seconds_in(tag="work") == pytest.approx(2.0)


class TestLedgerLifecycle:
    def test_close_is_idempotent(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.run_until(seconds(2.0))
        before = ledger.energy_j()
        ledger.close()
        ledger.close()
        assert ledger.energy_j() == pytest.approx(before)

    def test_reset_clears_history(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.run_until(seconds(2.0))
        ledger.reset()
        sim.run_until(seconds(5.0))
        assert ledger.seconds_in("on") == pytest.approx(3.0)

    def test_reset_preserves_state(self, sim):
        ledger = make_ledger(sim, initial="on")
        ledger.reset()
        assert ledger.state == "on"

    def test_average_power(self, sim):
        ledger = make_ledger(sim, initial="on", supply=2.0)
        sim.run_until(seconds(4.0))
        assert ledger.average_power_w() == pytest.approx(10e-3 * 2.0)

    def test_average_power_zero_horizon(self, sim):
        assert make_ledger(sim).average_power_w() == 0.0


class TestLedgerFastPathInvariants:
    """The transition fast path (precomputed coefficients, same-(state,
    tag) early-out) must leave every reported figure tick-exact."""

    def test_same_state_retag_keeps_interval_open_but_exact(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.at(seconds(1.0), lambda: ledger.retag("x"))
        # Same (state, tag): the early-out path — no interval split.
        sim.at(seconds(2.0), lambda: ledger.transition("on", tag="x"))
        sim.at(seconds(3.0), lambda: ledger.retag("y"))
        sim.run_until(seconds(4.0))
        assert ledger.ticks_in(state="on", tag="x") == seconds(2.0)
        assert ledger.ticks_in(state="on", tag="y") == seconds(1.0)
        assert ledger.ticks_in() == seconds(4.0)
        # The no-op re-tag still counts as a transition.
        assert ledger.transitions == 3

    def test_same_state_retag_still_notifies_observer(self, sim):
        ledger = make_ledger(sim, initial="on")
        seen = []
        ledger.on_transition = lambda t, s, g: seen.append((t, s, g))
        ledger.retag("x")
        ledger.retag("x")
        assert seen == [(0, "on", "x"), (0, "on", "x")]

    def test_scripted_sequence_closed_form_energy(self, sim):
        # off [0,2) -> on/"work" [2,5) -> on/"work" again at 3 (early
        # out) -> off [5,8) horizon-closed at 8.  Energies must equal
        # the closed forms built with the ledger's own float ops:
        # (I * to_seconds(ticks)) * V.
        from repro.sim.simtime import to_seconds
        ledger = make_ledger(sim, initial="off", supply=2.0)
        sim.at(seconds(2.0), lambda: ledger.transition("on", tag="work"))
        sim.at(seconds(3.0), lambda: ledger.transition("on", tag="work"))
        sim.at(seconds(5.0), lambda: ledger.transition("off"))
        sim.run_until(seconds(8.0))
        on_expected = (10e-3 * to_seconds(seconds(3.0))) * 2.0
        off_expected = (1e-3 * to_seconds(seconds(5.0))) * 2.0
        assert ledger.energy_j(state="on", tag="work") == on_expected
        assert ledger.energy_j(state="off") == off_expected
        assert ledger.ticks_in() == seconds(8.0)

    def test_horizon_close_books_open_interval_exactly(self, sim):
        ledger = make_ledger(sim, initial="on")
        sim.run_until(seconds(2.5))
        # The end hook closed at exactly the horizon.
        assert ledger.ticks_in(state="on") == seconds(2.5)


try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

if HAVE_HYPOTHESIS:
    transition_scripts = st.lists(
        st.tuples(st.integers(min_value=1, max_value=50),
                  st.sampled_from(["on", "off"]),
                  st.sampled_from([None, "a", "b", "on"])),
        min_size=0, max_size=20)

    class TestLedgerProperties:
        @given(transition_scripts)
        @settings(max_examples=60, deadline=None)
        def test_state_ticks_equal_sum_over_tags(self, script):
            sim = Simulator()
            ledger = make_ledger(sim, initial="off")
            now = 0
            for gap, state, tag in script:
                now += gap
                sim.at(now, lambda s=state, t=tag:
                       ledger.transition(s, tag=t))
            sim.run_until(now + 7)
            tags = ("on", "off", "a", "b")
            for state in ("on", "off"):
                total = ledger.ticks_in(state=state)
                by_tag = sum(ledger.ticks_in(state=state, tag=t)
                             for t in tags)
                assert total == by_tag  # integer ticks: exact
            assert ledger.ticks_in() == now + 7

        @given(transition_scripts)
        @settings(max_examples=60, deadline=None)
        def test_transition_count_and_energy_nonnegative(self, script):
            sim = Simulator()
            ledger = make_ledger(sim, initial="off")
            now = 0
            for gap, state, tag in script:
                now += gap
                sim.at(now, lambda s=state, t=tag:
                       ledger.transition(s, tag=t))
            sim.run_until(now + 1)
            assert ledger.transitions == len(script)
            assert ledger.energy_j() >= 0.0
