"""Tests for causal span tracing (``repro.obs.spans``).

The load-bearing contracts, in order of importance:

* **Zero perturbation** — attaching a span tracer changes no event
  count, no trace record and no energy figure; spans-on runs are
  byte-identical to spans-off runs.
* **Determinism** — repeat runs produce bit-identical span sets, and
  ``ScenarioExecutor(jobs=N, spans=store)`` merges worker snapshots
  into exactly the sequential store.
* **Reconciliation** — span-summed TX energy equals the
  ``PowerStateLedger`` TX total (settle/air/tail partition the TX
  ticks); RX/MCU-active coverage is partial but positive.

Plus the exporters (JSONL via the sink protocol, Perfetto trace_event
JSON), the metrics rollups, the attribution report and the CLI
surface.  The Prometheus-polish and sink-robustness satellites from
the same PR are covered here too.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.exec import ScenarioExecutor
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.obs import (
    JsonlTraceSink,
    MetricsRegistry,
    Span,
    SpanStore,
    SpanTracer,
    attach_span_tracer,
    attribution_report,
    read_jsonl_trace,
    reconcile_spans,
    rollup_spans,
    to_perfetto,
    write_perfetto,
    write_spans_jsonl,
)
from repro.obs.spans import ROOT
from repro.sim.trace import TraceRecorder


def _config(**overrides):
    base = dict(mac="static", app="ecg_streaming", num_nodes=2,
                cycle_ms=30.0, measure_s=1.0, seed=7)
    base.update(overrides)
    return BanScenarioConfig(**base)


def _traced(config, spans):
    trace = TraceRecorder()
    scenario = BanScenario(config, trace=trace)
    tracer = attach_span_tracer(scenario) if spans else None
    result = scenario.run()
    digest = hashlib.sha256()
    for record in trace:
        digest.update(record.render().encode())
    return scenario, result, digest.hexdigest(), tracer


# ----------------------------------------------------------------------
# Zero perturbation and determinism
# ----------------------------------------------------------------------
class TestSpanDeterminism:
    def test_spans_do_not_perturb_the_run(self):
        config = _config()
        s_off, r_off, trace_off, _ = _traced(config, spans=False)
        s_on, r_on, trace_on, tracer = _traced(config, spans=True)
        assert trace_on == trace_off
        assert r_on == r_off
        assert s_on.sim.events_dispatched == s_off.sim.events_dispatched
        assert len(tracer.store) > 0

    def test_repeat_runs_bit_identical(self):
        config = _config(mac="dynamic", app="rpeak", seed=11)
        _, _, _, first = _traced(config, spans=True)
        _, _, _, second = _traced(config, spans=True)
        assert first.store.fingerprint() == second.store.fingerprint()
        assert first.store.snapshot() == second.store.snapshot()

    def test_executor_jobs_merge_equals_sequential(self):
        configs = [_config(seed=3), _config(mac="dynamic", seed=4),
                   _config(mac="aloha", app="eeg_streaming", seed=5)]
        fingerprints = []
        for jobs in (1, 2):
            store = SpanStore()
            ScenarioExecutor(jobs=jobs, spans=store).run_configs(configs)
            fingerprints.append(store.fingerprint())
        assert fingerprints[0] == fingerprints[1]

    def test_span_ids_never_touch_simulator_serials(self):
        # frame_id is stamped from Simulator.next_serial(); if span
        # allocation consumed kernel serials, spans-on frame ids
        # would shift.  Compare data-frame ids against a spans-off
        # run's trace text instead of trusting the implementation.
        config = _config()
        _, _, trace_off, _ = _traced(config, spans=False)
        _, _, trace_on, _ = _traced(config, spans=True)
        assert trace_on == trace_off  # includes every frame_id


# ----------------------------------------------------------------------
# Span structure
# ----------------------------------------------------------------------
class TestSpanStructure:
    def test_roots_and_children(self):
        _, _, _, tracer = _traced(_config(), spans=True)
        store = tracer.store
        roots = store.roots()
        assert roots
        for root in roots:
            assert root.name == ROOT
            children = store.children_of(root.span_id)
            assert children
            for child in children:
                assert child.parent_id == root.span_id
                assert child.start >= root.start
                assert child.name != ROOT
            # root energy is the sum of child energies (exact: the
            # root total is literally accumulated from these floats).
            assert root.energy_j == pytest.approx(
                sum(c.energy_j for c in children), abs=0.0, rel=1e-12)

    def test_data_roots_cover_expected_phases(self):
        _, _, _, tracer = _traced(_config(), spans=True)
        store = tracer.store
        data_roots = [r for r in store.roots() if r.kind == "data"]
        assert data_roots
        phases = {c.name for r in data_roots
                  for c in store.children_of(r.span_id)}
        for expected in ("app.buffer", "mac.slot_wait", "tinyos.queue",
                         "mcu.prepare", "radio.settle", "phy.air",
                         "radio.tail", "phy.rx"):
            assert expected in phases, expected

    def test_delivery_status_on_roots(self):
        scenario, _, _, tracer = _traced(_config(), spans=True)
        data_roots = [r for r in tracer.store.roots()
                      if r.kind == "data"]
        delivered = sum(1 for r in data_roots
                        if r.status == "delivered")
        # every data root judged "delivered" corresponds to a frame
        # the base station actually delivered upward in the window
        assert delivered == scenario.base_station.frames_received

    def test_record_round_trip(self):
        span = Span(3, 1, 1, "phy.air", "node1", "data", 42, 100, 200,
                    1.5e-6, "x")
        again = Span.from_record(span.to_record())
        assert again.to_record() == span.to_record()

    def test_measurement_reset_drops_warmup(self):
        # Spans recorded before the measurement window must not leak
        # into the store (scenario.run resets at measure start).
        _, _, _, tracer = _traced(_config(), spans=True)
        starts = [s.start for s in tracer.store.spans]
        # All retained intervals end inside/after the measurement
        # window; the earliest data root must not start at t=0.
        assert min(starts) > 0


# ----------------------------------------------------------------------
# Store merge mechanics
# ----------------------------------------------------------------------
class TestSpanStoreMerge:
    def test_merge_rebases_ids(self):
        left = SpanStore()
        root_id = left.allocate()
        left.add(Span(root_id, None, root_id, ROOT, "a", "data", 1,
                      0, 10, 1.0, "delivered"))
        child_id = left.allocate()
        left.add(Span(child_id, root_id, root_id, "phy.air", "a",
                      "data", 1, 2, 8, 0.5, ""))

        incoming = SpanStore()
        other_root = incoming.allocate()
        incoming.add(Span(other_root, None, other_root, ROOT, "b",
                          "data", 2, 0, 10, 2.0, "lost"))
        left.merge_snapshot(incoming.snapshot())

        ids = sorted(s.span_id for s in left.spans)
        assert ids == [1, 2, 3]
        merged = [s for s in left.spans if s.node == "b"][0]
        assert merged.span_id == 3 and merged.trace_id == 3
        # allocator continues past the merged ids
        assert left.allocate() == 4

    def test_merge_empty_snapshot_is_noop(self):
        store = SpanStore()
        store.merge_snapshot({"spans": []})
        assert len(store) == 0 and store.allocate() == 1


# ----------------------------------------------------------------------
# Energy reconciliation
# ----------------------------------------------------------------------
class TestReconciliation:
    def test_tx_energy_matches_ledger_exactly(self):
        scenario, _, _, tracer = _traced(_config(), spans=True)
        rows = reconcile_spans(tracer.store, scenario)
        tx_rows = [r for r in rows if r["state"] == "tx"]
        assert tx_rows
        for row in tx_rows:
            # settle/air/tail partition the ledger's TX ticks and use
            # its exact I*V coefficient; only float addition order
            # differs.
            assert row["span_j"] == pytest.approx(row["ledger_j"],
                                                  rel=1e-9)

    def test_partial_coverage_is_positive_and_bounded(self):
        scenario, _, _, tracer = _traced(_config(), spans=True)
        for row in reconcile_spans(tracer.store, scenario):
            if row["state"] in ("rx", "active"):
                assert 0.0 < row["coverage"] <= 1.0 + 1e-9, row


# ----------------------------------------------------------------------
# Exporters and rollups
# ----------------------------------------------------------------------
class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        _, _, _, tracer = _traced(_config(), spans=True)
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(tracer.store, str(path))
        assert count == len(tracer.store)
        records = read_jsonl_trace(str(path))
        assert len(records) == count
        first = records[0]
        assert first["kind"] == "span"
        detail = json.loads(first["detail"])
        assert {"span_id", "trace_id", "name", "energy_j",
                "status"} <= set(detail)

    def test_perfetto_shape(self, tmp_path):
        _, _, _, tracer = _traced(_config(), spans=True)
        payload = to_perfetto(tracer.store)
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert len(spans) == len(tracer.store)
        assert {m["args"]["name"] for m in metas} == {
            s.node for s in tracer.store.spans}
        for event in spans:
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
        path = tmp_path / "trace.json"
        assert write_perfetto(tracer.store, str(path)) == len(events)
        assert json.loads(path.read_text()) == payload

    def test_rollup_metrics(self):
        _, _, _, tracer = _traced(_config(), spans=True)
        registry = MetricsRegistry()
        rollup_spans(tracer.store, registry)
        snapshot = registry.snapshot()
        assert any(key.endswith("latency_ms")
                   for key in snapshot["histograms"])
        assert any(key.endswith("energy_by_phase_uj")
                   for key in snapshot["state_timers"])
        recorded = sum(
            value for key, value in snapshot["counters"].items()
            if key.endswith("spans_recorded"))
        assert recorded == len(tracer.store)

    def test_attribution_report_renders(self):
        scenario, _, _, tracer = _traced(_config(), spans=True)
        text = attribution_report(tracer.store, scenario)
        assert "Causal span attribution" in text
        assert "phy.air" in text
        assert "reconciliation vs power-state ledgers" in text
        assert "float addition order" in text


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestSpansCli:
    def test_spans_subcommand(self, capsys):
        assert main(["spans", "--nodes", "2", "--measure-s", "1"]) == 0
        out = capsys.readouterr().out
        assert "Causal span attribution" in out
        assert "coverage" in out

    def test_run_with_span_exports(self, tmp_path, capsys):
        jsonl = tmp_path / "s.jsonl"
        perfetto = tmp_path / "s.perfetto.json"
        metrics = tmp_path / "m.json"
        assert main(["run", "--nodes", "2", "--measure-s", "1",
                     "--spans", str(jsonl),
                     "--spans-perfetto", str(perfetto),
                     "--metrics", str(metrics)]) == 0
        assert read_jsonl_trace(str(jsonl))
        assert json.loads(perfetto.read_text())["traceEvents"]
        snapshot = json.loads(metrics.read_text())
        assert any(key.startswith("spans/")
                   for key in snapshot["counters"])

    def test_batch_command_merges_spans(self, tmp_path, capsys):
        jsonl = tmp_path / "t1.jsonl"
        assert main(["table1", "--measure-s", "1", "--jobs", "2",
                     "--spans", str(jsonl)]) == 0
        assert read_jsonl_trace(str(jsonl))


# ----------------------------------------------------------------------
# Satellite: Prometheus polish
# ----------------------------------------------------------------------
class TestPrometheusPolish:
    def test_help_and_type_once_per_family(self):
        registry = MetricsRegistry()
        registry.counter("mac", "node1", "collisions").inc()
        registry.counter("mac", "node2", "collisions").inc()
        registry.histogram("spans", "node1", "latency_ms",
                           bounds=(1.0,)).observe(0.5)
        registry.histogram("spans", "node2", "latency_ms",
                           bounds=(1.0,)).observe(2.0)
        text = registry.to_prometheus()
        assert text.count("# TYPE repro_collisions counter") == 1
        assert text.count("# HELP repro_collisions ") == 1
        assert text.count("# TYPE repro_latency_ms histogram") == 1
        # HELP precedes TYPE, which precedes the first sample
        lines = text.splitlines()
        help_at = lines.index(next(l for l in lines
                                   if l.startswith("# HELP repro_collisions")))
        type_at = lines.index("# TYPE repro_collisions counter")
        sample_at = lines.index(next(l for l in lines
                                     if l.startswith("repro_collisions{")))
        assert help_at < type_at < sample_at

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("hw", 'no"de\n\\x', "soc").set(1.0)
        text = registry.to_prometheus()
        assert 'node="no\\"de\\n\\\\x"' in text
        # the raw specials never appear unescaped inside a label value
        assert "\n\\x" not in text.replace("\\n", "")


# ----------------------------------------------------------------------
# Satellite: sink robustness
# ----------------------------------------------------------------------
class TestSinkRobustness:
    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"t": 1, "source": "a", "kind": "k", '
                        '"detail": "d"}\n{"t": 2, "sou')
        records = read_jsonl_trace(str(path))
        assert records[0]["t"] == 1
        assert records[1]["warning"] == "truncated final line skipped"
        assert records[1]["raw"].startswith('{"t": 2')

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('garbage\n{"t": 1}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl_trace(str(path))

    def test_close_flushes_on_exceptional_unwind(self, tmp_path):
        path = tmp_path / "unwind.jsonl"
        with pytest.raises(RuntimeError):
            with JsonlTraceSink(str(path)) as sink:
                sink.emit(5, "x", "k", "d")
                raise RuntimeError("boom")
        records = read_jsonl_trace(str(path))
        assert records == [{"t": 5, "source": "x", "kind": "k",
                            "detail": "d"}]

    def test_close_idempotent(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "s.jsonl"))
        sink.emit(1, "a", "k", "d")
        sink.close()
        sink.close()
        with pytest.raises(ValueError):
            sink.emit(2, "a", "k", "d")
