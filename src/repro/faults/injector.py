"""Turn a :class:`~repro.faults.spec.FaultPlan` into simulation events.

The injector binds a plan to one built :class:`~repro.net.scenario.
BanScenario`: :meth:`FaultInjector.arm` validates every entry against
the scenario's nodes, expands :class:`~repro.faults.spec.RandomFaults`
deterministically from the scenario seed, and schedules one kernel
event per concrete fault.  All injection happens *beneath* the
protocol:

* **Crash** — ``stack.stop_all()`` (application timers and MAC cease;
  their pending events no-op on the started guards), then the radio is
  powered down once any in-flight ShockBurst drains.  An optional
  reboot is ``stack.start_all()``: the MAC re-enters acquisition via
  its warm-reboot path and rejoins over the air.
* **Radio lockup** — sets :attr:`~repro.hw.radio.Nrf2401.fault_rx_deaf`
  for the duration; frames are lost inside the radio (RX energy spent,
  MCU asleep), so the MAC sees pure silence.
* **Beacon-loss burst** — bumps :attr:`~repro.hw.radio.Nrf2401.
  fault_drop_beacons`; the next N captured beacons CRC-fail.
* **Clock step** — calls :meth:`~repro.mac.base.NodeMac.
  apply_clock_step`, shifting the node's beacon bookkeeping.
* **Battery brownout** — attaches a :class:`~repro.net.monitor.
  BatteryMonitor`; the threshold crossing crashes the node permanently.

Everything is driven by the scenario's own kernel, so fault timing is
exactly as reproducible as the rest of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from ..net.monitor import BatteryMonitor
    from ..net.node import SensorNode
    from ..net.scenario import BanScenario
    from ..obs.metrics import MetricsRegistry

from ..mac.base import NodeMac
from ..sim.simtime import milliseconds, seconds
from .spec import (
    BatteryBrownout,
    BeaconLossBurst,
    ClockStep,
    FaultPlan,
    FaultSpec,
    NodeCrash,
    RadioLockup,
    RandomFaults,
    random_fault_plan,
)


@dataclass
class FaultCounters:
    """What the injector did to one node (all counts start at zero)."""

    crashes: int = 0
    reboots: int = 0
    lockups: int = 0
    lockup_recoveries: int = 0
    beacon_bursts: int = 0
    clock_steps: int = 0
    brownouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counter values keyed by field name."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def total(self) -> int:
        """Sum of all injected events (recoveries included)."""
        return sum(self.as_dict().values())


class FaultInjector:
    """Schedules one scenario's fault plan on its simulation kernel.

    Args:
        scenario: a built :class:`~repro.net.scenario.BanScenario`.
        plan: the fault schedule; node ids may be unprefixed
            (``"node1"``) or carry the scenario's prefix.

    Call :meth:`arm` once, after construction and before the scenario
    runs.  Counters accumulate per (full) node id and are exported by
    :meth:`observe_metrics` under the ``faults`` component.
    """

    def __init__(self, scenario: "BanScenario",
                 plan: FaultPlan) -> None:
        self._scenario = scenario
        self._sim = scenario.sim
        self._plan = plan
        self._armed = False
        self._counters: Dict[str, FaultCounters] = {}
        self._lockup_until: Dict[str, int] = {}
        #: Battery monitors attached for brownout faults (read-only).
        self.monitors: List["BatteryMonitor"] = []
        self._by_name: Dict[str, "SensorNode"] = {}
        prefix = scenario.prefix
        for node in scenario.nodes:
            self._by_name[node.node_id] = node
            if prefix and node.node_id.startswith(prefix):
                self._by_name[node.node_id[len(prefix):]] = node

    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """Whether :meth:`arm` has run."""
        return self._armed

    @property
    def plan(self) -> FaultPlan:
        """The bound fault schedule."""
        return self._plan

    def arm(self) -> None:
        """Validate, expand and schedule every fault (idempotence is an
        error, like component start)."""
        if self._armed:
            raise RuntimeError("fault injector already armed")
        self._armed = True
        for fault in self._expand():
            node = self._resolve(fault)
            if isinstance(fault, BatteryBrownout):
                self._arm_brownout(node, fault)
                continue
            at = seconds(fault.at_s)
            if isinstance(fault, NodeCrash):
                self._sim.at(at, lambda n=node: self._crash(n),
                             label=f"fault.crash[{node.node_id}]")
                if fault.reboot_after_s is not None:
                    self._sim.at(at + seconds(fault.reboot_after_s),
                                 lambda n=node: self._reboot(n),
                                 label=f"fault.reboot[{node.node_id}]")
            elif isinstance(fault, RadioLockup):
                self._sim.at(
                    at,
                    lambda n=node, d=fault.duration_s:
                        self._lockup_begin(n, d),
                    label=f"fault.lockup[{node.node_id}]")
            elif isinstance(fault, BeaconLossBurst):
                self._sim.at(
                    at,
                    lambda n=node, c=fault.count: self._beacon_burst(n, c),
                    label=f"fault.beacons[{node.node_id}]")
            else:  # ClockStep (validated in _resolve)
                self._sim.at(
                    at,
                    lambda n=node, ms=fault.offset_ms:
                        self._clock_step(n, ms),
                    label=f"fault.clockstep[{node.node_id}]")

    def _expand(self) -> List[FaultSpec]:
        """The plan with :class:`RandomFaults` entries drawn out."""
        node_ids = [node.node_id[len(self._scenario.prefix):]
                    if self._scenario.prefix
                    and node.node_id.startswith(self._scenario.prefix)
                    else node.node_id
                    for node in self._scenario.nodes]
        expanded: List[FaultSpec] = []
        for fault in self._plan.faults:
            if isinstance(fault, RandomFaults):
                expanded.extend(random_fault_plan(
                    self._scenario.config.seed, node_ids,
                    fault.count, fault.horizon_s))
            else:
                expanded.append(fault)
        return expanded

    def _resolve(self, fault: FaultSpec) -> "SensorNode":
        try:
            node = self._by_name[fault.node]
        except KeyError:
            raise ValueError(
                f"fault names unknown node {fault.node!r}; scenario has "
                f"{sorted(n.node_id for n in self._scenario.nodes)}"
            ) from None
        if isinstance(fault, ClockStep) \
                and not isinstance(node.mac, NodeMac):
            raise ValueError(
                f"clock step needs a beacon-synchronised MAC; "
                f"{node.node_id} runs {type(node.mac).__name__}")
        return node

    def counters_for(self, node_id: str) -> FaultCounters:
        """Counters for one node (full or unprefixed id)."""
        node = self._by_name.get(node_id)
        key = node.node_id if node is not None else node_id
        return self._counters.setdefault(key, FaultCounters())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Non-zero counters per node id (empty if nothing fired)."""
        report: Dict[str, Dict[str, int]] = {}
        for node_id in sorted(self._counters):
            nonzero = {name: value for name, value
                       in self._counters[node_id].as_dict().items()
                       if value}
            if nonzero:
                report[node_id] = nonzero
        return report

    def observe_metrics(self,
                        registry: "MetricsRegistry") -> None:
        """Pull the per-node fault counters into a metrics registry."""
        for node_id, counts in self.summary().items():
            for name, value in counts.items():
                registry.counter("faults", node_id, name).inc(value)

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------
    def _crash(self, node: "SensorNode") -> None:
        if self._stop_stack(node):
            self.counters_for(node.node_id).crashes += 1

    def _stop_stack(self, node: "SensorNode") -> bool:
        if node.mac is None or not node.mac.started:
            return False  # already down (e.g. brownout after a crash)
        node.stack.stop_all()
        self._quiesce_radio(node)
        return True

    def _quiesce_radio(self, node: "SensorNode") -> None:
        radio = node.radio
        if radio.is_transmitting:
            # Power-down mid-ShockBurst is illegal; events are
            # sub-millisecond, so re-check once the burst drains.
            self._sim.after(milliseconds(1),
                            lambda: self._quiesce_radio(node),
                            label=f"fault.quiesce[{node.node_id}]")
            return
        if node.mac is not None and node.mac.started:
            return  # rebooted while the transmission drained
        if radio.state != "power_down":
            radio.power_down()

    def _reboot(self, node: "SensorNode") -> None:
        if node.mac is not None and node.mac.started:
            return  # the matching crash never landed
        node.stack.start_all()
        self.counters_for(node.node_id).reboots += 1

    def _lockup_begin(self, node: "SensorNode",
                      duration_s: float) -> None:
        until = self._sim.now + seconds(duration_s)
        # Overlapping lockups extend rather than truncate.
        self._lockup_until[node.node_id] = max(
            self._lockup_until.get(node.node_id, 0), until)
        node.radio.fault_rx_deaf = True
        self.counters_for(node.node_id).lockups += 1
        self._sim.at(until, lambda: self._lockup_end(node),
                     label=f"fault.lockup_end[{node.node_id}]")

    def _lockup_end(self, node: "SensorNode") -> None:
        if self._sim.now < self._lockup_until.get(node.node_id, 0):
            return  # a longer overlapping lockup owns the recovery
        node.radio.fault_rx_deaf = False
        self.counters_for(node.node_id).lockup_recoveries += 1

    def _beacon_burst(self, node: "SensorNode",
                      count: int) -> None:
        node.radio.fault_drop_beacons += count
        self.counters_for(node.node_id).beacon_bursts += 1

    def _clock_step(self, node: "SensorNode",
                    offset_ms: float) -> None:
        node.mac.apply_clock_step(milliseconds(offset_ms))
        self.counters_for(node.node_id).clock_steps += 1

    # ------------------------------------------------------------------
    # Brownout (battery-driven crash)
    # ------------------------------------------------------------------
    def _arm_brownout(self, node: "SensorNode",
                      fault: BatteryBrownout) -> None:
        # Imported lazily: repro.faults must stay importable from
        # repro.net.scenario without closing an import cycle through
        # the net package.
        from ..hw.battery import Battery
        from ..net.monitor import BatteryMonitor

        battery = Battery(capacity_mah=fault.capacity_mah)
        monitor = BatteryMonitor(node, battery,
                                 sample_period_s=fault.sample_period_s,
                                 thresholds=(fault.soc_threshold,))

        def browned_out(node_id: str, threshold: float,
                        soc: float) -> None:
            monitor.stop()
            self.counters_for(node.node_id).brownouts += 1
            # The cell is flat: permanent crash, no reboot.
            self._stop_stack(node)

        monitor.on_threshold(fault.soc_threshold, browned_out)
        monitor.start()
        self.monitors.append(monitor)


__all__ = ["FaultCounters", "FaultInjector"]
