"""Component model (the nesC-flavoured layering of Figure 1).

The platform's software is "a layered modular approach in which each
platform component is a separate software block" so hardware-related
blocks can be swapped for simulator models without touching the upper
layers (Section 3.2).  :class:`Component` is the small base class the
MAC protocols and applications derive from; it standardises lifecycle
(``start``/``stop``) and gives each block a stable name for traces.

A :class:`ComponentStack` holds one node's blocks in layer order and
starts/stops them together, mirroring a TinyOS configuration's wiring.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder


class Component:
    """Base class for a software block on the node.

    Subclasses override :meth:`on_start` / :meth:`on_stop`; the public
    ``start``/``stop`` guard against double transitions, which in TinyOS
    would be a wiring bug.
    """

    def __init__(self, sim: Simulator, name: str,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self.name = name
        self._trace = trace
        self._started = False

    @property
    def started(self) -> bool:
        """Whether the component is running."""
        return self._started

    def start(self) -> None:
        """Start the component (idempotence is an error, as in TinyOS)."""
        if self._started:
            raise RuntimeError(f"component {self.name!r} started twice")
        self._started = True
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "start", "")
        self.on_start()

    def stop(self) -> None:
        """Stop the component."""
        if not self._started:
            raise RuntimeError(f"component {self.name!r} not started")
        self._started = False
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "stop", "")
        self.on_stop()

    def on_start(self) -> None:
        """Subclass hook: begin operation."""

    def on_stop(self) -> None:
        """Subclass hook: cease operation."""


class ComponentStack:
    """One node's software blocks, bottom layer first."""

    def __init__(self) -> None:
        self._layers: List[Component] = []
        self._by_name: Dict[str, Component] = {}

    def add(self, component: Component) -> Component:
        """Append a layer (names must be unique within the stack)."""
        if component.name in self._by_name:
            raise ValueError(f"duplicate component name {component.name!r}")
        self._layers.append(component)
        self._by_name[component.name] = component
        return component

    def __getitem__(self, name: str) -> Component:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no component {name!r}; stack has "
                f"{[c.name for c in self._layers]}") from None

    def __iter__(self) -> Iterator[Component]:
        return iter(self._layers)

    def start_all(self) -> None:
        """Start every layer, bottom-up."""
        for component in self._layers:
            component.start()

    def stop_all(self) -> None:
        """Stop every layer, top-down."""
        for component in reversed(self._layers):
            component.stop()


__all__ = ["Component", "ComponentStack"]
