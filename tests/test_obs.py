"""Tests for the observability layer (``repro.obs``).

The two load-bearing contracts:

* **Disabled-path neutrality** — a run without a registry executes the
  same code as before the layer existed, and even an *attached*
  registry (pull-based collectors only) changes no energy figure and
  no event count.
* **Merge equality** — ``jobs=2`` merges worker snapshots into exactly
  the counters the sequential path reports.

Plus the satellites that ride along: the JSONL sink round-trip, the
profiler's attribution floor, the O(1) trace eviction, the bounded
battery-monitor history, the Prometheus exporter and the CLI flags.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.exec import ScenarioExecutor
from repro.hw.battery import Battery
from repro.net.monitor import BatteryMonitor
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.obs import (
    GLOBAL,
    JsonlTraceSink,
    MetricsRegistry,
    RingTraceSink,
    SimulationProfiler,
    SinkTraceRecorder,
    attach_periodic_snapshots,
    collect_scenario_metrics,
    collect_simulator_metrics,
    metric_key,
    normalize_label,
    read_jsonl_trace,
)
from repro.sim.trace import TraceRecorder

#: Short horizon keeping each scenario fast but covering several cycles.
MEASURE_S = 1.0


def _config(**overrides) -> BanScenarioConfig:
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=2,
                    cycle_ms=30.0, measure_s=MEASURE_S, seed=7)
    defaults.update(overrides)
    return BanScenarioConfig(**defaults)


def _energies(result):
    """Exact per-node energy repr strings (byte-identity check)."""
    rows = {}
    for node_id in sorted(result.nodes):
        node = result.nodes[node_id]
        rows[node_id] = (repr(node.radio_mj), repr(node.mcu_mj),
                         repr(node.total_mj))
    return rows


class TestDisabledPathNeutrality:
    def test_attached_registry_changes_nothing(self):
        """Same config, with and without a registry: byte-identical
        energies and identical event counts (no snapshotter armed)."""
        plain = BanScenario(_config())
        plain_result = plain.run()

        observed = BanScenario(_config())
        registry = MetricsRegistry()
        observed.sim.metrics = registry
        observed_result = observed.run()
        collect_scenario_metrics(observed, registry)
        collect_simulator_metrics(observed.sim, registry)

        assert _energies(observed_result) == _energies(plain_result)
        assert observed.sim.events_dispatched == plain.sim.events_dispatched
        counted = registry.snapshot()["counters"]
        assert counted["kernel/-/events_dispatched"] \
            == plain.sim.events_dispatched

    def test_profiler_changes_no_energies(self):
        plain_result = BanScenario(_config()).run()
        profiled = BanScenario(_config())
        profiled.sim.profiler = SimulationProfiler()
        assert _energies(profiled.run()) == _energies(plain_result)

    def test_periodic_snapshots_change_no_energies(self):
        """Snapshotter callbacks only read: energies stay identical
        even though the kernel dispatches its extra timer events."""
        plain = BanScenario(_config())
        plain_result = plain.run()
        observed = BanScenario(_config())
        registry = MetricsRegistry()
        snapshotter = attach_periodic_snapshots(
            observed.sim, registry, scenario=observed, period_s=0.1)
        observed_result = observed.run()
        assert _energies(observed_result) == _energies(plain_result)
        assert snapshotter.samples > 0
        series = registry.snapshot()["series"]
        assert len(series["kernel/-/queue_depth"]) == snapshotter.samples
        energy_points = series["radio/node1/energy_mj"]
        values = [value for _, value in energy_points]
        assert values == sorted(values)  # cumulative energy grows

    def test_registry_collects_radio_mac_figures(self):
        scenario = BanScenario(_config())
        scenario.run()
        registry = MetricsRegistry()
        collect_scenario_metrics(scenario, registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["mac/base_station/beacons_sent"] > 0
        assert snapshot["counters"]["radio/node1/data_tx"] > 0
        residency = snapshot["state_timers"]["radio/node1/residency_s"]
        assert sum(residency.values()) > 0.0
        energy = snapshot["state_timers"]["radio/node1/energy_mj"]
        node = scenario.nodes[0]
        assert sum(energy.values()) == pytest.approx(node.radio.energy_mj())


class TestMergeEquality:
    def _counters(self, jobs, profile=False):
        base = _config()
        configs = [dataclasses.replace(base, seed=seed)
                   for seed in range(3)]
        registry = MetricsRegistry()
        profiler = SimulationProfiler() if profile else None
        executor = ScenarioExecutor(jobs=jobs, metrics=registry,
                                    profiler=profiler)
        results = executor.run_configs(configs)
        return registry.snapshot(), results

    def test_jobs2_counters_equal_sequential(self):
        sequential, seq_results = self._counters(jobs=1)
        parallel, par_results = self._counters(jobs=2)
        assert parallel["counters"] == sequential["counters"]
        assert parallel["state_timers"] == sequential["state_timers"]
        assert par_results == seq_results

    def test_exec_batch_metrics_present(self):
        snapshot, _ = self._counters(jobs=2)
        assert snapshot["counters"]["exec/-/scenarios_run"] == 3
        assert snapshot["gauges"]["exec/-/workers"] == 2.0
        wall = snapshot["histograms"]["exec/-/scenario_wall_s"]
        assert wall["count"] == 3

    def test_profiler_merges_across_workers(self):
        base = _config()
        configs = [dataclasses.replace(base, seed=seed)
                   for seed in range(2)]
        profiler = SimulationProfiler()
        ScenarioExecutor(jobs=2, profiler=profiler).run_configs(configs)
        assert profiler.events > 0
        assert profiler.attributed_fraction >= 0.95

    def test_merge_snapshot_counters_add_gauges_overwrite(self):
        a = MetricsRegistry()
        a.counter("mac", "node1", "data_sent").inc(3)
        a.gauge("mac", "node1", "slot").set(2.0)
        b = MetricsRegistry()
        b.counter("mac", "node1", "data_sent").inc(4)
        b.gauge("mac", "node1", "slot").set(5.0)
        a.merge_snapshot(b.snapshot())
        snapshot = a.snapshot()
        assert snapshot["counters"]["mac/node1/data_sent"] == 7
        assert snapshot["gauges"]["mac/node1/slot"] == 5.0


class TestTraceSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path))
        recorder = SinkTraceRecorder([sink], capacity=2)
        recorder.record(10, "node1.radio", "tx", "frame 1")
        recorder.record(20, "node1.radio", "rx", "frame 2")
        recorder.record(30, "node1.mac", "sync", "")
        recorder.close()
        records = read_jsonl_trace(str(path))
        assert [r["t"] for r in records] == [10, 20, 30]
        assert records[2]["source"] == "node1.mac"
        # The in-memory view honoured its capacity independently.
        assert len(recorder) == 2
        assert recorder.total_recorded == 3
        assert sink.emitted == 3

    def test_jsonl_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(str(path)) as sink:
            sink.emit(5, "src", "kind", "detail")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"t": 5, "source": "src",
                                        "kind": "kind",
                                        "detail": "detail"}

    def test_ring_sink_bounds(self):
        sink = RingTraceSink(capacity=2)
        for time in range(5):
            sink.emit(time, "s", "k", "")
        assert [time for time, _, _, _ in sink.records] == [3, 4]
        assert sink.emitted == 5

    def test_scenario_streams_through_sink(self, tmp_path):
        path = tmp_path / "scenario.jsonl"
        sink = JsonlTraceSink(str(path))
        scenario = BanScenario(
            _config(), trace=SinkTraceRecorder([sink]))
        scenario.run()
        sink.close()
        records = read_jsonl_trace(str(path))
        assert records
        times = [record["t"] for record in records]
        assert times == sorted(times)


class TestTraceEviction:
    def test_deque_eviction_is_bounded(self):
        recorder = TraceRecorder(capacity=3)
        for index in range(10):
            recorder.record(index, "s", "k", str(index))
        assert [record.detail for record in recorder] == ["7", "8", "9"]
        assert recorder.total_recorded == 10
        assert recorder.capacity == 3


class TestProfiler:
    def test_attribution_floor(self):
        scenario = BanScenario(_config())
        profiler = SimulationProfiler()
        scenario.sim.profiler = profiler
        scenario.run()
        assert profiler.events == scenario.sim.events_dispatched
        assert profiler.attributed_fraction >= 0.95
        table = profiler.render_table()
        assert "(kernel dispatch)" in table
        assert "sim-s/wall-s" in table

    def test_labels_normalised(self):
        assert normalize_label("node12.mac.rxon") == "node*.mac.rxon"
        assert normalize_label("base_station.mac.beacon") \
            == "base_station.mac.beacon"
        scenario = BanScenario(_config())
        profiler = SimulationProfiler()
        scenario.sim.profiler = profiler
        scenario.run()
        labels = set(profiler.labels)
        assert any(label.startswith("node*.") for label in labels)
        assert not any("node1." in label for label in labels)


class TestBatteryMonitorBounds:
    def _monitor(self, **kwargs):
        config = _config(num_nodes=1, app="ecg_streaming",
                         sampling_hz=205.0, measure_s=2.0)
        scenario = BanScenario(config)
        battery = Battery(capacity_mah=0.02, voltage_v=2.8,
                          usable_fraction=1.0)
        monitor = BatteryMonitor(scenario.nodes[0], battery,
                                 sample_period_s=0.1, **kwargs)
        return scenario, monitor

    def test_history_bounded(self):
        scenario, monitor = self._monitor(history_capacity=5)
        monitor.start()
        scenario.run()
        assert len(monitor.history) == 5
        assert monitor.history_capacity == 5
        times = [time for time, _ in monitor.history]
        assert times == sorted(times)  # kept the *newest* samples

    def test_soc_flows_into_registry(self):
        registry = MetricsRegistry()
        scenario, monitor = self._monitor(metrics=registry)
        monitor.start()
        scenario.run()
        snapshot = registry.snapshot()
        node_id = scenario.nodes[0].node_id
        key = metric_key("battery", node_id, "soc")
        assert 0.0 <= snapshot["gauges"][key] <= 1.0
        series = snapshot["series"][key]
        assert len(series) == len(monitor.history)


class TestExporters:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("mac", "node1", "data_sent").inc(4)
        registry.gauge("kernel", GLOBAL, "queue_depth").set(7.0)
        registry.histogram("exec", GLOBAL,
                           "scenario_wall_s").observe(0.25)
        registry.state_timer("radio", "node1",
                             "residency_s").add("rx", 1.5)
        return registry

    def test_prometheus_format(self):
        text = self._populated().to_prometheus()
        assert '# TYPE repro_data_sent counter' in text
        assert ('repro_data_sent{component="mac",node="node1"} 4'
                in text)
        assert ('repro_residency_s{component="radio",node="node1",'
                'state="rx"} 1.5' in text)
        assert 'repro_scenario_wall_s_bucket' in text
        assert 'repro_scenario_wall_s_count' in text

    def test_json_round_trip(self):
        registry = self._populated()
        decoded = json.loads(registry.to_json())
        restored = MetricsRegistry()
        restored.merge_snapshot(decoded)
        assert restored.snapshot() == registry.snapshot()


class TestCliFlags:
    def test_run_writes_metrics_trace_and_profile(self, tmp_path,
                                                  capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        code = main(["run", "--app", "rpeak", "--nodes", "2",
                     "--measure-s", "1", "--jobs", "2",
                     "--metrics", str(metrics_path),
                     "--trace-jsonl", str(trace_path),
                     "--metrics-period", "0.25", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(kernel dispatch)" in out
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["kernel/-/events_dispatched"] > 0
        assert snapshot["counters"]["mac/base_station/beacons_sent"] > 0
        assert snapshot["series"]["kernel/-/queue_depth"]
        assert read_jsonl_trace(str(trace_path))

    def test_prom_extension_selects_prometheus(self, tmp_path):
        metrics_path = tmp_path / "m.prom"
        code = main(["run", "--app", "rpeak", "--nodes", "1",
                     "--measure-s", "1",
                     "--metrics", str(metrics_path)])
        assert code == 0
        assert "# TYPE repro_events_dispatched counter" \
            in metrics_path.read_text()

    def test_batch_command_merges_cache_stats(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        args = ["table1", "--measure-s", "1",
                "--cache", "--cache-dir", str(tmp_path / "cache"),
                "--metrics", str(metrics_path)]
        assert main(args) == 0
        first = json.loads(metrics_path.read_text())
        assert first["counters"]["cache/-/misses"] > 0
        assert main(args) == 0  # second run: all hits
        second = json.loads(metrics_path.read_text())
        assert second["counters"]["cache/-/hits"] \
            == first["counters"]["cache/-/misses"]
        out = capsys.readouterr().out
        assert "cache: CacheStats" not in out  # routed into snapshot
