"""Golden-value regression harness.

The simulator is deterministic, so a handful of canonical scenarios
have *exact* expected outputs.  This module pins them: any model change
that moves a golden number is either a bug or an intentional
recalibration (in which case the goldens are regenerated with
:func:`compute_goldens` and reviewed like any other diff).

The canonical set is chosen for coverage, not speed alone: both MACs,
three applications, the join protocol and a lossy channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..net.scenario import BanScenario, BanScenarioConfig

#: The canonical scenario set: name -> config factory.
CANONICAL: Dict[str, BanScenarioConfig] = {}


def _register(name: str, **kwargs: object) -> None:
    CANONICAL[name] = BanScenarioConfig(**kwargs)


_register("streaming_static_30ms",
          mac="static", app="ecg_streaming", num_nodes=3, cycle_ms=30.0,
          sampling_hz=205.0, measure_s=4.0, seed=0)
_register("streaming_dynamic_3n",
          mac="dynamic", app="ecg_streaming", num_nodes=3, slot_ms=10.0,
          measure_s=4.0, seed=0)
_register("rpeak_static_120ms",
          mac="static", app="rpeak", num_nodes=3, cycle_ms=120.0,
          heart_rate_bpm=75.0, measure_s=4.0, seed=0)
_register("eeg_static_60ms",
          mac="static", app="eeg_streaming", num_nodes=2, cycle_ms=60.0,
          measure_s=4.0, seed=0)
_register("join_dynamic_3n",
          mac="dynamic", app="rpeak", num_nodes=3, join_protocol=True,
          measure_s=4.0, seed=0)


@dataclass(frozen=True)
class GoldenValue:
    """One pinned output: (radio, mcu) mJ for node1 plus traffic."""

    radio_mj: float
    mcu_mj: float
    data_tx: int
    control_rx: int


#: The pinned expectations.  Regenerate with ``compute_goldens()`` after
#: an intentional model change and review the diff.
GOLDENS: Dict[str, GoldenValue] = {
    "streaming_static_30ms": GoldenValue(
        radio_mj=33.563852056, mcu_mj=10.765025488,
        data_tx=133, control_rx=134),
    "streaming_dynamic_3n": GoldenValue(
        radio_mj=22.39678, mcu_mj=9.9215984,
        data_tx=100, control_rx=100),
    "rpeak_static_120ms": GoldenValue(
        radio_mj=7.858938304, mcu_mj=9.00265856,
        data_tx=8, control_rx=34),
    "eeg_static_60ms": GoldenValue(
        radio_mj=16.756585832, mcu_mj=9.20095176,
        data_tx=67, control_rx=67),
    "join_dynamic_3n": GoldenValue(
        radio_mj=20.161398208, mcu_mj=9.55735424,
        data_tx=8, control_rx=100),
}


def compute_goldens(names: Tuple[str, ...] = tuple(CANONICAL)
                    ) -> Dict[str, GoldenValue]:
    """Run the canonical set and return fresh golden values."""
    out: Dict[str, GoldenValue] = {}
    for name in names:
        result = BanScenario(CANONICAL[name]).run()
        node = result.node("node1")
        out[name] = GoldenValue(
            radio_mj=round(node.radio_mj, 9),
            mcu_mj=round(node.mcu_mj, 9),
            data_tx=node.traffic.data_tx,
            control_rx=node.traffic.control_rx,
        )
    return out


def check_goldens(rel_tolerance: float = 1e-9) -> List[str]:
    """Compare fresh runs against the pinned values.

    Returns a list of human-readable deviations (empty = all good).
    """
    deviations: List[str] = []
    fresh = compute_goldens()
    for name, expected in GOLDENS.items():
        actual = fresh[name]
        for field in ("radio_mj", "mcu_mj"):
            want = getattr(expected, field)
            got = getattr(actual, field)
            if abs(got - want) > rel_tolerance * max(abs(want), 1e-12):
                deviations.append(
                    f"{name}.{field}: expected {want!r}, got {got!r}")
        for field in ("data_tx", "control_rx"):
            if getattr(expected, field) != getattr(actual, field):
                deviations.append(
                    f"{name}.{field}: expected "
                    f"{getattr(expected, field)}, got "
                    f"{getattr(actual, field)}")
    return deviations


def format_goldens(values: Dict[str, GoldenValue]) -> str:
    """Render a dict literal suitable for pasting into this module."""
    lines = ["GOLDENS: Dict[str, GoldenValue] = {"]
    for name, value in values.items():
        lines.append(f'    "{name}": GoldenValue(')
        lines.append(f"        radio_mj={value.radio_mj!r}, "
                     f"mcu_mj={value.mcu_mj!r},")
        lines.append(f"        data_tx={value.data_tx}, "
                     f"control_rx={value.control_rx}),")
    lines.append("}")
    return "\n".join(lines)


__all__ = ["CANONICAL", "GoldenValue", "GOLDENS", "compute_goldens",
           "check_goldens", "format_goldens"]
