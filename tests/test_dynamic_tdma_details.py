"""Dynamic-TDMA specifics: cycle growth, ES discipline, slot geometry."""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.frames import FrameKind
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.simtime import milliseconds, seconds, to_milliseconds

CAL = DEFAULT_CALIBRATION


def join_scenario(num_nodes=3, measure_s=2.0, seed=5, trace=400_000):
    config = BanScenarioConfig(mac="dynamic", app="rpeak",
                               num_nodes=num_nodes, join_protocol=True,
                               measure_s=measure_s, seed=seed,
                               trace_capacity=trace)
    return BanScenario(config)


class TestCycleGrowth:
    def test_beacon_announces_growing_cycle(self):
        """Joining nodes watch the announced cycle length step up
        10 ms per admitted node."""
        scenario = join_scenario(num_nodes=3)
        announced = []
        scenario.base_station.start()
        for node in scenario.nodes:
            node.start()
        scenario.nodes[0].mac.on_beacon = \
            lambda payload: announced.append(payload.cycle_ticks)
        scenario.sim.run_until(seconds(2.0))
        unique = sorted(set(announced))
        # From 20 ms (1 schedulable slot) up to 40 ms (3 joined).
        assert unique[0] <= milliseconds(30)
        assert unique[-1] == milliseconds(40)
        # Growth is monotone over time.
        assert announced == sorted(announced)

    def test_synced_nodes_follow_cycle_updates(self):
        """A node that joined early keeps transmitting correctly as the
        cycle stretches under it."""
        scenario = join_scenario(num_nodes=3, measure_s=3.0)
        result = scenario.run()
        # All three deliver data in steady state; no collisions after
        # the join burst involves data slots.
        for node_id in ("node1", "node2", "node3"):
            assert result.nodes[node_id].traffic.data_tx >= 0
        total_delivered = scenario.base_station.frames_received
        assert total_delivered > 0

    def test_schedule_never_shrinks_without_reclaim(self):
        scenario = join_scenario(num_nodes=3)
        scenario.run()
        assert scenario.base_station.mac.schedule.num_slots == 3
        assert scenario.base_station.mac.current_cycle_ticks() \
            == milliseconds(40)


class TestEsDiscipline:
    def test_ssr_never_overlaps_the_beacon(self):
        """Every slot request's airtime must start after the beacon's
        airtime ends (the ES open offset guarantees it)."""
        scenario = join_scenario(num_nodes=5, measure_s=2.0, seed=9)
        scenario.run()
        trace = scenario.trace
        assert trace is not None
        beacon_ends = []
        ssr_starts = []
        for record in trace:
            if record.kind == "tx_start" and "slot_request" \
                    in record.detail:
                ssr_starts.append(record.time)
            if record.kind == "tx_done" and "beacon" in record.detail:
                beacon_ends.append(record.time)
        assert ssr_starts, "no SSRs traced"
        for start in ssr_starts:
            # The most recent beacon completion precedes this SSR.
            preceding = [t for t in beacon_ends if t <= start]
            assert preceding, "SSR before any beacon"

    def test_ssrs_land_inside_the_es_window(self):
        """SSR transmissions begin within slot 0 (after the open offset,
        before the close margin)."""
        scenario = join_scenario(num_nodes=4, measure_s=2.0, seed=11)
        scenario.run()
        config = scenario.base_station.mac.config
        slot = config.slot_ticks
        # Reconstruct beacon grid from the BS trace.
        beacon_starts = [r.time for r in scenario.trace
                         if r.kind == "tx_start"
                         and "beacon" in r.detail]
        ssr_starts = [r.time for r in scenario.trace
                      if r.kind == "tx_start"
                      and "slot_request" in r.detail]
        for start in ssr_starts:
            grid = max(b for b in beacon_starts if b <= start)
            offset = start - grid
            # The SSR task carries MCU wake/prep before the radio
            # event; allow that slack past the drawn instant.
            assert offset < slot
            assert offset >= config.es_open_offset_ticks


class TestSlotGeometry:
    def test_data_slots_do_not_touch_slot_zero(self):
        """No data transmission may begin inside the beacon/ES slot."""
        config = BanScenarioConfig(mac="dynamic", app="ecg_streaming",
                                   num_nodes=3, measure_s=2.0,
                                   trace_capacity=400_000)
        scenario = BanScenario(config)
        scenario.run()
        beacon_starts = [r.time for r in scenario.trace
                         if r.kind == "tx_start"
                         and "beacon" in r.detail]
        data_starts = [r.time for r in scenario.trace
                       if r.kind == "tx_start" and "data" in r.detail]
        slot = milliseconds(10)
        assert data_starts
        for start in data_starts:
            grid = max(b for b in beacon_starts if b <= start)
            offset_ms = to_milliseconds(start - grid)
            assert offset_ms >= 9.9  # first data slot starts at 10 ms

    def test_distinct_slots_distinct_offsets(self):
        config = BanScenarioConfig(mac="dynamic", app="ecg_streaming",
                                   num_nodes=3, measure_s=1.0,
                                   trace_capacity=400_000)
        scenario = BanScenario(config)
        scenario.run()
        slots = sorted(node.mac.slot for node in scenario.nodes)
        assert slots == [1, 2, 3]
