"""Physical layer: broadcast medium, topologies and loss models."""

from .channel import Channel, Transmission
from .lossmodels import (
    DistanceLoss,
    LossModel,
    PerLinkLoss,
    PerfectChannel,
    UniformLoss,
)
from .topology import (
    BODY_PRESET,
    BodyTopology,
    ExplicitLinks,
    FullConnectivity,
    Position,
    Topology,
)

__all__ = [
    "Channel",
    "Transmission",
    "DistanceLoss",
    "LossModel",
    "PerLinkLoss",
    "PerfectChannel",
    "UniformLoss",
    "BODY_PRESET",
    "BodyTopology",
    "ExplicitLinks",
    "FullConnectivity",
    "Position",
    "Topology",
]
