"""Applications: the paper's ECG streaming and Rpeak case studies, plus
the EEG-streaming and adaptive-cardiac extensions."""

from .adaptive import AdaptiveCardiacApp, CardiacMode
from .base import SamplingApplication
from .eeg_streaming import DEFAULT_EEG_SAMPLING_HZ, EegStreamingApp
from .ecg_streaming import (
    BITS_PER_CODE,
    DEFAULT_PAYLOAD_BYTES,
    EcgStreamingApp,
    codes_per_payload,
    pack_codes,
    unpack_codes,
)
from .rpeak import BEAT_PAYLOAD_BYTES, RPEAK_SAMPLING_HZ, RpeakApp
from .rpeak_detector import RPeakDetector

__all__ = [
    "AdaptiveCardiacApp",
    "CardiacMode",
    "SamplingApplication",
    "DEFAULT_EEG_SAMPLING_HZ",
    "EegStreamingApp",
    "BITS_PER_CODE",
    "DEFAULT_PAYLOAD_BYTES",
    "EcgStreamingApp",
    "codes_per_payload",
    "pack_codes",
    "unpack_codes",
    "BEAT_PAYLOAD_BYTES",
    "RPEAK_SAMPLING_HZ",
    "RpeakApp",
    "RPeakDetector",
]
