"""Unslotted CSMA/CA: the listen-before-talk contention MAC.

ALOHA (:mod:`repro.mac.aloha`) never listens; TDMA never contends.
Real BAN deployments overwhelmingly sit between the two: 802.15.4-style
CSMA/CA, the reference contention MAC of the WBAN surveys.  This module
supplies that missing family, following the unslotted (non-beacon)
802.15.4 algorithm:

1. A node polls its application every ``poll_interval`` (like ALOHA)
   and prepares at most one frame at a time.
2. Before transmitting it waits a random backoff of
   ``U[0, 2^BE - 1]`` backoff unit periods (``BE`` starts at
   ``min_be``), then performs a **clear-channel assessment**: the
   radio's receive chain dwells ``cca_ticks`` at RX current
   (:meth:`repro.hw.radio.Nrf2401.cca`) and samples the channel's
   per-receiver in-flight sets (:meth:`repro.phy.channel.Channel.is_busy_at`).
3. Channel idle: transmit immediately (one ShockBurst event).  Channel
   busy: increment ``BE`` (capped at ``max_be``) and go back to 2, up
   to ``max_backoffs`` retries; then the frame is **abandoned**
   (``tx_abandoned`` — the 802.15.4 channel-access failure).

Energy profile: a node pays ALOHA's TX events *plus* one or more
128 us CCA windows at RX current per frame — the price of collision
avoidance, a couple of orders of magnitude below TDMA's beacon-listen
windows.  The backoff wait itself is spent in stand-by (radio off by
default calibration) and costs nothing.

Every backoff draw comes from the named per-node stream
``<address>.csma_backoff`` of the simulator's RNG registry, so runs
are bit-reproducible and the RNG-provenance lint can verify the seed
path.  With a :class:`~repro.mac.recovery.RecoveryConfig` installed, a
streak of consecutive busy CCAs (a saturated channel — or a receive
chain locked up by the ``RadioLockup`` fault, which reads as noise)
widens the backoff-exponent cap by ``csma_be_boost`` until an idle
CCA clears it.

The base station reuses the ALOHA collector unchanged: a permanently
listening receiver with no acknowledgements (ShockBurst has none), so
collided frames are still silent losses — CSMA lowers their
probability, it cannot signal them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..core.calibration import ModelCalibration
from ..hw.frames import Frame
from ..hw.radio import Nrf2401, TxOutcome
from ..sim.kernel import Simulator
from ..sim.simtime import microseconds
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component
from ..tinyos.scheduler import TaskScheduler
from .aloha import AlohaBaseMac, AlohaConfig
from .base import AppPayload, MacCounters
from .messages import make_data
from .recovery import RecoveryConfig

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.spans import SpanTracer


@dataclass(frozen=True)
class CsmaConfig(AlohaConfig):
    """Parameters of the unslotted CSMA/CA MAC.

    Extends the ALOHA poll-loop parameters with the 802.15.4
    contention knobs (default values are the standard's:
    ``macMinBE = 3``, ``aMaxBE = 5``, ``macMaxCSMABackoffs = 4``, a
    20-symbol backoff unit and an 8-symbol CCA, scaled to the
    nRF2401's 1 Mbit/s symbol rate as 320 us / 128 us).

    Attributes:
        min_be: initial backoff exponent.
        max_be: cap on the backoff exponent.
        max_backoffs: busy CCAs tolerated per frame before it is
            abandoned (the 802.15.4 channel-access-failure limit).
        backoff_unit_ticks: one backoff unit period, in ticks.
        cca_ticks: duration of one clear-channel assessment, in ticks.
    """

    min_be: int = 3
    max_be: int = 5
    max_backoffs: int = 4
    backoff_unit_ticks: int = microseconds(320)
    cca_ticks: int = microseconds(128)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.min_be < 0:
            raise ValueError(f"min_be must be >= 0: {self.min_be}")
        if self.max_be < self.min_be:
            raise ValueError(
                f"max_be must be >= min_be: {self.max_be} < {self.min_be}")
        if self.max_backoffs < 0:
            raise ValueError(
                f"max_backoffs must be >= 0: {self.max_backoffs}")
        if self.backoff_unit_ticks <= 0:
            raise ValueError(
                f"backoff unit must be positive: {self.backoff_unit_ticks}")
        if self.cca_ticks <= 0:
            raise ValueError(
                f"cca duration must be positive: {self.cca_ticks}")


class CsmaNodeMac(Component):
    """Node side: poll, back off, sense, and transmit only when clear.

    Args:
        sim: simulation kernel.
        radio: this node's transceiver (must support :meth:`cca`).
        scheduler: this node's TinyOS task scheduler (MCU cost sink).
        calibration: model constants.
        config: contention parameters.
        recovery: opt-in backoff-cap widening under busy-CCA streaks
            (None = plain 802.15.4 behaviour, byte-identical to the
            no-recovery ledgers).
    """

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: CsmaConfig,
                 recovery: Optional[RecoveryConfig] = None,
                 name: Optional[str] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name or f"{radio.address}.mac", trace)
        self._radio = radio
        self._scheduler = scheduler
        self._cal = calibration
        self.config = config
        self.recovery = recovery
        self.counters = MacCounters()
        #: Application hook, identical contract to the other MACs.
        self.payload_provider: Optional[Callable[[], Optional[AppPayload]]] \
            = None
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None
        self._stop_pending = False
        #: The single frame currently in contention (None = idle).
        self._pending: Optional[Frame] = None
        self._nb = 0
        self._be = config.min_be
        #: Consecutive busy CCAs (channel-level recovery signal).
        self._busy_streak = 0
        self._cap_widened = False
        self._backoff_stream = f"{radio.address}.csma_backoff"
        self._label_poll = f"{self.name}.poll"
        self._label_backoff = f"{self.name}.backoff"
        self._label_prep = f"{self.name}.pkt_prep"

    @property
    def poll_interval_ticks(self) -> int:
        """The node's transmission-opportunity period."""
        return self.config.poll_interval_ticks

    def on_start(self) -> None:
        self._stop_pending = False
        self._pending = None
        self._nb = 0
        self._be = self.config.min_be
        self._busy_streak = 0
        self._cap_widened = False
        self._radio.power_up()
        interval = self.config.poll_interval_ticks
        if self.config.start_jitter:
            first = self._sim.rng.uniform_ticks(
                f"{self._radio.address}.csma_start", 0, interval - 1)
        else:
            first = 0
        self._sim.after(first, self._poll, label=self._label_poll)

    def on_stop(self) -> None:
        # Mid-ShockBurst the chip cannot be switched off; defer to the
        # TX-completion callback.  A pending CCA window is cut by the
        # power-down itself (the radio books the partial sense energy).
        if self._radio.is_transmitting:
            self._stop_pending = True
            return
        self._radio.power_down()

    # ------------------------------------------------------------------
    # Poll loop
    # ------------------------------------------------------------------
    def _poll(self) -> None:
        if not self.started:
            return
        interval = self.config.poll_interval_ticks
        self._sim.after(interval, self._poll, label=self._label_poll)
        if self._pending is not None:
            # Still contending for the previous frame: the application
            # keeps buffering; this opportunity is skipped.
            return
        if self.payload_provider is None:
            return
        payload = self.payload_provider()
        if payload is None:
            return
        payload_bytes, content = payload
        frame = make_data(self._radio.address, self.config.base_station,
                          payload_bytes, content)
        self._pending = frame
        if self.spans is not None:
            self.spans.packet_queued(frame, self._sim.now, self._label_prep)
        self._scheduler.post(lambda: self._begin_contention(frame),
                             self._cal.mcu_costs.packet_preparation,
                             label=self._label_prep)

    # ------------------------------------------------------------------
    # CSMA/CA attempt loop
    # ------------------------------------------------------------------
    def _begin_contention(self, frame: Frame) -> None:
        if not self.started:
            self._pending = None
            return
        self._nb = 0
        self._be = self.config.min_be
        self._attempt(frame)

    def _backoff_cap(self) -> int:
        """The effective maximum backoff exponent right now."""
        cap = self.config.max_be
        if self._cap_widened and self.recovery is not None:
            cap += self.recovery.csma_be_boost
        return cap

    def _attempt(self, frame: Frame) -> None:
        if not self.started:
            self._pending = None
            return
        units = self._sim.rng.uniform_ticks(
            self._backoff_stream, 0, (1 << self._be) - 1)
        wait = units * self.config.backoff_unit_ticks
        self.counters.backoff_attempts += 1
        if self.spans is not None:
            self.spans.mac_phase(frame, "mac.backoff_wait",
                                 self._sim.now, self._sim.now + wait)
        self._sim.after(wait, lambda: self._start_cca(frame),
                        label=self._label_backoff)

    def _start_cca(self, frame: Frame) -> None:
        if not self.started:
            self._pending = None
            return
        start = self._sim.now
        self._radio.cca(self.config.cca_ticks,
                        lambda busy: self._cca_done(frame, start, busy))

    def _cca_done(self, frame: Frame, start: int, busy: bool) -> None:
        if self.spans is not None:
            self.spans.mac_phase(frame, "mac.cca", start, self._sim.now,
                                 "busy" if busy else "idle")
        if not self.started:
            self._pending = None
            return
        if not busy:
            if self._cap_widened and self._trace is not None:
                self._trace.record(self._sim.now, self.name,
                                   "backoff_cap_restored", "")
            self._busy_streak = 0
            self._cap_widened = False
            self._radio.send(frame, self._tx_done)
            return
        self.counters.cca_busy += 1
        recovery = self.recovery
        self._busy_streak += 1
        if (recovery is not None and not self._cap_widened
                and recovery.csma_busy_streak > 0
                and self._busy_streak >= recovery.csma_busy_streak):
            # Persistent busy readings: a saturated channel or a
            # locked-up receive chain.  Widen the contention window.
            self._cap_widened = True
            self.counters.windows_widened += 1
            if self._trace is not None:
                self._trace.record(self._sim.now, self.name,
                                   "backoff_cap_widened",
                                   f"streak={self._busy_streak}")
        self._nb += 1
        self._be = min(self._be + 1, self._backoff_cap())
        if self._nb > self.config.max_backoffs:
            # 802.15.4 channel-access failure: the frame is dropped at
            # the MAC without ever hitting the air.
            self.counters.tx_abandoned += 1
            if self._trace is not None:
                self._trace.record(self._sim.now, self.name,
                                   "tx_abandoned", frame.describe())
            if self.spans is not None:
                self.spans.packet_abandoned(frame, self._sim.now)
            self._pending = None
            return
        self._attempt(frame)

    def _tx_done(self, outcome: TxOutcome) -> None:
        self.counters.data_sent += 1
        self._pending = None
        if self._stop_pending and not self.started:
            self._stop_pending = False
            self._radio.power_down()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the node's MAC counters and poll period.

        CSMA has no beacons or slots; the contention counters
        (``cca_busy``, ``backoff_attempts``, ``tx_abandoned``) are the
        protocol-specific signal.  Read-only: call once per collected
        run.
        """
        self.counters.observe_metrics(registry, node)
        registry.gauge("mac", node, "poll_interval_ticks").set(
            float(self.config.poll_interval_ticks))


class CsmaBaseMac(AlohaBaseMac):
    """Base-station side: the ALOHA collector, unchanged.

    CSMA/CA only changes *when nodes talk*, not how the collector
    listens: the receiver stays on permanently and ShockBurst still has
    no acknowledgements, so the inherited behaviour (continuous RX,
    software discard of non-data frames, per-frame reception cost) is
    exactly right.
    """


__all__ = ["CsmaConfig", "CsmaNodeMac", "CsmaBaseMac"]
