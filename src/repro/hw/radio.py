"""Nordic nRF2401 radio model.

The nRF2401 features the paper relies on (Sections 3.1 and 4.2):

* **ShockBurst**: the MCU clocks the payload into an on-chip FIFO over
  SPI at a low rate (radio in stand-by, negligible current) and the chip
  then bursts the frame at the full air rate.  A transmission therefore
  costs a fixed radio-on event: PLL settle + frame airtime + shutdown
  tail, all at the TX current.
* **Hardware CRC**: corrupted frames (collisions, channel errors) are
  detected and dropped *inside the radio*; the MCU is never woken.
* **Hardware address filter**: frames addressed to another node are
  likewise dropped in the radio; the RX energy is still spent
  (overhearing), but the MCU stays asleep.
* **Clear-channel assessment**: contention MACs (CSMA/CA) dwell the
  receive chain for a short sensing window (:meth:`Nrf2401.cca`)
  without decoding frames; the window costs RX current and reports
  whether any transmission overlapped it.

Both hardware filters can be disabled for ablation studies
(:attr:`Nrf2401.crc_enabled`, :attr:`Nrf2401.address_filter_enabled`);
disabling the CRC reproduces stock TOSSIM's optimistic behaviour where
collided packets are still "received".

Energy is booked by the power-state ledger (states ``tx`` / ``rx`` /
``standby`` / ``power_down``); in parallel, every joule of TX/RX-state
energy is attributed to a :class:`~repro.core.losses.RadioEnergyCategory`
via the node's :class:`~repro.core.losses.LossAccountant`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, TYPE_CHECKING

from ..core.calibration import ModelCalibration
from ..core.ledger import PowerStateLedger
from ..core.losses import LossAccountant, RadioEnergyCategory
from ..core.states import PowerState, PowerStateTable
from ..sim.kernel import Simulator
from ..sim.simtime import seconds, to_seconds
from ..sim.trace import TraceRecorder
from .frames import Frame, FrameKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.report import TrafficCounters
    from ..obs.metrics import MetricsRegistry
    from ..obs.spans import SpanTracer
    from ..phy.channel import Channel, Transmission

#: Radio power-state names.
POWER_DOWN = "power_down"
STANDBY = "standby"
TX = "tx"
RX = "rx"
CCA = "cca"


@dataclass
class TxOutcome:
    """What happened to a transmitted frame.

    ``corrupted_at`` lists the addresses of in-range receivers where the
    frame arrived corrupted (collision or channel error).  ``delivered_to``
    lists receivers whose radio accepted it (CRC and address filter
    passed and the receiver was listening for the whole airtime).
    """

    frame: Frame
    corrupted_at: list = field(default_factory=list)
    delivered_to: list = field(default_factory=list)

    @property
    def reached_destination(self) -> bool:
        """True if a unicast frame was accepted by its destination."""
        return self.frame.dest in self.delivered_to


class RadioError(RuntimeError):
    """Illegal radio operation (e.g. TX while already transmitting)."""


class Nrf2401:
    """State-machine model of the nRF2401 transceiver.

    Args:
        sim: simulation kernel.
        calibration: electrical/timing constants.
        channel: the shared medium this radio is attached to.
        address: this radio's hardware address (the node id).
        accountant: loss-taxonomy accountant energy is attributed to.
        name: instance name for traces.
    """

    def __init__(self, sim: Simulator, calibration: ModelCalibration,
                 channel: "Channel", address: str,
                 accountant: Optional[LossAccountant] = None,
                 name: str = "radio",
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._cal = calibration
        self._channel = channel
        self.address = address
        self.name = name
        self._trace = trace
        self.accountant = accountant if accountant is not None \
            else LossAccountant()
        table = PowerStateTable([
            PowerState(POWER_DOWN, calibration.radio_power_down_a),
            PowerState(STANDBY, calibration.radio_standby_a),
            PowerState(TX, calibration.radio_tx_a),
            PowerState(RX, calibration.radio_rx_a),
            # Carrier sensing keeps the receive chain on: RX current.
            PowerState(CCA, calibration.radio_rx_a),
        ])
        self.ledger = PowerStateLedger(
            sim, name, table, calibration.supply_v,
            initial_state=POWER_DOWN)
        #: Called with (frame,) when a frame passes the hardware filters.
        self.on_frame: Optional[Callable[[Frame], None]] = None
        #: Hardware CRC check (ablation: False = stock-TOSSIM optimism).
        self.crc_enabled = True
        #: Hardware destination-address filter (ablation switch).
        self.address_filter_enabled = True
        #: RF channel index (the nRF2401 tunes 2400-2524 MHz in 1 MHz
        #: steps).  Radios only hear transmissions on their own channel;
        #: multi-BAN deployments separate networks with it.
        self.rf_channel = 0
        #: Fault injection (:mod:`repro.faults`): while True, the
        #: receive chain is locked up — every captured frame is lost
        #: inside the radio exactly like a CRC failure (RX energy
        #: spent, MCU never woken).
        self.fault_rx_deaf = False
        #: Fault injection: CRC-fail the next N captured beacons.
        self.fault_drop_beacons = 0
        #: Frames lost to the two injected receive-path faults above.
        self.fault_frames_dropped = 0
        #: Optional causal-span tracer (:mod:`repro.obs.spans`); hooks
        #: are plain calls, so None costs one attribute test.
        self.spans: Optional["SpanTracer"] = None

        self._rx_since: Optional[int] = None
        self._tx_busy = False
        self._inflight: Dict[int, "Transmission"] = {}
        # Frames whose airtime this radio is actively capturing (RX on
        # since before first bit).  A fault-driven power_down() moves
        # them to _fault_cut with the cut tick, so frame_arrival_end
        # can report an explicit fault_dropped outcome instead of a
        # silent non-capture.
        self._capturing: Set[int] = set()
        # Captures abandoned by a software mode switch (stop_rx/send),
        # keyed by frame id -> abandon tick.  Normally these drain
        # silently at frame_arrival_end; if the radio powers down
        # before that, the teardown was a fault quiesce and they are
        # promoted to fault cuts at their abandon tick.
        self._rx_abandoned: Dict[int, int] = {}
        self._fault_cut: Dict[int, int] = {}
        # Carrier-sense window bookkeeping.
        self._cca_since: Optional[int] = None
        self._cca_busy_start = False
        self._cca_on_result: Optional[Callable[[bool], None]] = None

        # Hot-path precomputation: the ShockBurst chain schedules three
        # callbacks per frame and the timing constants never change, so
        # labels and tick conversions are formed once here.  The
        # airtime/energy memos are keyed by payload size (a handful of
        # distinct values per scenario); the cached products repeat the
        # exact left-associated expressions of the uncached code, so
        # every booked energy stays bit-identical.
        timing = calibration.radio_timing
        self._label_txair = f"{name}.txair"
        self._label_txtail = f"{name}.txtail"
        self._label_txdone = f"{name}.txdone"
        self._label_rxtail = f"{name}.rxtail"
        self._label_ccadone = f"{name}.ccadone"
        self._tx_settle_ticks = seconds(timing.tx_settle_s)
        self._tx_tail_ticks = seconds(timing.tx_tail_s)
        self._rx_tail_ticks = seconds(timing.rx_tail_s)
        self._airtime_memo: Dict[int, int] = {}
        self._tx_event_memo: Dict[int, int] = {}
        self._tx_energy_memo: Dict[int, float] = {}
        self._rx_energy_memo: Dict[int, float] = {}
        self._cca_energy_memo: Dict[int, float] = {}

        # Traffic counters (read via snapshot_counters()).
        self._count_data_tx = 0
        self._count_data_rx = 0
        self._count_control_tx = 0
        self._count_control_rx = 0
        self._count_overheard = 0
        self._count_corrupted = 0

        channel.attach(self)

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current power-state name."""
        return self.ledger.state

    @property
    def is_receiving(self) -> bool:
        """Whether the receive chain is on."""
        return self.ledger.state == RX

    @property
    def is_transmitting(self) -> bool:
        """Whether a ShockBurst event is in flight (power-down would be
        illegal right now)."""
        return self._tx_busy

    def power_up(self) -> None:
        """POWER_DOWN -> STANDBY (configuration registers retained)."""
        if self.ledger.state == POWER_DOWN:
            self.ledger.transition(STANDBY)

    def power_down(self) -> None:
        """Switch everything off.  Illegal mid-transmission."""
        if self._tx_busy:
            raise RadioError(f"{self.name}: power_down during transmission")
        if self._cca_since is not None:
            # A fault quiesced the radio mid-sense: book the truncated
            # window (the ledger stops accruing CCA-state energy at
            # this instant) and drop the pending result callback.
            partial = (to_seconds(self._sim.now - self._cca_since)
                       * self._cal.radio_rx_a * self._cal.supply_v)
            self.accountant.book(RadioEnergyCategory.IDLE_LISTENING,
                                 partial, frames=0)
            self._cca_since = None
            self._cca_on_result = None
        if self._capturing:
            # Frames whose airtime we were capturing are cut here; the
            # channel will still deliver frame_arrival_end (receiver
            # sets are frozen at first bit), where the cut becomes an
            # explicit fault_dropped outcome.
            for frame_id in self._capturing:
                self._fault_cut[frame_id] = self._sim.now
            self._capturing.clear()
        if self._rx_abandoned:
            # The MAC's teardown stopped the receive chain moments ago
            # (stop_rx mid-capture) and now the whole radio goes dark:
            # that is a fault quiesce, not a routine mode switch.  The
            # abandoned captures become fault cuts at the tick the
            # chain actually stopped, so the energy booked at
            # frame_arrival_end matches what the ledger accrued.
            for frame_id, cut in self._rx_abandoned.items():
                self._fault_cut.setdefault(frame_id, cut)
            self._rx_abandoned.clear()
        self._rx_since = None
        self.ledger.transition(POWER_DOWN)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def start_rx(self) -> None:
        """Turn the receive chain on (stand-by -> RX).

        The chip cannot reach RX from power-down: the synthesizer and
        configuration logic come up in stand-by first (``power_up()``).
        """
        if self._tx_busy:
            raise RadioError(f"{self.name}: start_rx during transmission")
        if self.ledger.state == POWER_DOWN:
            raise RadioError(
                f"{self.name}: start_rx while powered down "
                f"(call power_up() first)")
        if self.ledger.state == CCA:
            raise RadioError(
                f"{self.name}: start_rx during carrier sensing "
                f"(wait for the CCA result)")
        if self.ledger.state == RX:
            if self._rx_since is None:
                # Re-arm during the turn-off tail: supersede the tail
                # and keep listening.
                self.ledger.retag("listen")
                self._rx_since = self._sim.now
            return
        self.ledger.transition(RX, tag="listen")
        self._rx_since = self._sim.now
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "rx_on", "")

    def stop_rx(self) -> None:
        """Turn the receive chain off, spending the turn-off tail.

        The tail (a fitted ~32 us at RX current) models the receive-chain
        shutdown; it is booked in the RX state and ends in STANDBY.
        """
        if self.ledger.state != RX:
            return
        self._rx_since = None
        # Frames mid-capture are abandoned (legitimately — the chain is
        # being turned off by the MAC, not cut by a fault).  Remember
        # the abandon tick: should the radio power down before the
        # frame drains, power_down() reclassifies these as fault cuts.
        for frame_id in self._capturing:
            self._rx_abandoned[frame_id] = self._sim.now
        self._capturing.clear()
        self.ledger.retag("tail")
        self._sim.after(self._rx_tail_ticks, self._finish_rx_tail,
                        label=self._label_rxtail)

    def _finish_rx_tail(self) -> None:
        # A start_rx()/send() issued during the tail supersedes it.
        if self.ledger.state == RX and self._rx_since is None:
            self.ledger.transition(STANDBY)
            if self._trace is not None:
                self._trace.record(self._sim.now, self.name, "rx_off", "")

    # ------------------------------------------------------------------
    # Carrier sensing (CCA)
    # ------------------------------------------------------------------
    def cca(self, duration_ticks: int,
            on_result: Callable[[bool], None]) -> None:
        """Assess the channel for ``duration_ticks`` (stand-by -> CCA).

        The receive chain dwells at RX current without decoding frames;
        ``on_result`` is invoked with ``True`` when the channel was busy
        at any sampled instant of the window (energy-detect style: first
        bit, last bit, or a locked-up receive chain reading noise).  The
        window's energy is booked as idle listening — carrier sensing
        never captures a frame.  Like RX/TX, sensing is reachable only
        from stand-by.
        """
        if self._tx_busy:
            raise RadioError(f"{self.name}: cca during transmission")
        if self.ledger.state == POWER_DOWN:
            raise RadioError(
                f"{self.name}: cca while powered down "
                f"(call power_up() first)")
        if self.ledger.state == RX:
            raise RadioError(
                f"{self.name}: cca while listening (stop_rx() first)")
        if self.ledger.state == CCA:
            raise RadioError(f"{self.name}: cca already in progress")
        if duration_ticks <= 0:
            raise ValueError(
                f"{self.name}: cca duration must be > 0: {duration_ticks}")
        self._cca_since = self._sim.now
        self._cca_busy_start = self._channel.is_busy_at(self.address)
        self._cca_on_result = on_result
        self.ledger.transition(CCA, tag="sense")
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "cca_start", "")
        self._sim.after(duration_ticks, self._finish_cca,
                        label=self._label_ccadone)

    def _finish_cca(self) -> None:
        if self.ledger.state != CCA:
            return  # a fault powered the radio down mid-sense
        on_result = self._cca_on_result
        busy = (self._cca_busy_start
                or self._channel.is_busy_at(self.address)
                or self.fault_rx_deaf)
        # _cca_since can be later than the window start: a measurement
        # reset mid-sense advances it so the booking matches the ledger.
        elapsed = self._sim.now - self._cca_since \
            if self._cca_since is not None else 0
        energy = self._cca_energy_memo.get(elapsed)
        if energy is None:
            energy = (to_seconds(elapsed)
                      * self._cal.radio_rx_a * self._cal.supply_v)
            self._cca_energy_memo[elapsed] = energy
        # Idle-listening class: the chain was on but no frame was (or
        # could be) captured, which is exactly what the taxonomy's
        # residual category means — here it is booked eagerly so the
        # attribution invariant covers the CCA ledger state too.
        self.accountant.book(RadioEnergyCategory.IDLE_LISTENING,
                             energy, frames=0)
        self._cca_since = None
        self._cca_busy_start = False
        self._cca_on_result = None
        self.ledger.transition(STANDBY)
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "cca_done",
                               "busy" if busy else "idle")
        if on_result is not None:
            on_result(busy)

    # ------------------------------------------------------------------
    # Transmit path (ShockBurst)
    # ------------------------------------------------------------------
    def airtime_ticks(self, frame: Frame) -> int:
        """On-air duration of ``frame`` in ticks."""
        num_bytes = frame.payload_bytes
        ticks = self._airtime_memo.get(num_bytes)
        if ticks is None:
            ticks = seconds(self._cal.radio_timing.airtime_s(num_bytes))
            self._airtime_memo[num_bytes] = ticks
        return ticks

    def tx_event_ticks(self, frame: Frame) -> int:
        """Total radio-on time of a ShockBurst transmission of ``frame``."""
        num_bytes = frame.payload_bytes
        ticks = self._tx_event_memo.get(num_bytes)
        if ticks is None:
            ticks = seconds(self._cal.radio_timing.tx_event_s(num_bytes))
            self._tx_event_memo[num_bytes] = ticks
        return ticks

    def send(self, frame: Frame,
             on_complete: Optional[Callable[[TxOutcome], None]] = None
             ) -> None:
        """Transmit ``frame`` as one ShockBurst event.

        The radio must not be transmitting already; an active receive
        chain is switched off first (mode switch).  ``on_complete`` is
        invoked, with the :class:`TxOutcome`, when the radio returns to
        stand-by.
        """
        if self._tx_busy:
            raise RadioError(f"{self.name}: send while already transmitting")
        if self.ledger.state == POWER_DOWN:
            raise RadioError(
                f"{self.name}: send while powered down "
                f"(call power_up() first)")
        if self.ledger.state == CCA:
            raise RadioError(
                f"{self.name}: send during carrier sensing "
                f"(wait for the CCA result)")
        if frame.src != self.address:
            raise RadioError(
                f"{self.name}: frame src {frame.src!r} != radio address "
                f"{self.address!r}")
        if self.ledger.state == RX:
            # Mode switch: abandon listening immediately (no RX tail; the
            # chip retunes the synthesizer, accounted in the TX settle).
            self._rx_since = None
            for frame_id in self._capturing:
                self._rx_abandoned[frame_id] = self._sim.now
            self._capturing.clear()
        self._tx_busy = True
        if frame.frame_id == 0:
            # First transmit: stamp the per-simulation serial (Frame is
            # frozen, so ids survive retransmits of the same object).
            object.__setattr__(frame, "frame_id",
                               self._sim.next_serial())
        self.ledger.transition(TX, tag="settle")
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "tx_start",
                               frame.describe())
        if self.spans is not None:
            self.spans.tx_start(frame, self._sim.now)
        self._sim.after(self._tx_settle_ticks,
                        lambda: self._begin_air(frame, on_complete),
                        label=self._label_txair)

    def _begin_air(self, frame: Frame,
                   on_complete: Optional[Callable[[TxOutcome], None]]
                   ) -> None:
        self.ledger.retag("air")
        airtime = self.airtime_ticks(frame)
        transmission = self._channel.begin_transmission(self, frame, airtime)
        self._sim.after(airtime,
                        lambda: self._end_air(transmission, on_complete),
                        label=self._label_txtail)

    def _end_air(self, transmission: "Transmission",
                 on_complete: Optional[Callable[[TxOutcome], None]]) -> None:
        outcome = self._channel.end_transmission(transmission)
        self.ledger.retag("tail")
        self._sim.after(self._tx_tail_ticks,
                        lambda: self._finish_tx(outcome, on_complete),
                        label=self._label_txdone)

    def _finish_tx(self, outcome: TxOutcome,
                   on_complete: Optional[Callable[[TxOutcome], None]]
                   ) -> None:
        self._tx_busy = False
        self.ledger.transition(STANDBY)
        self._book_tx_energy(outcome)
        if self._trace is not None:
            self._trace.record(self._sim.now, self.name, "tx_done",
                               outcome.frame.describe())
        if self.spans is not None:
            self.spans.tx_finish(outcome, self._sim.now)
        if on_complete is not None:
            on_complete(outcome)

    def _book_tx_energy(self, outcome: TxOutcome) -> None:
        frame = outcome.frame
        energy = self._tx_energy_memo.get(frame.payload_bytes)
        if energy is None:
            energy = (self._cal.radio_timing.tx_event_s(frame.payload_bytes)
                      * self._cal.radio_tx_a * self._cal.supply_v)
            self._tx_energy_memo[frame.payload_bytes] = energy
        unicast_lost = (not frame.is_broadcast
                        and frame.dest in outcome.corrupted_at)
        if unicast_lost:
            self.accountant.book_collision_tx(energy)
            return
        if frame.kind.is_control:
            self.accountant.book(RadioEnergyCategory.CONTROL_TX, energy)
            self._count_control_tx += 1
        else:
            self.accountant.book(RadioEnergyCategory.DATA_TX, energy)
            self._count_data_tx += 1

    # ------------------------------------------------------------------
    # Channel-facing reception interface
    # ------------------------------------------------------------------
    def frame_arrival_start(self, transmission: "Transmission") -> None:
        """Channel notification: a frame's airtime begins at this radio."""
        self._inflight[transmission.frame.frame_id] = transmission
        if self._rx_since is not None:
            # The chain is on from the first bit: this frame is being
            # captured (tracked so a fault-driven power_down mid-airtime
            # becomes an explicit fault_dropped, not a silent miss).
            self._capturing.add(transmission.frame.frame_id)

    def frame_arrival_end(self, transmission: "Transmission",
                          corrupted: bool) -> None:
        """Channel notification: a frame's airtime ends at this radio.

        Decides whether the frame was captured and, if so, runs the
        hardware CRC and address filters and books the RX energy to the
        appropriate loss category.
        """
        self._inflight.pop(transmission.frame.frame_id, None)
        self._capturing.discard(transmission.frame.frame_id)
        self._rx_abandoned.pop(transmission.frame.frame_id, None)
        start = transmission.start_time
        cut = self._fault_cut.pop(transmission.frame.frame_id, None)
        if cut is not None:
            # The radio was quiesced (NodeCrash / BatteryBrownout) while
            # capturing this frame: the receive chain spent RX energy
            # from first bit to the cut, then went dark.  Book the
            # truncated capture as a collision-class loss and surface an
            # explicit fault_dropped outcome instead of a silent miss.
            partial = (to_seconds(cut - start)
                       * self._cal.radio_rx_a * self._cal.supply_v)
            self.accountant.book(RadioEnergyCategory.COLLISION, partial)
            self._count_corrupted += 1
            self.fault_frames_dropped += 1
            if self.spans is not None:
                self.spans.rx_outcome(transmission.frame, self.address,
                                      start, cut, "fault_dropped")
            return
        captured = (self._rx_since is not None and self._rx_since <= start)
        if not captured:
            return  # receiver was off (or turned on mid-frame): nothing seen
        frame = transmission.frame
        airtime = transmission.airtime
        rx_energy = self._rx_energy_memo.get(airtime)
        if rx_energy is None:
            rx_energy = (to_seconds(airtime)
                         * self._cal.radio_rx_a * self._cal.supply_v)
            self._rx_energy_memo[airtime] = rx_energy
        faulted = self.fault_rx_deaf
        if (not faulted and self.fault_drop_beacons > 0
                and frame.kind is FrameKind.BEACON):
            self.fault_drop_beacons -= 1
            faulted = True
        spans = self.spans
        end = transmission.end_time
        if faulted:
            # Injected receive-path fault: lost inside the radio like a
            # CRC failure — the energy is spent, the MCU stays asleep.
            self.fault_frames_dropped += 1
            self.accountant.book(RadioEnergyCategory.COLLISION, rx_energy)
            self._count_corrupted += 1
            if spans is not None:
                spans.rx_outcome(frame, self.address, start, end,
                                 "fault_dropped")
            return
        if corrupted and self.crc_enabled:
            self.accountant.book(RadioEnergyCategory.COLLISION, rx_energy)
            self._count_corrupted += 1
            if spans is not None:
                spans.rx_outcome(frame, self.address, start, end,
                                 "corrupted")
            return
        if not frame.addressed_to(self.address) \
                and self.address_filter_enabled:
            self.accountant.book(RadioEnergyCategory.OVERHEARING, rx_energy)
            self._count_overheard += 1
            if spans is not None:
                spans.rx_outcome(frame, self.address, start, end,
                                 "overheard")
            return
        # Frame is handed to software (possibly corrupted, if CRC is off;
        # possibly other-addressed, if the address filter is off).
        if frame.kind.is_control:
            self.accountant.book(RadioEnergyCategory.CONTROL_RX, rx_energy)
            self._count_control_rx += 1
        else:
            self.accountant.book(RadioEnergyCategory.DATA_RX, rx_energy)
            self._count_data_rx += 1
        transmission.delivered_to.append(self.address)
        if spans is not None:
            spans.rx_outcome(frame, self.address, start, end, "delivered")
        if self.on_frame is not None:
            self.on_frame(frame)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def finalize_attribution(self) -> None:
        """Assign un-attributed RX energy to idle listening.

        Call after the simulation horizon (ledgers closed).
        """
        self.accountant.finalize(self.ledger.energy_j(state=RX))

    def snapshot_counters(self) -> "TrafficCounters":
        """Current traffic counters as a :class:`TrafficCounters`."""
        from ..core.report import TrafficCounters
        return TrafficCounters(
            data_tx=self._count_data_tx,
            data_rx=self._count_data_rx,
            control_tx=self._count_control_tx,
            control_rx=self._count_control_rx,
            overheard=self._count_overheard,
            corrupted=self._count_corrupted,
        )

    def energy_mj(self) -> float:
        """Total radio energy so far, in millijoules."""
        return self.ledger.energy_mj()

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull this radio's figures into a metrics registry.

        Records per-state residency and energy (state timers) plus the
        traffic counters the MAC surveys evaluate on (data/control
        TX/RX, overhearing, CRC-filtered corruption).  Read-only: call
        once per collected run.
        """
        residency = registry.state_timer("radio", node, "residency_s")
        for state, state_s in self.ledger.seconds_by_state().items():
            residency.add(state, state_s)
        energy = registry.state_timer("radio", node, "energy_mj")
        for state, joules in self.ledger.energy_by_state().items():
            energy.add(state, 1e3 * joules)
        counter = registry.counter
        counter("radio", node, "data_tx").inc(self._count_data_tx)
        counter("radio", node, "data_rx").inc(self._count_data_rx)
        counter("radio", node, "control_tx").inc(self._count_control_tx)
        counter("radio", node, "control_rx").inc(self._count_control_rx)
        counter("radio", node, "overheard").inc(self._count_overheard)
        counter("radio", node, "corrupted").inc(self._count_corrupted)
        counter("radio", node,
                "transitions").inc(self.ledger.transitions)
        if self.fault_frames_dropped:
            counter("radio", node,
                    "fault_frames_dropped").inc(self.fault_frames_dropped)

    def reset_measurement(self) -> None:
        """Clear ledger, attribution and counters at measurement start."""
        self.ledger.reset()
        self.accountant = LossAccountant()
        if self._cca_since is not None:
            # A sensing window straddling the reset: only its post-reset
            # part is in the fresh ledger, so only that part may be
            # booked when the window completes.
            self._cca_since = self._sim.now
        self._count_data_tx = 0
        self._count_data_rx = 0
        self._count_control_tx = 0
        self._count_control_rx = 0
        self._count_overheard = 0
        self._count_corrupted = 0


__all__ = ["Nrf2401", "RadioError", "TxOutcome",
           "POWER_DOWN", "STANDBY", "TX", "RX", "CCA"]
