"""Power-state definitions and declared transition tables.

The paper's energy model is *time-in-state*: each hardware component is,
at any instant, in exactly one power state with a characteristic current
draw, and its energy is ``E = I * Vdd * t`` summed over the intervals
spent in each state (Section 4.1 of the paper).

:class:`PowerState` couples a state name with its current; component
models declare a :class:`PowerStateTable` of the states they support.

:class:`TransitionSpec` declares which state *changes* a component is
allowed to make — the edges of its power-state machine.  The specs for
the three energy-booking components live here, next to the calibration
data they guard, and are verified two ways: statically by the lint
suite's state-machine analysis (``repro.lint.statemachine`` proves the
code encodes exactly these edges) and at runtime by the test suite.
The fields must stay *literals*: the analyzer reads them from the AST
without importing this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Tuple


@dataclass(frozen=True)
class PowerState:
    """One power state of a hardware component.

    Attributes:
        name: identifier unique within the component (e.g. ``"rx"``).
        current_a: current drawn in this state, in amperes.
    """

    name: str
    current_a: float

    def __post_init__(self) -> None:
        if self.current_a < 0:
            raise ValueError(
                f"state {self.name!r}: current must be >= 0, "
                f"got {self.current_a}")

    def power_w(self, supply_v: float) -> float:
        """Power drawn in this state at supply voltage ``supply_v``."""
        return self.current_a * supply_v


class PowerStateTable:
    """The set of power states a component supports, indexed by name."""

    def __init__(self, states: Iterable[PowerState]) -> None:
        self._states: Dict[str, PowerState] = {}
        for state in states:
            if state.name in self._states:
                raise ValueError(f"duplicate power state {state.name!r}")
            self._states[state.name] = state
        if not self._states:
            raise ValueError("a component needs at least one power state")

    def __getitem__(self, name: str) -> PowerState:
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(
                f"unknown power state {name!r}; "
                f"known: {sorted(self._states)}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._states

    def __iter__(self) -> Iterator[PowerState]:
        return iter(self._states.values())

    def names(self) -> Iterator[str]:
        """Iterate over state names."""
        return iter(self._states.keys())


@dataclass(frozen=True)
class TransitionSpec:
    """Declared power-state machine of one hardware component.

    Attributes:
        component: short label used in reports (``"radio"``).
        module: module path (suffix) of the implementing class.
        class_name: the class whose ledger encodes this machine.
        initial: state the ledger is constructed in.
        states: every state (must equal the PowerStateTable's set).
        transitions: the legal ``(src, dst)`` edges; self-loops are
            re-tags, never listed.
        busy_flags: boolean attributes documented to be equivalent to
            "state is in this subset" (``_tx_busy`` ⇔ ``state ==
            "tx"``), which is what lets ``if self._tx_busy: raise``
            guards narrow the static analysis.
    """

    component: str
    module: str
    class_name: str
    initial: str
    states: Tuple[str, ...]
    transitions: Tuple[Tuple[str, str], ...]
    busy_flags: Tuple[Tuple[str, Tuple[str, ...]], ...] = field(
        default=())

    def __post_init__(self) -> None:
        known = set(self.states)
        if self.initial not in known:
            raise ValueError(
                f"{self.component}: initial state {self.initial!r} "
                f"not in {sorted(known)}")
        for src, dst in self.transitions:
            if src not in known or dst not in known:
                raise ValueError(
                    f"{self.component}: transition {src!r} -> {dst!r} "
                    f"references an unknown state")
            if src == dst:
                raise ValueError(
                    f"{self.component}: self-loop {src!r} -> {dst!r} "
                    f"(a same-state change is a re-tag, not a "
                    f"transition)")

    def allows(self, src: str, dst: str) -> bool:
        """Whether the machine may move from ``src`` to ``dst``."""
        return src == dst or (src, dst) in self.transitions


#: MSP430 core (``repro/hw/mcu.py``): the scheduler wakes it from
#: either power-saving mode, and ``sleep(deep=...)`` selects (or
#: deepens/lightens) the LPM from any state.
MCU_TRANSITIONS = TransitionSpec(
    component="mcu",
    module="hw/mcu.py",
    class_name="Msp430",
    initial="sleep",
    states=("active", "sleep", "deep_sleep"),
    transitions=(
        ("sleep", "active"),        # wake() for the next task
        ("deep_sleep", "active"),   # wake() from the deep-sleep what-if
        ("active", "sleep"),        # task queue drained
        ("active", "deep_sleep"),   # deep-sleep policy extension
        ("sleep", "deep_sleep"),    # power manager deepens a sleep
        ("deep_sleep", "sleep"),    # ... or lightens it
    ),
)

#: nRF2401 transceiver (``repro/hw/radio.py``).  RX, TX and the CCA
#: sensing window are entered only from stand-by (plus the RX -> TX
#: ShockBurst mode switch); the chip must power up to stand-by before
#: doing anything, which is why there is no ``power_down -> tx``/``rx``
#: edge.  ``cca`` is a bounded receive-chain dwell (carrier sense at RX
#: current) that always returns to stand-by, except when a fault
#: quiesces the radio mid-sense.
RADIO_TRANSITIONS = TransitionSpec(
    component="radio",
    module="hw/radio.py",
    class_name="Nrf2401",
    initial="power_down",
    states=("power_down", "standby", "tx", "rx", "cca"),
    transitions=(
        ("power_down", "standby"),  # power_up()
        ("standby", "power_down"),  # power_down()
        ("rx", "power_down"),       # power_down() while listening
        ("standby", "rx"),          # start_rx()
        ("rx", "standby"),          # rx tail complete
        ("standby", "tx"),          # send() (ShockBurst event)
        ("rx", "tx"),               # send() mode switch mid-listen
        ("tx", "standby"),          # ShockBurst event complete
        ("standby", "cca"),         # cca() carrier-sense window
        ("cca", "standby"),         # sensing window complete
        ("cca", "power_down"),      # power_down() mid-sense (faults)
    ),
    busy_flags=(("_tx_busy", ("tx",)),),
)

#: Biopotential ASIC (``repro/hw/asic.py``): a plain on/off switch.
ASIC_TRANSITIONS = TransitionSpec(
    component="asic",
    module="hw/asic.py",
    class_name="BiopotentialAsic",
    initial="on",
    states=("on", "off"),
    transitions=(
        ("on", "off"),              # power_off()
        ("off", "on"),              # power_on()
    ),
)

#: All declared component state machines, for tests and tooling.
ALL_TRANSITION_SPECS: Tuple[TransitionSpec, ...] = (
    MCU_TRANSITIONS, RADIO_TRANSITIONS, ASIC_TRANSITIONS,
)


__all__ = [
    "ALL_TRANSITION_SPECS",
    "ASIC_TRANSITIONS",
    "MCU_TRANSITIONS",
    "PowerState",
    "PowerStateTable",
    "RADIO_TRANSITIONS",
    "TransitionSpec",
]
