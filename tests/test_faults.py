"""Tests for the deterministic fault-injection subsystem.

Covers the spec value types and their CLI parser, the injector's fault
mechanics on real scenarios (crash/reboot, radio lockup, beacon-loss
burst, clock step, battery brownout), the reproducibility contract
(same seed, same schedule, same ledgers; faults participate in the
cache fingerprint), and the promise that a config without faults is
byte-identical to one predating the subsystem.
"""

import dataclasses

import pytest

from repro.exec import config_fingerprint
from repro.faults import (
    BatteryBrownout,
    BeaconLossBurst,
    ClockStep,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    RadioLockup,
    RandomFaults,
    parse_fault_spec,
    random_fault_plan,
)
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.obs import MetricsRegistry

MEASURE_S = 2.0


def _config(**overrides) -> BanScenarioConfig:
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=2,
                    cycle_ms=30.0, measure_s=MEASURE_S, seed=11)
    defaults.update(overrides)
    return BanScenarioConfig(**defaults)


class TestSpecs:
    def test_validation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            NodeCrash(node="", at_s=1.0)
        with pytest.raises(ValueError):
            NodeCrash(node="node1", at_s=-1.0)
        with pytest.raises(ValueError):
            NodeCrash(node="node1", at_s=1.0, reboot_after_s=0.0)
        with pytest.raises(ValueError):
            RadioLockup(node="node1", at_s=1.0, duration_s=0.0)
        with pytest.raises(ValueError):
            BeaconLossBurst(node="node1", at_s=1.0, count=0)
        with pytest.raises(ValueError):
            ClockStep(node="node1", at_s=1.0, offset_ms=0.0)
        with pytest.raises(ValueError):
            BatteryBrownout(node="node1", capacity_mah=0.0)
        with pytest.raises(ValueError):
            BatteryBrownout(node="node1", capacity_mah=1.0,
                            soc_threshold=1.5)
        with pytest.raises(ValueError):
            RandomFaults(count=0)

    def test_plan_truthiness(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(NodeCrash(node="node1", at_s=1.0),))

    def test_specs_are_hashable_dataclasses(self):
        plan = FaultPlan(faults=(NodeCrash(node="node1", at_s=1.0),))
        assert dataclasses.is_dataclass(plan)
        assert hash(plan.faults[0]) == hash(NodeCrash(node="node1",
                                                      at_s=1.0))


class TestParser:
    def test_parses_every_kind(self):
        plan = parse_fault_spec(
            "crash,node=node1,at=5,reboot=3; "
            "lockup,node=node2,at=8,dur=2; "
            "beacons,node=node1,at=12,count=5; "
            "clockstep,node=node1,at=20,ms=-40; "
            "brownout,node=node3,mah=0.02,soc=0.1; "
            "random,count=4,horizon=30")
        kinds = [type(fault).__name__ for fault in plan.faults]
        assert kinds == ["NodeCrash", "RadioLockup", "BeaconLossBurst",
                         "ClockStep", "BatteryBrownout", "RandomFaults"]
        assert plan.faults[0].reboot_after_s == 3.0
        assert plan.faults[3].offset_ms == -40.0

    def test_crash_without_reboot(self):
        plan = parse_fault_spec("crash,node=node1,at=5")
        assert plan.faults[0].reboot_after_s is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_spec("meteor,node=node1,at=1")

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="missing field"):
            parse_fault_spec("lockup,node=node1,at=1")

    def test_malformed_field_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_fault_spec("crash,node1,at=1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="no fault entries"):
            parse_fault_spec(" ; ")


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        nodes = ["node1", "node2", "node3"]
        assert random_fault_plan(42, nodes, 6) \
            == random_fault_plan(42, nodes, 6)

    def test_different_seed_different_plan(self):
        nodes = ["node1", "node2"]
        assert random_fault_plan(1, nodes, 6) \
            != random_fault_plan(2, nodes, 6)

    def test_times_inside_horizon(self):
        for fault in random_fault_plan(7, ["node1"], 20, horizon_s=10.0):
            assert 0.0 < fault.at_s < 10.0


class TestInjection:
    def test_crash_without_reboot_silences_node(self):
        clean = BanScenario(_config()).run()
        plan = FaultPlan(faults=(NodeCrash(node="node1", at_s=0.3),))
        scenario = BanScenario(_config(faults=plan))
        result = scenario.run()
        assert scenario.fault_injector.summary() == {
            "node1": {"crashes": 1}}
        # The node is down for most of the window: radio off, no slots.
        assert result.nodes["node1"].radio_mj \
            < 0.5 * clean.nodes["node1"].radio_mj
        assert not scenario.nodes[0].mac.started
        assert scenario.nodes[0].radio.state == "power_down"

    def test_crash_and_reboot_resyncs(self):
        plan = FaultPlan(faults=(
            NodeCrash(node="node1", at_s=0.3, reboot_after_s=0.5),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        assert scenario.fault_injector.summary() == {
            "node1": {"crashes": 1, "reboots": 1}}
        mac = scenario.nodes[0].mac
        assert mac.started
        assert mac.is_synced
        # Re-entering SYNCED after the reboot counts as a recovery.
        assert mac.counters.recoveries >= 1

    def test_lockup_recovers(self):
        plan = FaultPlan(faults=(
            RadioLockup(node="node2", at_s=0.4, duration_s=0.3),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        counters = scenario.fault_injector.counters_for("node2")
        assert counters.lockups == 1
        assert counters.lockup_recoveries == 1
        radio = scenario.nodes[1].radio
        assert not radio.fault_rx_deaf
        assert radio.fault_frames_dropped > 0
        assert scenario.nodes[1].mac.is_synced

    def test_crash_mid_airtime_reports_fault_dropped(self):
        """Regression: a crash landing inside a beacon's airtime used to
        leave the half-captured frame unaccounted — the quiesce cleared
        the capture set, so the frame showed up neither as received nor
        as corrupted.  It must surface as an explicit fault drop."""
        # Beacon #1 airtime runs 10.201..10.305 ms into the measurement
        # window; 10.245 ms lands the crash mid-capture.
        plan = FaultPlan(faults=(NodeCrash(node="node1", at_s=0.010245),))
        scenario = BanScenario(_config(
            num_nodes=1, measure_s=0.5, sampling_hz=205.0, faults=plan))
        result = scenario.run()
        radio = scenario.nodes[0].radio
        assert radio.state == "power_down"
        assert radio.fault_frames_dropped == 1
        # The truncated capture keeps the attribution invariant intact.
        node = result.nodes["node1"]
        assert node.losses.total_j * 1e3 \
            == pytest.approx(node.radio_mj, rel=1e-9)

    def test_beacon_burst_drops_exactly_n(self):
        plan = FaultPlan(faults=(
            BeaconLossBurst(node="node1", at_s=0.5, count=3),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        radio = scenario.nodes[0].radio
        assert radio.fault_drop_beacons == 0  # burst fully consumed
        assert radio.fault_frames_dropped == 3
        assert scenario.nodes[0].mac.counters.beacons_missed >= 3
        assert scenario.nodes[0].mac.is_synced

    def test_clock_step_forces_resync(self):
        clean = BanScenario(_config())
        clean.run()
        missed_clean = clean.nodes[0].mac.counters.beacons_missed
        plan = FaultPlan(faults=(
            ClockStep(node="node1", at_s=0.5, offset_ms=20.0),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert scenario.fault_injector.counters_for("node1").clock_steps \
            == 1
        assert mac.counters.beacons_missed > missed_clean
        assert mac.is_synced

    def test_brownout_crashes_permanently(self):
        plan = FaultPlan(faults=(
            BatteryBrownout(node="node2", capacity_mah=0.001,
                            soc_threshold=0.5, sample_period_s=0.05),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        assert scenario.fault_injector.counters_for("node2").brownouts == 1
        assert not scenario.nodes[1].mac.started
        assert len(scenario.fault_injector.monitors) == 1

    def test_unknown_node_rejected(self):
        plan = FaultPlan(faults=(NodeCrash(node="node9", at_s=0.5),))
        with pytest.raises(ValueError, match="unknown node"):
            BanScenario(_config(faults=plan))

    def test_clockstep_on_aloha_rejected(self):
        plan = FaultPlan(faults=(
            ClockStep(node="node1", at_s=0.5, offset_ms=10.0),))
        with pytest.raises(ValueError, match="beacon-synchronised"):
            BanScenario(_config(mac="aloha", faults=plan))

    def test_double_arm_rejected(self):
        scenario = BanScenario(_config())
        injector = FaultInjector(scenario, FaultPlan(
            faults=(NodeCrash(node="node1", at_s=0.5),)))
        injector.arm()
        with pytest.raises(RuntimeError, match="already armed"):
            injector.arm()

    def test_random_faults_expand_and_run(self):
        plan = FaultPlan(faults=(RandomFaults(count=3, horizon_s=1.5),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        fired = sum(counts.total for counts
                    in scenario.fault_injector._counters.values())
        assert fired >= 3  # the three faults (+ any recoveries)


class TestDeterminism:
    def test_empty_plan_is_no_plan(self):
        baseline = BanScenario(_config(faults=None)).run()
        empty = BanScenario(_config(faults=FaultPlan())).run()
        assert empty == baseline

    def test_same_seed_same_faulted_results(self):
        plan = FaultPlan(faults=(
            NodeCrash(node="node1", at_s=0.3, reboot_after_s=0.4),
            RadioLockup(node="node2", at_s=0.6, duration_s=0.2),
            RandomFaults(count=2, horizon_s=1.5),
        ))
        first = BanScenario(_config(faults=plan)).run()
        second = BanScenario(_config(faults=plan)).run()
        assert first == second

    def test_faults_change_results(self):
        plan = FaultPlan(faults=(NodeCrash(node="node1", at_s=0.3),))
        assert BanScenario(_config(faults=plan)).run() \
            != BanScenario(_config()).run()

    def test_fault_plan_in_cache_fingerprint(self):
        base = config_fingerprint(_config())
        crash = config_fingerprint(_config(faults=FaultPlan(
            faults=(NodeCrash(node="node1", at_s=0.3),))))
        lockup = config_fingerprint(_config(faults=FaultPlan(
            faults=(RadioLockup(node="node1", at_s=0.3,
                                duration_s=0.1),))))
        assert len({base, crash, lockup}) == 3

    def test_injector_metrics_export(self):
        plan = FaultPlan(faults=(
            NodeCrash(node="node1", at_s=0.3, reboot_after_s=0.4),))
        scenario = BanScenario(_config(faults=plan))
        scenario.run()
        registry = MetricsRegistry()
        scenario.fault_injector.observe_metrics(registry)
        assert registry.counter("faults", "node1", "crashes").value == 1
        assert registry.counter("faults", "node1", "reboots").value == 1
