"""Sensor-node assembly: the full hardware + OS + stack of Figure 1.

:class:`SensorNode` wires one node's hardware models (MCU, radio, ASIC,
ADC) to its TinyOS scheduler, and hosts the MAC and application
components installed on top.  It also owns result collection: at the
end of a run it freezes the ledgers, attributions and counters into a
:class:`~repro.core.report.NodeEnergyResult`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.calibration import ModelCalibration
from ..core.report import NodeEnergyResult
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..hw.mcu import Msp430
from ..hw.radio import Nrf2401
from ..phy.channel import Channel
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component, ComponentStack
from ..tinyos.scheduler import TaskScheduler

if TYPE_CHECKING:
    from ..obs.spans import SpanTracer


class SensorNode:
    """One wireless sensor node (hardware + OS + software stack)."""

    def __init__(self, sim: Simulator, channel: Channel,
                 calibration: ModelCalibration, node_id: str,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.calibration = calibration
        self.trace = trace
        self.mcu = Msp430(sim, calibration, name=f"{node_id}.mcu",
                          trace=trace)
        self.scheduler = TaskScheduler(sim, self.mcu,
                                       name=f"{node_id}.sched", trace=trace)
        self.radio = Nrf2401(sim, calibration, channel, node_id,
                             name=f"{node_id}.radio", trace=trace)
        self.asic = BiopotentialAsic(sim, calibration,
                                     name=f"{node_id}.asic")
        self.adc = Adc12()
        self.stack = ComponentStack()
        self.mac: Optional[Component] = None
        self.app: Optional[Component] = None

    # ------------------------------------------------------------------
    # Stack composition
    # ------------------------------------------------------------------
    def install_mac(self, mac: Component) -> Component:
        """Install the MAC layer (must precede the application)."""
        if self.mac is not None:
            raise RuntimeError(f"{self.node_id}: MAC already installed")
        self.mac = self.stack.add(mac)
        return mac

    def install_app(self, app: Component) -> Component:
        """Install the application layer on top of the MAC."""
        if self.mac is None:
            raise RuntimeError(
                f"{self.node_id}: install the MAC before the application")
        if self.app is not None:
            raise RuntimeError(f"{self.node_id}: app already installed")
        self.app = self.stack.add(app)
        return app

    def start(self) -> None:
        """Start every installed component, bottom-up."""
        self.stack.start_all()

    def attach_spans(self, tracer: "SpanTracer") -> None:
        """Point every layer's span hook at ``tracer``.

        Binds this node's ledger power coefficients (the exact I*Vdd
        floats the energy queries use) and sets the ``spans`` attribute
        on the scheduler, radio, MAC and application.
        """
        from ..hw.mcu import ACTIVE
        from ..hw.radio import RX, TX
        tracer.bind_node(self.node_id,
                         mcu_active_w=self.mcu.ledger.iv_coeff(ACTIVE),
                         radio_tx_w=self.radio.ledger.iv_coeff(TX),
                         radio_rx_w=self.radio.ledger.iv_coeff(RX),
                         mcu_clock_hz=self.calibration.mcu_clock_hz)
        self.scheduler.spans = tracer
        self.radio.spans = tracer
        if self.mac is not None:
            setattr(self.mac, "spans", tracer)
        if self.app is not None:
            setattr(self.app, "spans", tracer)
            setattr(self.app, "spans_node", self.node_id)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def reset_measurement(self) -> None:
        """Zero all energy ledgers and counters (start of the window)."""
        self.mcu.reset_measurement()
        self.radio.reset_measurement()
        self.asic.reset_measurement()

    def collect_result(self, horizon_s: float) -> NodeEnergyResult:
        """Freeze this node's energy figures over ``horizon_s`` seconds.

        Call after the simulator's run ended (ledgers are closed by the
        kernel's end hooks).
        """
        self.radio.finalize_attribution()
        radio_by_state = {state: 1e3 * joules for state, joules
                          in self.radio.ledger.energy_by_state().items()}
        mcu_by_state = {state: 1e3 * joules for state, joules
                        in self.mcu.ledger.energy_by_state().items()}
        return NodeEnergyResult(
            node_id=self.node_id,
            horizon_s=horizon_s,
            radio_mj=self.radio.energy_mj(),
            mcu_mj=self.mcu.energy_mj(),
            asic_mj=self.asic.energy_mj(),
            radio_by_state_mj=radio_by_state,
            mcu_by_state_mj=mcu_by_state,
            losses=self.radio.accountant.snapshot(),
            traffic=self.radio.snapshot_counters(),
        )


__all__ = ["SensorNode"]
