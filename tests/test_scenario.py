"""Tests for node/base-station assembly and the scenario runner."""

import dataclasses

import pytest

from conftest import quick_config, run_quick
from repro.mac.sync import DriftTrackingLead
from repro.net.scenario import BanScenario, BanScenarioConfig, run_scenario
from repro.phy.topology import ExplicitLinks


class TestConfigValidation:
    def test_bad_mac(self):
        with pytest.raises(ValueError):
            BanScenarioConfig(mac="tokenring")

    def test_bad_app(self):
        with pytest.raises(ValueError):
            BanScenarioConfig(app="video")

    def test_bad_node_count(self):
        with pytest.raises(ValueError):
            BanScenarioConfig(num_nodes=0)

    def test_bad_measure(self):
        with pytest.raises(ValueError):
            BanScenarioConfig(measure_s=0.0)

    def test_cycle_ticks_static(self):
        config = BanScenarioConfig(mac="static", cycle_ms=30.0)
        assert config.cycle_ticks == 30_000_000

    def test_cycle_ticks_dynamic(self):
        config = BanScenarioConfig(mac="dynamic", num_nodes=3,
                                   slot_ms=10.0)
        assert config.cycle_ticks == 40_000_000

    def test_derived_sampling_rpeak(self):
        assert BanScenarioConfig(app="rpeak").derived_sampling_hz() \
            == 200.0

    def test_derived_sampling_streaming(self):
        config = BanScenarioConfig(mac="static", app="ecg_streaming",
                                   cycle_ms=30.0)
        assert config.derived_sampling_hz() == pytest.approx(200.0)


class TestAssembly:
    def test_node_ids_and_slots(self):
        scenario = BanScenario(quick_config(num_nodes=3))
        assert [n.node_id for n in scenario.nodes] \
            == ["node1", "node2", "node3"]
        assert [n.mac.slot for n in scenario.nodes] == [1, 2, 3]

    def test_ecg_sources_attached(self):
        scenario = BanScenario(quick_config(num_nodes=2))
        assert set(scenario.ecg_sources) == {"node1", "node2"}
        # Channels 0 and 1 are connected to scaled copies.
        node = scenario.nodes[0]
        assert node.asic.read_channel(0) != 0.0 or \
            node.asic.read_channel(1) != 0.0

    def test_install_order_enforced(self, sim, cal, channel):
        from repro.net.node import SensorNode
        from repro.tinyos.components import Component
        node = SensorNode(sim, channel, cal, "n1")
        with pytest.raises(RuntimeError):
            node.install_app(Component(sim, "app"))

    def test_double_mac_install_rejected(self, sim, cal, channel):
        from repro.net.node import SensorNode
        from repro.tinyos.components import Component
        node = SensorNode(sim, channel, cal, "n1")
        node.install_mac(Component(sim, "mac"))
        with pytest.raises(RuntimeError):
            node.install_mac(Component(sim, "mac2"))


class TestRunSemantics:
    def test_result_covers_exact_horizon(self):
        _, result = run_quick(measure_s=2.0)
        assert result.horizon_s == 2.0
        for node in result.nodes.values():
            total_time = sum(node.mcu_by_state_mj.values())
            assert total_time > 0

    def test_energy_scales_linearly_with_horizon(self):
        _, short = run_quick(measure_s=2.0)
        _, long = run_quick(measure_s=4.0)
        ratio = long.node("node1").radio_mj / short.node("node1").radio_mj
        assert ratio == pytest.approx(2.0, rel=0.02)

    def test_deterministic_across_runs(self):
        _, a = run_quick(measure_s=2.0, seed=5)
        _, b = run_quick(measure_s=2.0, seed=5)
        assert a.node("node1").radio_mj == b.node("node1").radio_mj
        assert a.node("node1").mcu_mj == b.node("node1").mcu_mj

    def test_nodes_statistically_identical(self):
        _, result = run_quick(num_nodes=5, measure_s=3.0)
        radios = [result.node(f"node{i}").radio_mj for i in range(1, 6)]
        assert max(radios) - min(radios) < 0.02 * max(radios)

    def test_base_station_reported(self):
        _, result = run_quick(measure_s=2.0)
        assert result.base_station is not None
        # The BS receiver is on nearly all the time: its radio energy
        # dwarfs a node's.
        assert result.base_station.radio_mj \
            > 5 * result.node("node1").radio_mj

    def test_asic_energy_constant_power(self):
        _, result = run_quick(measure_s=2.0)
        assert result.node("node1").asic_mj == pytest.approx(21.0)

    def test_join_protocol_end_to_end(self):
        scenario, result = run_quick(join_protocol=True, num_nodes=3,
                                     measure_s=2.0)
        assert all(node.mac.is_synced for node in scenario.nodes)
        assert result.node("node1").traffic.data_tx > 0

    def test_join_protocol_dynamic(self):
        scenario, result = run_quick(mac="dynamic", join_protocol=True,
                                     num_nodes=3, measure_s=2.0)
        assert scenario.base_station.mac.current_cycle_ticks() \
            == 40_000_000

    def test_join_deadline_enforced(self):
        # An unreachable base station: nodes can never join.
        config = quick_config(join_protocol=True, num_nodes=1,
                              measure_s=1.0, join_deadline_s=2.0,
                              topology=ExplicitLinks([]))
        with pytest.raises(RuntimeError, match="failed to join"):
            BanScenario(config).run()

    def test_run_scenario_convenience(self):
        result = run_scenario(mac="static", app="rpeak", num_nodes=2,
                              cycle_ms=60.0, measure_s=1.0)
        assert set(result.nodes) == {"node1", "node2"}


class TestModellingKnobs:
    def test_custom_sync_policy_changes_energy(self):
        tight = quick_config(
            sync_policy_factory=lambda cal: DriftTrackingLead(50.0))
        tight_result = BanScenario(tight).run()
        _, default_result = run_quick()
        assert tight_result.node("node1").radio_mj \
            < 0.5 * default_result.node("node1").radio_mj

    def test_clock_skew_still_synced(self):
        scenario, result = run_quick(clock_skew_ppm=50.0, measure_s=3.0)
        for node in scenario.nodes:
            assert node.mac.counters.beacons_missed == 0

    def test_trace_capacity(self):
        scenario, _ = run_quick(trace_capacity=1000, measure_s=1.0)
        assert scenario.trace is not None
        assert len(scenario.trace) <= 1000
        assert scenario.trace.total_recorded > 1000

    def test_calibration_override(self):
        config = quick_config()
        doubled = dataclasses.replace(config.calibration,
                                      radio_rx_a=2 * 24.82e-3)
        _, base = run_quick()
        hot = BanScenario(dataclasses.replace(
            config, calibration=doubled)).run()
        assert hot.node("node1").radio_mj \
            > 1.8 * base.node("node1").radio_mj
