"""Parallel scenario execution and deterministic result caching.

This package is the batch layer between the single-scenario simulator
(:mod:`repro.net.scenario`) and the analysis code that evaluates many
independent scenarios (tables, sweeps, replications, sensitivity,
multi-BAN studies):

* :mod:`repro.exec.executor` — :class:`ScenarioExecutor` fans
  independent :class:`~repro.net.scenario.BanScenarioConfig`s out over
  worker processes, returning results in submission order so output is
  bit-identical to the sequential path.
* :mod:`repro.exec.cache` — :class:`ResultCache` memoizes scenario
  results on disk, keyed by a content hash of the canonical config
  serialization plus a code-version salt, so regenerating tables after
  an unrelated edit is near-free.

Every analysis entry point accepts ``jobs``/``cache`` arguments (and
the CLI exposes ``--jobs N`` / ``--cache``) that route through here.
"""

from .cache import CacheStats, ResultCache, Uncacheable, config_fingerprint
from .errors import ErrorResult, ScenarioTimeoutError, failures
from .executor import ScenarioExecutor, run_configs

__all__ = [
    "CacheStats",
    "ErrorResult",
    "ResultCache",
    "ScenarioExecutor",
    "ScenarioTimeoutError",
    "Uncacheable",
    "config_fingerprint",
    "failures",
    "run_configs",
]
