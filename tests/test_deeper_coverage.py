"""Deeper coverage: edge cases across kernel, radio, MAC and scenario
that the per-module suites do not reach."""

import dataclasses

import pytest

from conftest import quick_config, run_quick
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.frames import Frame, FrameKind
from repro.hw.radio import Nrf2401, RadioError
from repro.mac.messages import beacon_payload_bytes
from repro.mac.tdma_static import StaticTdmaConfig
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.simtime import microseconds, milliseconds, seconds
from repro.tinyos.timers import VirtualTimer

CAL = DEFAULT_CALIBRATION


class TestKernelEdges:
    def test_cancelled_timer_event_not_dispatched(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(milliseconds(10))
        timer.stop()
        sim.run_until(milliseconds(20))
        assert fired == []

    def test_event_scheduled_from_end_hook_rejected_gracefully(self):
        """End hooks run after the horizon; they must not dispatch."""
        sim = Simulator()
        ran = []
        sim.add_end_hook(lambda: ran.append(sim.now))
        sim.run_until(100)
        sim.run_until(200)
        assert ran == [100, 200]

    def test_zero_duration_run(self):
        sim = Simulator()
        sim.run_until(0)
        assert sim.now == 0

    def test_many_same_time_events_fifo(self, sim):
        order = []
        for index in range(100):
            sim.at(50, lambda i=index: order.append(i))
        sim.run_until(50)
        assert order == list(range(100))


class TestRadioEdges:
    def test_send_from_power_down_is_rejected(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        Nrf2401(sim, cal, channel, "b")
        # RADIO_TRANSITIONS declares no power_down -> tx edge: the
        # radio must be powered up before transmitting.
        frame = Frame(src="a", dest="b", kind=FrameKind.DATA,
                      payload_bytes=4)
        with pytest.raises(RadioError, match="powered down"):
            a.send(frame)
        a.power_up()
        a.send(frame)
        sim.run_until(seconds(0.1))
        assert a.state == "standby"
        assert a.snapshot_counters().data_tx == 1

    def test_power_down_after_rx(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        a.power_up()
        a.start_rx()
        sim.at(seconds(0.01), a.stop_rx)
        sim.at(seconds(0.02), a.power_down)
        sim.run_until(seconds(0.1))
        assert a.state == "power_down"

    def test_zero_payload_frame(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        a.power_up()
        b.power_up()
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(Frame(src="a", dest="b", kind=FrameKind.DATA,
                     payload_bytes=0))
        sim.at(seconds(0.05), b.stop_rx)
        sim.run_until(seconds(0.1))
        assert len(received) == 1
        # 8-byte overhead-only frame: 64 us airtime.
        assert a.airtime_ticks(received[0]) == microseconds(64)

    def test_three_way_collision(self, sim, cal):
        channel = Channel(sim)
        radios = [Nrf2401(sim, cal, channel, name)
                  for name in ("a", "b", "c")]
        sink = Nrf2401(sim, cal, channel, "sink")
        for radio in radios + [sink]:
            radio.power_up()
        received = []
        sink.on_frame = received.append
        sink.start_rx()
        for radio in radios:
            radio.send(Frame(src=radio.address, dest="sink",
                             kind=FrameKind.DATA, payload_bytes=4))
        sim.at(seconds(0.05), sink.stop_rx)
        sim.run_until(seconds(0.1))
        assert received == []
        assert sink.snapshot_counters().corrupted == 3


class TestMacEdges:
    def test_spare_slots_leave_gaps(self, sim):
        """num_slots > node count: the unowned slots simply stay silent
        and the beacon grows to carry them."""
        config = quick_config(num_nodes=2, num_slots=8, cycle_ms=90.0,
                              measure_s=2.0)
        scenario = BanScenario(config)
        result = scenario.run()
        assert result.node("node1").traffic.data_tx > 0
        # Beacon payload: 4 + 8 slots.
        assert beacon_payload_bytes(8) == 12

    def test_static_config_validation(self):
        with pytest.raises(ValueError):
            StaticTdmaConfig(cycle_ticks=0, num_slots=5)
        with pytest.raises(ValueError):
            StaticTdmaConfig(cycle_ticks=milliseconds(30), num_slots=0)
        with pytest.raises(ValueError):
            # 10 ticks cannot hold 5 slots + beacon.
            StaticTdmaConfig(cycle_ticks=3, num_slots=5)

    def test_beacon_sequence_increments(self):
        scenario, _ = run_quick(num_nodes=1, measure_s=2.0)
        sequences = []
        scenario.nodes[0].mac.on_beacon = \
            lambda payload: sequences.append(payload.sequence)
        scenario.sim.run_until(scenario.sim.now + seconds(1.0))
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_node_stops_cleanly_mid_run(self):
        scenario, _ = run_quick(num_nodes=2, measure_s=2.0)
        node = scenario.nodes[0]
        node.stack.stop_all()
        before = node.radio.energy_mj()
        scenario.sim.run_until(scenario.sim.now + seconds(2.0))
        # A stopped node spends nothing further.
        assert node.radio.energy_mj() == pytest.approx(before, abs=1e-6)

    def test_two_scenarios_do_not_share_state(self):
        _, first = run_quick(measure_s=1.0)
        _, second = run_quick(measure_s=1.0)
        assert first.node("node1").radio_mj \
            == second.node("node1").radio_mj


class TestScenarioEdges:
    def test_single_node_static(self):
        _, result = run_quick(num_nodes=1, measure_s=2.0)
        assert set(result.nodes) == {"node1"}

    def test_many_nodes_static(self):
        config = quick_config(num_nodes=10, cycle_ms=120.0,
                              measure_s=2.0, sampling_hz=55.0)
        result = BanScenario(config).run()
        assert len(result.nodes) == 10
        radios = [n.radio_mj for n in result.nodes.values()]
        assert max(radios) - min(radios) < 0.05 * max(radios)

    def test_noise_does_not_change_energy_much(self):
        _, clean = run_quick(app="rpeak", cycle_ms=60.0, measure_s=4.0)
        _, noisy = run_quick(app="rpeak", cycle_ms=60.0, measure_s=4.0,
                             ecg_noise_mv=0.05)
        assert noisy.node("node1").mcu_mj == pytest.approx(
            clean.node("node1").mcu_mj, rel=0.02)

    def test_heart_rate_changes_rpeak_traffic_linearly(self):
        _, slow = run_quick(app="rpeak", cycle_ms=60.0, measure_s=10.0,
                            heart_rate_bpm=50.0, num_nodes=1)
        _, fast = run_quick(app="rpeak", cycle_ms=60.0, measure_s=10.0,
                            heart_rate_bpm=100.0, num_nodes=1)
        ratio = fast.node("node1").traffic.data_tx \
            / max(1, slow.node("node1").traffic.data_tx)
        assert ratio == pytest.approx(2.0, rel=0.25)

    def test_calibration_standby_current_ablation(self):
        """Turning on the datasheet stand-by current adds a visible but
        small energy term (the paper's neglect is justified)."""
        from repro.core.calibration import RADIO_STANDBY_DATASHEET_A
        config = quick_config(measure_s=4.0)
        with_standby = dataclasses.replace(
            config,
            calibration=dataclasses.replace(
                config.calibration,
                radio_standby_a=RADIO_STANDBY_DATASHEET_A))
        base = BanScenario(config).run().node("node1")
        standby = BanScenario(with_standby).run().node("node1")
        delta = standby.radio_mj - base.radio_mj
        # 12 uA * 2.8 V * ~3.5 s of standby ~ 0.12 mJ over 4 s.
        assert 0.0 < delta < 0.02 * base.radio_mj

    def test_run_twice_rejected(self):
        scenario = BanScenario(quick_config(measure_s=1.0))
        scenario.run()
        with pytest.raises(RuntimeError):
            scenario.run()  # components refuse a second start


class TestExperimentShortWindows:
    def test_all_tables_runnable_at_2s(self):
        from repro.analysis.experiments import TABLE_REPRODUCERS
        for table_id, reproduce in TABLE_REPRODUCERS.items():
            result = reproduce(measure_s=2.0)
            assert len(result.rows) >= 4, table_id
            for row in result.rows:
                assert row.radio_ours_mj > 0
