"""Unit tests for MAC messages, slot schedules and sync policies."""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.frames import BROADCAST, FrameKind
from repro.mac.messages import (
    BeaconPayload,
    beacon_payload_bytes,
    make_beacon,
    make_data,
    make_slot_request,
)
from repro.mac.slots import (
    SlotSchedule,
    dynamic_cycle_ticks,
    dynamic_slot_offset,
    static_slot_offset,
)
from repro.mac.sync import (
    CycleProportionalLead,
    DriftTrackingLead,
    FixedLead,
    paper_dynamic_policy,
    paper_static_policy,
)
from repro.sim.simtime import microseconds, milliseconds


class TestMessages:
    def test_beacon_payload_size(self):
        assert beacon_payload_bytes(5) == 9  # 4 header + 1/slot
        assert beacon_payload_bytes(1) == 5

    def test_beacon_frame(self):
        payload = BeaconPayload(cycle_ticks=milliseconds(30),
                                slot_map={1: "node1"}, num_slots=5,
                                sequence=7)
        frame = make_beacon("bs", payload)
        assert frame.kind is FrameKind.BEACON
        assert frame.dest == BROADCAST
        assert frame.payload_bytes == 9

    def test_beacon_payload_lookups(self):
        payload = BeaconPayload(cycle_ticks=1, num_slots=3, sequence=0,
                                slot_map={1: "a", 3: "c"})
        assert payload.owner_of(1) == "a"
        assert payload.owner_of(2) is None
        assert payload.slot_of("c") == 3
        assert payload.slot_of("x") is None
        assert payload.free_slots() == (2,)

    def test_slot_request_frame(self):
        frame = make_slot_request("node9", "bs", wanted_slot=2)
        assert frame.kind is FrameKind.SLOT_REQUEST
        assert frame.dest == "bs"
        assert frame.payload.requester == "node9"
        assert frame.payload.wanted_slot == 2
        assert frame.payload_bytes == 2

    def test_data_frame(self):
        frame = make_data("node1", "bs", 18, {"x": 1})
        assert frame.kind is FrameKind.DATA
        assert frame.payload_bytes == 18

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            beacon_payload_bytes(-1)


class TestSlotSchedule:
    def test_assign_and_lookup(self):
        schedule = SlotSchedule(3)
        schedule.assign(2, "a")
        assert schedule.owner_of(2) == "a"
        assert schedule.slot_of("a") == 2
        assert schedule.free_slots() == [1, 3]
        assert schedule.assigned_count == 1

    def test_reassign_same_owner_is_ok(self):
        schedule = SlotSchedule(2)
        schedule.assign(1, "a")
        schedule.assign(1, "a")
        assert schedule.owner_of(1) == "a"

    def test_conflicting_assign_raises(self):
        schedule = SlotSchedule(2)
        schedule.assign(1, "a")
        with pytest.raises(ValueError):
            schedule.assign(1, "b")
        with pytest.raises(ValueError):
            schedule.assign(2, "a")

    def test_release(self):
        schedule = SlotSchedule(2)
        schedule.assign(1, "a")
        assert schedule.release("a") == 1
        assert schedule.release("a") is None
        assert schedule.free_slots() == [1, 2]

    def test_full(self):
        schedule = SlotSchedule(1)
        assert not schedule.is_full
        schedule.assign(1, "a")
        assert schedule.is_full

    def test_grow(self):
        schedule = SlotSchedule(1)
        assert schedule.grow() == 2
        assert schedule.num_slots == 2

    def test_bounds(self):
        schedule = SlotSchedule(2)
        with pytest.raises(ValueError):
            schedule.owner_of(0)
        with pytest.raises(ValueError):
            schedule.assign(3, "a")
        with pytest.raises(ValueError):
            SlotSchedule(0)

    def test_as_map_is_copy(self):
        schedule = SlotSchedule(2)
        schedule.assign(1, "a")
        snapshot = schedule.as_map()
        snapshot[2] = "b"
        assert schedule.owner_of(2) is None


class TestSlotGeometry:
    def test_static_offsets_divide_cycle(self):
        cycle = milliseconds(30)
        # 5 slots + beacon slot -> 5 ms each.
        assert static_slot_offset(cycle, 5, 1) == milliseconds(5)
        assert static_slot_offset(cycle, 5, 5) == milliseconds(25)

    def test_static_offset_bounds(self):
        with pytest.raises(ValueError):
            static_slot_offset(milliseconds(30), 5, 0)
        with pytest.raises(ValueError):
            static_slot_offset(milliseconds(30), 5, 6)

    def test_dynamic_offsets(self):
        assert dynamic_slot_offset(milliseconds(10), 1) == milliseconds(10)
        assert dynamic_slot_offset(milliseconds(10), 3) == milliseconds(30)
        with pytest.raises(ValueError):
            dynamic_slot_offset(milliseconds(10), 0)

    def test_dynamic_cycle_matches_paper(self):
        # Table 2: 1 node -> 20 ms ... 5 nodes -> 60 ms at 10 ms slots.
        slot = milliseconds(10)
        for nodes, cycle_ms in [(1, 20), (2, 30), (3, 40), (4, 50),
                                (5, 60)]:
            assert dynamic_cycle_ticks(slot, nodes) \
                == milliseconds(cycle_ms)

    def test_dynamic_cycle_validation(self):
        with pytest.raises(ValueError):
            dynamic_cycle_ticks(milliseconds(10), -1)


class TestSyncPolicies:
    def test_fixed_lead(self):
        policy = FixedLead(microseconds(3112))
        assert policy.lead_ticks(milliseconds(30), milliseconds(30)) \
            == microseconds(3112)
        assert policy.lead_ticks(milliseconds(120), milliseconds(120)) \
            == microseconds(3112)

    def test_cycle_proportional(self):
        policy = CycleProportionalLead(microseconds(2048), 0.017)
        short = policy.lead_ticks(milliseconds(20), milliseconds(20))
        long = policy.lead_ticks(milliseconds(60), milliseconds(60))
        assert long - short == pytest.approx(0.017 * milliseconds(40),
                                             abs=2)

    def test_drift_tracking_scales_with_elapsed(self):
        policy = DriftTrackingLead(tolerance_ppm=50.0,
                                   margin_ticks=microseconds(250))
        one_cycle = policy.lead_ticks(milliseconds(30), milliseconds(30))
        three_missed = policy.lead_ticks(milliseconds(30),
                                         milliseconds(90))
        assert three_missed > one_cycle
        # 2 * 50 ppm * 30 ms = 3 us of drift guard.
        assert one_cycle == microseconds(250) + microseconds(3)

    def test_drift_tracking_far_below_paper_window(self):
        """The physical guard is an order of magnitude tighter than the
        platform's fitted window — the headroom ablation A1 quantifies."""
        physical = DriftTrackingLead(tolerance_ppm=50.0)
        paper = paper_static_policy(DEFAULT_CALIBRATION)
        cycle = milliseconds(30)
        assert physical.lead_ticks(cycle, cycle) \
            < paper.lead_ticks(cycle, cycle) / 5

    def test_paper_policies_from_calibration(self):
        static = paper_static_policy(DEFAULT_CALIBRATION)
        dynamic = paper_dynamic_policy(DEFAULT_CALIBRATION)
        assert static.lead_ticks(milliseconds(30), 0) == 3_112_000
        assert dynamic.lead_ticks(milliseconds(20), 0) \
            == 2_048_000 + round(0.017 * milliseconds(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedLead(-1)
        with pytest.raises(ValueError):
            CycleProportionalLead(-1, 0.0)
        with pytest.raises(ValueError):
            CycleProportionalLead(0, -0.1)
        with pytest.raises(ValueError):
            DriftTrackingLead(tolerance_ppm=-1.0)
