"""Tests for the structured result comparison."""

import pytest

from conftest import run_quick
from repro.analysis.compare import (
    MetricDelta,
    compare_nodes,
    render_comparison,
)


class TestMetricDelta:
    def test_delta_and_relative(self):
        delta = MetricDelta("x", baseline=10.0, candidate=12.0)
        assert delta.delta == pytest.approx(2.0)
        assert delta.relative == pytest.approx(0.2)
        assert delta.is_significant(0.1)
        assert not delta.is_significant(0.25)

    def test_zero_baseline(self):
        assert MetricDelta("x", 0.0, 5.0).relative == float("inf")
        assert MetricDelta("x", 0.0, 0.0).relative == 0.0


class TestCompareNodes:
    @pytest.fixture(scope="class")
    def pair(self):
        _, streaming = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                 sampling_hz=205.0, measure_s=3.0)
        _, rpeak = run_quick(app="rpeak", cycle_ms=30.0, measure_s=3.0)
        return streaming.node("node1"), rpeak.node("node1")

    def test_covers_energy_traffic_and_losses(self, pair):
        deltas = {d.name: d for d in compare_nodes(*pair)}
        assert {"radio_mj", "mcu_mj", "data_tx",
                "loss_idle_listening_mj"} <= set(deltas)

    def test_directions_match_the_applications(self, pair):
        deltas = {d.name: d for d in compare_nodes(*pair)}
        # Rpeak sends far fewer packets and spends less on data TX.
        assert deltas["data_tx"].delta < 0
        assert deltas["loss_data_tx_mj"].delta < 0
        # Its MCU runs the detector: more active energy.
        assert deltas["mcu_mj"].delta < 0 or deltas["mcu_mj"].delta > 0
        # Beacon reception is identical (same cycle).
        assert not deltas["control_rx"].is_significant(0.02)

    def test_identical_results_diff_empty(self, pair):
        node, _ = pair
        deltas = compare_nodes(node, node)
        text = render_comparison(deltas)
        assert "no metric moved" in text

    def test_render_flags_changes(self, pair):
        deltas = compare_nodes(*pair)
        text = render_comparison(deltas, "streaming", "rpeak")
        assert "streaming" in text and "rpeak" in text
        assert "data_tx" in text
        assert "%" in text

    def test_render_show_all(self, pair):
        node, _ = pair
        text = render_comparison(compare_nodes(node, node),
                                 show_all=True)
        assert "radio_mj" in text
