"""Slot-schedule bookkeeping shared by both TDMA variants.

A :class:`SlotSchedule` maps data-slot indices (1-based; slot 0 is the
beacon slot) to owner addresses and computes slot timing within the
cycle.  The two MAC variants differ only in geometry:

* **static**: the cycle is fixed and divided into ``1 + num_slots``
  equal slots (Figure 2);
* **dynamic**: every slot has a fixed length and the cycle is
  ``(1 + assigned) * slot_len``, growing as nodes join (Figure 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class SlotSchedule:
    """Assignment table for data slots 1..num_slots."""

    def __init__(self, num_slots: int) -> None:
        if num_slots < 1:
            raise ValueError(f"need at least one slot, got {num_slots}")
        self._num_slots = num_slots
        self._owners: Dict[int, str] = {}

    @property
    def num_slots(self) -> int:
        """Number of schedulable data slots."""
        return self._num_slots

    @property
    def assigned_count(self) -> int:
        """How many slots currently have owners."""
        return len(self._owners)

    @property
    def is_full(self) -> bool:
        """Whether every slot is taken ("once reached the limit no other
        nodes are accepted", Section 3.2.2)."""
        return self.assigned_count >= self._num_slots

    def owner_of(self, slot: int) -> Optional[str]:
        """Owner of ``slot``, or None."""
        self._check_slot(slot)
        return self._owners.get(slot)

    def slot_of(self, address: str) -> Optional[int]:
        """Slot owned by ``address``, or None."""
        for slot, owner in self._owners.items():
            if owner == address:
                return slot
        return None

    def free_slots(self) -> List[int]:
        """Unassigned slot indices, ascending."""
        return [s for s in range(1, self._num_slots + 1)
                if s not in self._owners]

    def assign(self, slot: int, address: str) -> None:
        """Give ``slot`` to ``address``.

        Reassigning a taken slot or double-assigning a node is a protocol
        bug and raises.
        """
        self._check_slot(slot)
        current = self._owners.get(slot)
        if current is not None and current != address:
            raise ValueError(
                f"slot {slot} already owned by {current!r}")
        existing = self.slot_of(address)
        if existing is not None and existing != slot:
            raise ValueError(
                f"{address!r} already owns slot {existing}")
        self._owners[slot] = address

    def release(self, address: str) -> Optional[int]:
        """Free the slot owned by ``address``; returns it (or None)."""
        slot = self.slot_of(address)
        if slot is not None:
            del self._owners[slot]
        return slot

    def grow(self) -> int:
        """Add one schedulable slot (dynamic TDMA); returns its index."""
        self._num_slots += 1
        return self._num_slots

    def as_map(self) -> Dict[int, str]:
        """Copy of the assignment map (for beacon payloads)."""
        return dict(self._owners)

    def _check_slot(self, slot: int) -> None:
        if not 1 <= slot <= self._num_slots:
            raise ValueError(
                f"slot must be in [1, {self._num_slots}], got {slot}")


def static_slot_offset(cycle_ticks: int, num_slots: int, slot: int) -> int:
    """Start offset of ``slot`` within a static cycle.

    The cycle is divided into ``1 + num_slots`` equal parts; part 0 is
    the beacon slot.
    """
    if not 1 <= slot <= num_slots:
        raise ValueError(f"slot must be in [1, {num_slots}], got {slot}")
    return slot * cycle_ticks // (num_slots + 1)


def dynamic_slot_offset(slot_ticks: int, slot: int) -> int:
    """Start offset of ``slot`` within a dynamic cycle (fixed slot size)."""
    if slot < 1:
        raise ValueError(f"slot must be >= 1, got {slot}")
    return slot * slot_ticks


def dynamic_cycle_ticks(slot_ticks: int, assigned: int) -> int:
    """Dynamic-TDMA cycle length with ``assigned`` nodes.

    One leading slot carries the beacon and the empty-slot (ES) request
    window; each joined node adds one data slot, so with N nodes the
    cycle is ``(N + 1) * slot_len`` — 20 ms for one node at the paper's
    10 ms slots, 60 ms for five (Table 2).
    """
    if assigned < 0:
        raise ValueError(f"assigned must be >= 0: {assigned}")
    return (1 + assigned) * slot_ticks


__all__ = [
    "SlotSchedule",
    "static_slot_offset",
    "dynamic_slot_offset",
    "dynamic_cycle_ticks",
]
