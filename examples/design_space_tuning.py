#!/usr/bin/env python3
"""Architectural tuning: the study the paper says its model enables.

"This model can be employed to tune the node architecture and
communication layer for different working conditions, applications and
topologies of BANs" (abstract).  This example does exactly that for a
hypothetical EEG+ECG patient monitor:

1. **MAC choice** — static vs dynamic TDMA at equal network size;
2. **Sync policy** — the platform's calibrated guard vs a drift-
   tracking guard, across crystal qualities;
3. **Battery sizing** — lifetime per configuration on two batteries.

Run:  python examples/design_space_tuning.py
"""

from repro.analysis.lifetime import project_lifetime
from repro.core.report import render_table
from repro.hw.battery import CR2477, LIPO_160
from repro.mac.sync import DriftTrackingLead
from repro.net.scenario import BanScenario, BanScenarioConfig

MEASURE_S = 20.0


def run(node_count=5, mac="static", sync_factory=None,
        skew_ppm=0.0) -> tuple:
    config = BanScenarioConfig(
        mac=mac, app="rpeak", num_nodes=node_count,
        cycle_ms=60.0, slot_ms=10.0, measure_s=MEASURE_S,
        sync_policy_factory=sync_factory, clock_skew_ppm=skew_ppm)
    scenario = BanScenario(config)
    result = scenario.run()
    node = result.node("node1")
    missed = sum(n.mac.counters.beacons_missed for n in scenario.nodes)
    return node, missed


def mac_comparison() -> None:
    rows = []
    for mac in ("static", "dynamic"):
        node, _ = run(mac=mac)
        rows.append((mac, node.radio_mj, node.mcu_mj,
                     node.average_power_mw))
    print(render_table(
        ["MAC", "radio (mJ)", "uC (mJ)", "avg power (mW)"],
        rows,
        title=f"MAC choice, 5-node Rpeak BAN, {MEASURE_S:.0f} s "
              "(static 60 ms cycle vs dynamic 10 ms slots)"))


def sync_study() -> None:
    rows = []
    node, missed = run()
    rows.append(("platform (fitted 3.1 ms lead)", node.radio_mj, missed))
    for ppm in (100.0, 50.0, 20.0):
        factory = (lambda p: lambda cal: DriftTrackingLead(
            tolerance_ppm=p))(ppm)
        node, missed = run(sync_factory=factory, skew_ppm=ppm * 0.8)
        rows.append((f"drift-tracking @ {ppm:.0f} ppm crystals",
                     node.radio_mj, missed))
    print(render_table(
        ["sync policy", "radio (mJ)", "beacons missed (all nodes)"],
        rows,
        title="Guard-window policy vs crystal quality "
              "(nodes skewed to 80% of tolerance)"))


def battery_sizing() -> None:
    rows = []
    for label, sync_factory in (
            ("platform guard", None),
            ("50 ppm drift guard",
             lambda cal: DriftTrackingLead(tolerance_ppm=50.0))):
        node, _ = run(sync_factory=sync_factory)
        for battery, name in ((CR2477, "CR2477 coin"),
                              (LIPO_160, "160 mAh LiPo patch")):
            projection = project_lifetime(node, battery,
                                          include_asic=True)
            rows.append((label, name, projection.average_power_mw,
                         projection.days))
    print(render_table(
        ["configuration", "battery", "avg power (mW)", "lifetime (days)"],
        rows,
        title="Battery sizing (radio + MCU + 10.5 mW sensing ASIC)"))


def energy_latency_frontier() -> None:
    from repro.analysis.qos import evaluate_rpeak_cycles, render_tradeoff
    points = evaluate_rpeak_cycles((30.0, 60.0, 90.0, 120.0),
                                   measure_s=MEASURE_S)
    print("Energy vs beat-report latency (Rpeak, static TDMA; "
          "every cycle is Pareto-optimal — pick by latency budget):")
    print(render_tradeoff(points))


def main() -> None:
    mac_comparison()
    print()
    sync_study()
    print()
    battery_sizing()
    print()
    energy_latency_frontier()
    print()
    print("Note how the sensing ASIC's constant 10.5 mW dominates once "
          "the radio is tamed — the paper's Section 5 exclusion hides "
          "the next bottleneck.")


if __name__ == "__main__":
    main()
