"""Static TDMA (Figure 2).

The cycle length and the number of slots are fixed at network design
time ("intended to networks in which the number of nodes is known in
advance").  The base station sends a beacon in the SB slot and receives
for the rest of the cycle; a joining node transmits its slot request in
a (randomly chosen) free data slot and is granted that slot via the
next beacon's slot map.  Once the configured slots are taken the
network is full and further requests are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.calibration import ModelCalibration
from ..hw.radio import Nrf2401
from ..sim.kernel import Simulator
from ..sim.simtime import milliseconds
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import BaseStationMac, NodeMac
from .messages import BeaconPayload, SlotRequestPayload
from .recovery import RecoveryConfig
from .slots import SlotSchedule, static_slot_offset
from .sync import SyncPolicy, paper_static_policy

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class StaticTdmaConfig:
    """Design-time parameters of a static-TDMA network.

    Attributes:
        cycle_ticks: fixed TDMA cycle length.
        num_slots: fixed number of data slots (network capacity).
        first_beacon_ticks: absolute time of the first beacon.
        base_station: the base station's address.
    """

    cycle_ticks: int
    num_slots: int
    first_beacon_ticks: int = milliseconds(10)
    base_station: str = "base_station"

    def __post_init__(self) -> None:
        if self.cycle_ticks <= 0:
            raise ValueError(f"cycle must be positive: {self.cycle_ticks}")
        if self.num_slots < 1:
            raise ValueError(f"need >= 1 slot: {self.num_slots}")
        slot_len = self.cycle_ticks // (self.num_slots + 1)
        if slot_len <= 0:
            raise ValueError(
                f"cycle {self.cycle_ticks} too short for "
                f"{self.num_slots} slots")


class StaticTdmaNodeMac(NodeMac):
    """Node side of the static TDMA protocol."""

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: StaticTdmaConfig,
                 sync_policy: Optional[SyncPolicy] = None,
                 preassigned_slot: Optional[int] = None,
                 clock_skew_ppm: float = 0.0,
                 recovery: Optional[RecoveryConfig] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.config = config
        policy = sync_policy if sync_policy is not None \
            else paper_static_policy(calibration)
        super().__init__(
            sim, radio, scheduler, calibration, policy,
            base_station=config.base_station,
            preassigned_slot=preassigned_slot,
            first_beacon_ticks=config.first_beacon_ticks,
            clock_skew_ppm=clock_skew_ppm,
            recovery=recovery,
            trace=trace)

    def _initial_cycle_ticks(self) -> int:
        return self.config.cycle_ticks

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the base MAC figures plus the fixed cycle length."""
        super().observe_metrics(registry, node)
        registry.gauge("mac", node, "cycle_ticks").set(
            float(self.config.cycle_ticks))

    def _cycle_from_beacon(self, payload: BeaconPayload) -> int:
        return payload.cycle_ticks

    def _slot_offset(self, cycle_ticks: int, slot: int) -> int:
        return static_slot_offset(cycle_ticks, self.config.num_slots, slot)

    def _schedule_slot_request(self, beacon_start: int,
                               payload: BeaconPayload) -> None:
        free = payload.free_slots()
        if not free:
            return  # network full: "no other nodes are accepted"
        stream = self._sim.rng.stream(f"{self._radio.address}.join")
        wanted = free[stream.randrange(len(free))]
        offset = self._slot_offset(payload.cycle_ticks, wanted)
        request_time = beacon_start + offset
        if request_time <= self._sim.now:
            return  # chosen slot already past this cycle; retry next one
        if self.spans is not None:
            self.spans.note_wait(self._radio.address, "mac.ssr_wait",
                                 self._sim.now, request_time)
        self._sim.at(request_time,
                     lambda: self._send_slot_request(wanted_slot=wanted),
                     label=f"{self.name}.ssr_slot")


class StaticTdmaBaseMac(BaseStationMac):
    """Base-station side of the static TDMA protocol."""

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: StaticTdmaConfig,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.config = config
        super().__init__(
            sim, radio, scheduler, calibration,
            schedule=SlotSchedule(config.num_slots),
            first_beacon_ticks=config.first_beacon_ticks,
            trace=trace)

    def _current_cycle_ticks(self) -> int:
        return self.config.cycle_ticks

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the base-station figures plus the fixed cycle length."""
        super().observe_metrics(registry, node)
        registry.gauge("mac", node, "cycle_ticks").set(
            float(self.config.cycle_ticks))

    def _handle_slot_request(self, payload: SlotRequestPayload) -> None:
        if self.schedule.slot_of(payload.requester) is not None:
            # Duplicate request (grant beacon was lost): keep the slot.
            # Safe against double allocation: a node only re-requests
            # after receiving a beacon, every beacon carries the full
            # slot map, and a synced node whose map entry disappears
            # surrenders its slot (NodeMac revocation) — so the grant
            # kept here is always the one the requester will adopt.
            return
        wanted = payload.wanted_slot
        if wanted is None:
            free = self.schedule.free_slots()
            if not free:
                return
            wanted = free[0]
        if self.schedule.owner_of(wanted) is not None:
            return  # raced with another joiner; the node will retry
        self.schedule.assign(wanted, payload.requester)


__all__ = ["StaticTdmaConfig", "StaticTdmaNodeMac", "StaticTdmaBaseMac"]
