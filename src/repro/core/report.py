"""Result types and report rendering.

The simulator's outputs mirror what the paper reports: per-node energy of
the radio and the microcontroller over the simulated horizon (in mJ), the
loss-taxonomy breakdown, and traffic counters.  These are immutable
dataclasses so experiments can store, compare and serialise them freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .losses import LossBreakdown, RadioEnergyCategory


@dataclass(frozen=True)
class TrafficCounters:
    """Per-node frame counters over the simulated horizon."""

    data_tx: int = 0
    data_rx: int = 0
    control_tx: int = 0
    control_rx: int = 0
    overheard: int = 0
    corrupted: int = 0

    @property
    def total_tx(self) -> int:
        """Frames transmitted (data + control)."""
        return self.data_tx + self.control_tx

    @property
    def total_rx(self) -> int:
        """Frames that occupied this node's receiver, any outcome."""
        return self.data_rx + self.control_rx + self.overheard \
            + self.corrupted


@dataclass(frozen=True)
class NodeEnergyResult:
    """Energy figures for one node, in the paper's units (mJ).

    The paper's validation tables exclude the constant-power ASIC, so
    :attr:`total_mj` is radio + MCU; :attr:`total_with_asic_mj` adds it
    back for whole-node budgeting.
    """

    node_id: str
    horizon_s: float
    radio_mj: float
    mcu_mj: float
    asic_mj: float
    radio_by_state_mj: Dict[str, float]
    mcu_by_state_mj: Dict[str, float]
    losses: Optional[LossBreakdown] = None
    traffic: TrafficCounters = field(default_factory=TrafficCounters)

    @property
    def total_mj(self) -> float:
        """Radio + MCU energy (what the paper's tables report)."""
        return self.radio_mj + self.mcu_mj

    @property
    def total_with_asic_mj(self) -> float:
        """Radio + MCU + sensing ASIC energy."""
        return self.total_mj + self.asic_mj

    @property
    def average_power_mw(self) -> float:
        """Average radio+MCU power over the horizon, in mW."""
        if self.horizon_s <= 0:
            return 0.0
        return self.total_mj / self.horizon_s

    def loss_fraction(self, category: RadioEnergyCategory) -> float:
        """Share of radio energy attributed to ``category``."""
        if self.losses is None:
            return 0.0
        return self.losses.fraction(category)


@dataclass(frozen=True)
class NetworkEnergyResult:
    """Results for a whole BAN run."""

    horizon_s: float
    nodes: Dict[str, NodeEnergyResult]
    base_station: Optional[NodeEnergyResult] = None

    def node(self, node_id: str) -> NodeEnergyResult:
        """Result for one node by id."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise KeyError(
                f"unknown node {node_id!r}; known: {sorted(self.nodes)}"
            ) from None

    @property
    def network_total_mj(self) -> float:
        """Sum of radio+MCU energy across sensor nodes (no base station)."""
        return sum(n.total_mj for n in self.nodes.values())


# ---------------------------------------------------------------------------
# Table rendering
# ---------------------------------------------------------------------------

def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table in the style of the paper's result tables.

    Floats are formatted with one decimal (the paper's precision); other
    values use ``str``.  Columns are right-aligned under their header.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    text_rows: List[List[str]] = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(r) for r in text_rows)
    return "\n".join(parts)


def render_loss_breakdown(result: NodeEnergyResult) -> str:
    """Render the Section 4.2 loss taxonomy for one node."""
    if result.losses is None:
        return f"{result.node_id}: no loss attribution recorded"
    rows = []
    for category in RadioEnergyCategory:
        energy = result.losses.energy_j.get(category, 0.0)
        frames = result.losses.frames.get(category, 0)
        rows.append((category.value, energy * 1e3,
                     f"{100 * result.losses.fraction(category):.1f}%",
                     frames))
    return render_table(
        ["category", "energy (mJ)", "share", "frames"], rows,
        title=f"Radio energy attribution for {result.node_id} "
              f"over {result.horizon_s:.0f} s")


__all__ = [
    "TrafficCounters",
    "NodeEnergyResult",
    "NetworkEnergyResult",
    "render_table",
    "render_loss_breakdown",
]
