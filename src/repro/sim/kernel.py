"""The discrete-event simulation kernel.

:class:`Simulator` plays the role TOSSIM plays in the paper: it owns the
global clock and the event queue, and every modelled entity (radios,
timers, the TinyOS scheduler, the channel) advances by scheduling callbacks
on it.

Design notes
------------

* Time is an integer tick count (see :mod:`repro.sim.simtime`); the clock
  only moves forward, to the timestamp of the event being dispatched.
* ``run_until(t)`` dispatches every event with ``time <= t`` and then sets
  the clock to exactly ``t`` so that energy ledgers can be closed at a
  well-defined horizon.
* Exceptions raised inside callbacks propagate out of ``run*`` unchanged,
  annotated with the event label — silent event loss would make energy
  figures quietly wrong.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .events import Event, EventQueue, SimulationError
from .rng import RngRegistry
from .trace import TraceRecorder


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed for the per-purpose random streams handed out by
            :attr:`rng`.  Two simulators built with the same seed and the
            same scenario dispatch byte-identical event sequences.
        trace: optional :class:`TraceRecorder`; when provided, every
            dispatched event is logged to it.
    """

    def __init__(self, seed: int = 0,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._now = 0
        self._queue = EventQueue()
        self._running = False
        self._dispatched = 0
        self.rng = RngRegistry(seed)
        self.trace = trace
        self._end_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time in ticks."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Total number of events dispatched so far (for diagnostics)."""
        return self._dispatched

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None],
           label: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Raises :class:`SimulationError` if ``time`` is in the past.
        Scheduling *at the current instant* is allowed and runs after all
        callbacks already queued for that instant (FIFO), matching TinyOS
        task-post semantics.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label!r} at {time} ticks: "
                f"clock already at {self._now}")
        return self._queue.push(time, callback, label)

    def after(self, delay: int, callback: Callable[[], None],
              label: str = "") -> Event:
        """Schedule ``callback`` ``delay`` ticks from now."""
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {label!r} with negative delay {delay}")
        return self._queue.push(self._now + delay, callback, label)

    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> Event:
        """Schedule ``callback`` at the current instant (after queued peers)."""
        return self._queue.push(self._now, callback, label)

    def add_end_hook(self, hook: Callable[[], None]) -> None:
        """Register a callable invoked when a ``run*`` call finishes.

        Used by energy ledgers to close their open state interval at the
        simulation horizon so reported energies cover exactly the simulated
        duration.
        """
        self._end_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, end_time: int) -> None:
        """Dispatch all events with time <= ``end_time``.

        On return the clock reads exactly ``end_time`` and all end hooks
        have run, so time-in-state accounting is complete up to the horizon.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before current time {self._now}")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                event = self._queue.pop()
                assert event is not None  # peek_time said there is one
                self._now = event.time
                self._dispatch(event)
        finally:
            self._running = False
        self._now = end_time
        for hook in self._end_hooks:
            hook()

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Dispatch events until the queue drains.

        ``max_events`` guards against runaway self-rescheduling loops
        (periodic timers make a truly empty queue unreachable); hitting the
        limit raises :class:`SimulationError`.
        """
        self._running = True
        dispatched = 0
        try:
            while True:
                event = self._queue.pop()
                if event is None:
                    break
                dispatched += 1
                if dispatched > max_events:
                    raise SimulationError(
                        f"run_all exceeded {max_events} events; "
                        "use run_until for scenarios with periodic timers")
                self._now = event.time
                self._dispatch(event)
        finally:
            self._running = False
        for hook in self._end_hooks:
            hook()

    def _dispatch(self, event: Event) -> None:
        self._dispatched += 1
        if self.trace is not None:
            self.trace.record(self._now, "kernel", "dispatch", event.label)
        try:
            event.callback()
        except SimulationError:
            raise
        except Exception as exc:  # annotate and re-raise
            raise SimulationError(
                f"event {event.label!r} at t={self._now} failed: {exc}"
            ) from exc

    def pending_events(self) -> int:
        """Number of events currently queued (including cancelled stubs)."""
        return len(self._queue)


__all__ = ["Simulator"]
