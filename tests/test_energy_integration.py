"""Whole-stack energy cross-checks against closed-form expectations.

The simulator is event-driven, but in steady state the paper's
workloads have closed-form energy: per cycle the radio spends one
beacon window at RX current plus (if transmitting) one ShockBurst event
at TX current, and the MCU spends calibrated task times.  These tests
verify the *simulated* energy matches that arithmetic — i.e. nothing in
the stack double-books, leaks or drops energy.
"""

import pytest

from conftest import run_quick
from repro.core.losses import RadioEnergyCategory
from repro.sim.simtime import seconds


def radio_params(cal):
    rx_w = cal.radio_rx_a * cal.supply_v
    tx_w = cal.radio_tx_a * cal.supply_v
    return rx_w, tx_w


class TestStaticStreamingClosedForm:
    CYCLE_S = 0.030
    MEASURE_S = 6.0

    @pytest.fixture(scope="class")
    def outcome(self):
        from conftest import run_quick
        return run_quick(app="ecg_streaming", cycle_ms=30.0,
                         sampling_hz=205.0, num_nodes=5,
                         measure_s=self.MEASURE_S)

    def test_radio_energy_closed_form(self, outcome, cal):
        _, result = outcome
        node = result.node("node1")
        rx_w, tx_w = radio_params(cal)
        cycles = self.MEASURE_S / self.CYCLE_S
        window_s = cal.sync.static_lead_s \
            + cal.radio_timing.airtime_s(4 + 5) \
            + cal.radio_timing.rx_tail_s
        expected_mj = cycles * (window_s * rx_w
                                + cal.radio_timing.tx_event_s(18) * tx_w) \
            * 1e3
        assert node.radio_mj == pytest.approx(expected_mj, rel=0.005)

    def test_mcu_energy_closed_form(self, outcome, cal):
        _, result = outcome
        node = result.node("node1")
        cycles = self.MEASURE_S / self.CYCLE_S
        samples = 2 * 205.0 * self.MEASURE_S
        costs = cal.mcu_costs
        active_s = (cycles * costs.cycles_to_seconds(
            costs.beacon_processing + costs.packet_preparation)
            + samples * costs.cycles_to_seconds(costs.sample_acquisition))
        sleep_w = cal.mcu_sleep_a * cal.supply_v
        active_w = cal.mcu_active_a * cal.supply_v
        expected_mj = (sleep_w * self.MEASURE_S
                       + (active_w - sleep_w) * active_s) * 1e3
        # Wake-up transitions add ~6 us * (cycles + sample ticks).
        assert node.mcu_mj == pytest.approx(expected_mj, rel=0.01)

    def test_rx_state_dominated_by_idle_listening(self, outcome):
        _, result = outcome
        node = result.node("node1")
        assert node.loss_fraction(RadioEnergyCategory.IDLE_LISTENING) \
            > 0.85

    def test_attribution_covers_radio_total(self, outcome):
        _, result = outcome
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)

    def test_control_energy_is_beacon_reception(self, outcome, cal):
        _, result = outcome
        node = result.node("node1")
        rx_w, _ = radio_params(cal)
        cycles = self.MEASURE_S / self.CYCLE_S
        beacon_air = cal.radio_timing.airtime_s(4 + 5)
        expected_mj = cycles * beacon_air * rx_w * 1e3
        booked = node.losses.energy_j[RadioEnergyCategory.CONTROL_RX] * 1e3
        assert booked == pytest.approx(expected_mj, rel=0.01)


class TestRpeakClosedForm:
    MEASURE_S = 8.0

    @pytest.fixture(scope="class")
    def outcome(self):
        return run_quick(app="rpeak", cycle_ms=120.0, num_nodes=5,
                         measure_s=self.MEASURE_S, heart_rate_bpm=75.0)

    def test_radio_window_only_plus_beats(self, outcome, cal):
        _, result = outcome
        node = result.node("node1")
        rx_w, tx_w = radio_params(cal)
        cycles = self.MEASURE_S / 0.120
        window_s = cal.sync.static_lead_s \
            + cal.radio_timing.airtime_s(4 + 5) \
            + cal.radio_timing.rx_tail_s
        beats = node.traffic.data_tx
        expected_mj = (cycles * window_s * rx_w
                       + beats * cal.radio_timing.tx_event_s(4) * tx_w) \
            * 1e3
        assert node.radio_mj == pytest.approx(expected_mj, rel=0.01)

    def test_beat_packets_about_2_5_per_second(self, outcome):
        _, result = outcome
        node = result.node("node1")
        # 75 bpm on two channels -> 2.5 reports/s.
        rate = node.traffic.data_tx / self.MEASURE_S
        assert rate == pytest.approx(2.5, rel=0.2)

    def test_mcu_includes_detector_cost(self, outcome, cal):
        _, result = outcome
        node = result.node("node1")
        cycles = self.MEASURE_S / 0.120
        samples = 2 * 200.0 * self.MEASURE_S
        costs = cal.mcu_costs
        active_s = (cycles * costs.cycles_to_seconds(
            costs.beacon_processing)
            + samples * costs.cycles_to_seconds(
                costs.sample_acquisition + costs.rpeak_algorithm)
            + node.traffic.data_tx * costs.cycles_to_seconds(
                costs.packet_preparation))
        sleep_w = cal.mcu_sleep_a * cal.supply_v
        active_w = cal.mcu_active_a * cal.supply_v
        expected_mj = (sleep_w * self.MEASURE_S
                       + (active_w - sleep_w) * active_s) * 1e3
        assert node.mcu_mj == pytest.approx(expected_mj, rel=0.01)


class TestCrossScenarioInvariants:
    def test_radio_ledger_state_partition(self):
        """TX + RX + standby + power_down energies == total."""
        scenario, result = run_quick(measure_s=3.0)
        for node in scenario.nodes:
            ledger = node.radio.ledger
            total = ledger.energy_j()
            by_state = sum(ledger.energy_by_state().values())
            assert total == pytest.approx(by_state, abs=1e-15)

    def test_mcu_time_partition(self):
        scenario, _ = run_quick(measure_s=3.0)
        for node in scenario.nodes:
            booked = node.mcu.ledger.ticks_in()
            assert booked == seconds(3.0)

    def test_dynamic_attribution_invariant(self):
        _, result = run_quick(mac="dynamic", app="rpeak", num_nodes=3,
                              measure_s=3.0)
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)

    def test_join_scenario_attribution_invariant(self):
        _, result = run_quick(mac="dynamic", join_protocol=True,
                              num_nodes=3, measure_s=3.0)
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)

    def test_energy_conservation_under_skew(self):
        _, result = run_quick(clock_skew_ppm=40.0, measure_s=3.0)
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)
