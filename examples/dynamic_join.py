#!/usr/bin/env python3
"""Watch a dynamic-TDMA BAN assemble itself over the air.

Five nodes power up next to a base station with an *empty* schedule.
Each one acquires the beacon, fires a slot request at a random instant
inside the empty-slot (ES) window — colliding occasionally, retrying —
and the base station grows the TDMA cycle slot by slot (Figure 3 of
the paper: 20 ms with one node, 60 ms with five).  The example traces
the join choreography, then measures steady-state energy and shows the
protocol's control-traffic overhead in the loss taxonomy.

Run:  python examples/dynamic_join.py
"""

from repro.core.losses import RadioEnergyCategory
from repro.core.report import render_table
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.simtime import milliseconds, to_milliseconds


def main() -> None:
    config = BanScenarioConfig(
        mac="dynamic",
        app="rpeak",
        num_nodes=5,
        slot_ms=10.0,
        join_protocol=True,   # no preassigned slots: join over the air
        measure_s=30.0,
        seed=3,
        trace_capacity=200_000,
    )
    scenario = BanScenario(config)

    # --- Phase 1: let the network assemble, reporting as it grows ----
    print("t (ms)   cycle (ms)   joined   slots")
    joined_history = []
    step = milliseconds(20)
    while not all(node.mac.is_synced for node in scenario.nodes):
        if scenario.sim.now == 0:
            scenario.base_station.start()
            for node in scenario.nodes:
                node.start()
        scenario.sim.run_until(scenario.sim.now + step)
        joined = sum(node.mac.is_synced for node in scenario.nodes)
        if not joined_history or joined_history[-1] != joined:
            joined_history.append(joined)
            cycle_ms = to_milliseconds(
                scenario.base_station.mac.current_cycle_ticks())
            slots = scenario.base_station.mac.schedule.as_map()
            print(f"{to_milliseconds(scenario.sim.now):7.0f}"
                  f"   {cycle_ms:10.0f}   {joined:6d}   {slots}")

    ssrs = sum(node.mac.counters.slot_requests_sent
               for node in scenario.nodes)
    collisions = scenario.channel.collisions_detected
    print(f"\nAll 5 nodes joined after "
          f"{to_milliseconds(scenario.sim.now):.0f} ms, using {ssrs} "
          f"slot requests ({collisions} collision corruptions along "
          f"the way).")

    # --- Phase 2: steady-state measurement ---------------------------
    # The scenario runner would normally handle warm-up + measurement;
    # here the network is already running, so measure directly.
    measure_start = scenario.sim.now + milliseconds(100)
    scenario.sim.run_until(measure_start)
    scenario.base_station.reset_measurement()
    for node in scenario.nodes:
        node.reset_measurement()
    scenario.sim.run_until(measure_start + milliseconds(30_000))

    rows = []
    for node in scenario.nodes:
        res = node.collect_result(30.0)
        control = res.losses.energy_j.get(
            RadioEnergyCategory.CONTROL_RX, 0.0) * 1e3
        rows.append((node.node_id, node.mac.slot, res.radio_mj,
                     res.mcu_mj, control))
    print()
    print(render_table(
        ["node", "slot", "radio (mJ)", "uC (mJ)",
         "control-rx (mJ)"],
        rows,
        title="Steady state over 30 s (60 ms cycle, Rpeak application)"))
    print("\nControl-packet overhead (beacon reception) is booked "
          "explicitly, as the paper's Section 4.2 requires.")


if __name__ == "__main__":
    main()
