"""Process-parallel execution of independent BAN scenarios.

Every table row, sweep point, replication seed and multi-BAN parameter
set is an independent :class:`~repro.net.scenario.BanScenarioConfig`
evaluated by a deterministic simulator, which makes batch evaluation
embarrassingly parallel.  :class:`ScenarioExecutor` fans a batch out
over a :class:`concurrent.futures.ProcessPoolExecutor` and returns
results **in submission order**, so parallel output is bit-identical to
the sequential path — determinism is the contract, parallelism only
changes wall-clock time.

Fallback rules (all silent, all order-preserving):

* ``jobs=1`` runs everything in-process — same code path the worker
  runs, convenient for debugging and profiling.
* Configs that cannot be pickled (e.g. a lambda
  ``sync_policy_factory``) are detected up front and evaluated
  in-process; the rest of the batch still uses the pool.
* If the platform cannot start worker processes at all, the whole
  batch falls back in-process.

An optional :class:`~repro.exec.cache.ResultCache` short-circuits
configs whose results are already on disk; only the misses are
dispatched to workers.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from .cache import ResultCache


def _run_config_worker(config: Any) -> Any:
    """Build and run one scenario (module-level: must be picklable)."""
    from ..net.scenario import BanScenario
    return BanScenario(config).run()


def default_jobs() -> int:
    """Worker count used for ``jobs=None``: the machine's CPU count."""
    return os.cpu_count() or 1


def _picklable(value: Any) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


class ScenarioExecutor:
    """Runs batches of independent scenario configs, optionally parallel.

    Args:
        jobs: worker process count.  ``1`` (the default) executes
            in-process; ``None`` uses :func:`default_jobs`.
        cache: optional :class:`ResultCache` consulted before running
            and updated after; its ``stats`` field accumulates
            hit/miss counts across batches.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = default_jobs() if jobs is None else jobs
        self.cache = cache

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            ) -> List[Any]:
        """Apply picklable ``fn`` to each item; results in item order.

        The generic machinery behind :meth:`run_configs`, exposed for
        batch entry points that need a custom per-item function (e.g.
        multi-BAN runs).  Unpicklable items are evaluated in-process;
        so is everything when ``jobs == 1`` or the pool cannot start.
        """
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [fn(item) for item in items]

        skip = {index for index, item in enumerate(items)
                if not _picklable(item)}
        if not _picklable(fn):
            skip = set(range(len(items)))
        pooled = [index for index in range(len(items))
                  if index not in skip]
        results: List[Any] = [None] * len(items)
        if pooled:
            try:
                workers = min(self.jobs, len(pooled))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [(index, pool.submit(fn, items[index]))
                               for index in pooled]
                    for index, future in futures:
                        results[index] = future.result()
            except (OSError, BrokenProcessPool, pickle.PicklingError):
                # Pool unavailable on this platform: evaluate the
                # pooled share where we are (determinism makes any
                # partially computed results safe to recompute).
                skip.update(pooled)
        for index in sorted(skip):
            results[index] = fn(items[index])
        return results

    def run_configs(self, configs: Sequence[Any]) -> List[Any]:
        """Evaluate each config; results in submission order.

        Cached results are returned without running; only misses are
        dispatched (in their original relative order, so sequential
        and parallel runs stay bit-identical).
        """
        configs = list(configs)
        cache = self.cache
        if cache is None:
            return self.map(_run_config_worker, configs)

        results: List[Any] = [None] * len(configs)
        miss_indices: List[int] = []
        for index, config in enumerate(configs):
            cached = cache.get(config)
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            fresh = self.map(_run_config_worker,
                             [configs[i] for i in miss_indices])
            for index, result in zip(miss_indices, fresh):
                results[index] = result
                cache.put(configs[index], result)
        return results


def run_configs(configs: Sequence[Any], jobs: Optional[int] = 1,
                cache: Optional[ResultCache] = None) -> List[Any]:
    """One-call convenience: ``ScenarioExecutor(jobs, cache).run_configs``."""
    return ScenarioExecutor(jobs=jobs, cache=cache).run_configs(configs)


__all__ = ["ScenarioExecutor", "default_jobs", "run_configs"]
