"""Seeded-bug fixture: a radio leaked across a stop boundary.

``LeakyMac.on_start`` powers the radio up on every path, but its
``on_stop`` never powers it down — after the component stops, the
fake radio books stand-by current forever (LIF001).  ``PairedMac`` is
the fixed twin: identical shape, with the release on the stop path —
it must stay silent, which is what makes the finding a proof about
the bug and not about the pattern.

The spec is co-located as a pure literal: the analyzer reads it out
of this file's AST without importing it.
"""

from repro.core.lifecycles import LifecycleSpec

FIXTURE_RADIO = LifecycleSpec(
    resource="fake-radio",
    module="hw/fake_radio.py",
    class_names=("FakeRadio",),
    acquire=("power_up",),
    release=("power_down",),
    uses=("send", "start_rx"),
    idempotent_release=False,
    boundary=(("on_start", "on_stop"),),
)


class FakeRadio:
    """Two-state transceiver; its own methods are lifecycle-exempt."""

    def __init__(self) -> None:
        self.state = "power_down"

    def power_up(self) -> None:
        self.state = "standby"

    def power_down(self) -> None:
        self.state = "power_down"

    def send(self, payload: bytes) -> None:
        self.state = "tx"

    def start_rx(self) -> None:
        self.state = "rx"


class LeakyMac:
    """BUG(LIF001): powers up on start, never powers down on stop."""

    def __init__(self, radio: FakeRadio) -> None:
        self._radio = radio
        self._started = False

    def on_start(self) -> None:
        self._radio.power_up()
        self._started = True

    def on_stop(self) -> None:
        self._started = False  # the radio stays in stand-by forever


class PairedMac:
    """Fixed twin: the stop path releases what the start path took."""

    def __init__(self, radio: FakeRadio) -> None:
        self._radio = radio
        self._started = False

    def on_start(self) -> None:
        self._radio.power_up()
        self._started = True

    def on_stop(self) -> None:
        self._started = False
        self._radio.power_down()
