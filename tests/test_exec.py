"""Tests for the parallel scenario executor and the result cache.

The executor's contract is *bit-identical output*: running a batch
with N workers (or through the cache) must produce exactly the results
the plain sequential loop produces.  These tests pin that contract for
every batch entry point the analysis layer uses.
"""

import dataclasses
import pickle

import pytest

from repro.analysis.experiments import (
    reproduce_all_tables,
    reproduce_table1,
)
from repro.analysis.replication import default_metrics, replicate
from repro.analysis.sensitivity import tornado
from repro.analysis.sweep import sweep_cycle_ms
from repro.exec import ErrorResult, ResultCache, ScenarioExecutor, \
    ScenarioTimeoutError, Uncacheable, config_fingerprint, failures, \
    run_configs
from repro.exec.cache import CacheStats
from repro.mac.sync import DriftTrackingLead
from repro.net.scenario import BanScenarioConfig

#: Short window keeping each scenario fast; long enough to exercise
#: warm-up plus several TDMA cycles.
MEASURE_S = 1.0


def _config(**overrides) -> BanScenarioConfig:
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=2,
                    cycle_ms=30.0, measure_s=MEASURE_S, seed=7)
    defaults.update(overrides)
    return BanScenarioConfig(**defaults)


class TestExecutorDeterminism:
    def test_all_table_rows_parallel_equals_sequential(self):
        """The acceptance property: every row of every table, jobs=4,
        exactly equal to the sequential path."""
        sequential = reproduce_all_tables(measure_s=MEASURE_S)
        parallel = reproduce_all_tables(
            measure_s=MEASURE_S, executor=ScenarioExecutor(jobs=4))
        assert parallel == sequential

    def test_single_table_parallel_equals_sequential(self):
        sequential = reproduce_table1(measure_s=MEASURE_S)
        parallel = reproduce_table1(measure_s=MEASURE_S,
                                    executor=ScenarioExecutor(jobs=2))
        assert parallel == sequential

    def test_sweep_parallel_equals_sequential(self):
        base = _config()
        cycles = [30.0, 60.0, 90.0, 120.0]
        sequential = sweep_cycle_ms(base, cycles)
        parallel = sweep_cycle_ms(base, cycles,
                                  executor=ScenarioExecutor(jobs=4))
        assert parallel == sequential

    def test_replicate_parallel_equals_sequential(self):
        config = _config(ecg_noise_mv=0.1)
        seeds = [1, 2, 3]
        sequential = replicate(config, seeds, default_metrics())
        parallel = replicate(config, seeds, default_metrics(),
                             executor=ScenarioExecutor(jobs=3))
        assert parallel == sequential

    def test_run_configs_preserves_submission_order(self):
        configs = [_config(cycle_ms=cycle)
                   for cycle in (120.0, 30.0, 90.0)]
        # Order is by submission, not completion: the sequential run
        # defines the expected element order.
        assert run_configs(configs, jobs=3) == run_configs(configs, jobs=1)

    def test_unpicklable_config_falls_back_in_process(self):
        """A lambda sync policy cannot cross a process boundary; the
        executor must run that config in-process (and still use the
        pool for the rest) with output unchanged."""
        def batch():
            return [
                _config(),
                _config(sync_policy_factory=lambda cal:
                        DriftTrackingLead(50.0)),
            ]

        with pytest.raises((pickle.PicklingError, AttributeError,
                            TypeError)):
            pickle.dumps(batch()[1])
        results = ScenarioExecutor(jobs=2).run_configs(batch())
        expected = ScenarioExecutor(jobs=1).run_configs(batch())
        assert results == expected

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ScenarioExecutor(jobs=0)


class TestSensitivitySimulate:
    def test_simulate_matches_across_jobs(self):
        config = _config(num_nodes=5, sampling_hz=205.0)
        names = ("radio_rx_current", "mcu_active_current")
        sequential = tornado(config, parameters=names, method="simulate")
        parallel = tornado(config, parameters=names, method="simulate",
                           executor=ScenarioExecutor(jobs=4))
        assert parallel == sequential

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            tornado(_config(), method="guess")


class TestResultCache:
    def test_second_run_hits_cache_with_identical_results(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        executor = ScenarioExecutor(jobs=1, cache=cache)
        configs = [_config(), _config(cycle_ms=60.0)]
        first = executor.run_configs(configs)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        second = executor.run_configs(
            [_config(), _config(cycle_ms=60.0)])
        assert cache.stats.hits == 2
        assert second == first

    def test_cache_survives_fresh_instance(self, tmp_path):
        """A new ResultCache over the same directory (a new process,
        in practice) still hits."""
        ScenarioExecutor(cache=ResultCache(root=tmp_path)) \
            .run_configs([_config()])
        reopened = ResultCache(root=tmp_path)
        result = ScenarioExecutor(cache=reopened).run_configs([_config()])
        assert reopened.stats.hits == 1
        assert result[0].node("node1").radio_mj > 0

    def test_different_configs_different_keys(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.key_for(_config()) != \
            cache.key_for(_config(cycle_ms=60.0))
        assert cache.key_for(_config()) == cache.key_for(_config())

    def test_calibration_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        config = _config()
        tweaked = dataclasses.replace(
            config, calibration=dataclasses.replace(
                config.calibration,
                radio_rx_a=config.calibration.radio_rx_a * 1.1))
        assert cache.key_for(config) != cache.key_for(tweaked)

    def test_code_salt_invalidates(self, tmp_path):
        old = ResultCache(root=tmp_path, salt="old-code")
        new = ResultCache(root=tmp_path, salt="new-code")
        old.put(_config(), "result")
        assert new.get(_config()) is None  # different salt -> cold
        assert old.get(_config()) == "result"

    def test_callable_config_is_uncacheable(self, tmp_path):
        config = _config()
        config.sync_policy_factory = lambda cal: None
        with pytest.raises(Uncacheable):
            config_fingerprint(config)
        cache = ResultCache(root=tmp_path)
        assert cache.get(config) is None
        assert cache.stats.uncacheable == 1
        assert cache.put(config, "anything") is False
        # The executor still runs such configs.
        result = ScenarioExecutor(cache=cache).run_configs([_config()])
        assert result[0].node("node1").radio_mj > 0

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        cache.put(_config(), "value")
        assert cache.clear() == 1
        assert list(cache.entries()) == []

    def test_stats_render(self):
        stats = CacheStats(hits=2, misses=1, uncacheable=0)
        assert stats.lookups == 3
        assert "2 hit(s)" in str(stats)


class TestFingerprint:
    def test_fingerprint_is_deterministic(self):
        assert config_fingerprint(_config()) == \
            config_fingerprint(_config())

    def test_float_encoding_is_exact(self):
        a = config_fingerprint(_config(cycle_ms=30.0))
        b = config_fingerprint(_config(cycle_ms=30.0 + 1e-12))
        assert a != b


# ----------------------------------------------------------------------
# Failure isolation, timeouts and pool-loss retries
# ----------------------------------------------------------------------

def _double_or_boom(x):
    """Module-level (picklable) worker: fails deterministically on 3."""
    if x == 3:
        raise ValueError(f"bad item {x}")
    return 2 * x


def _sleep_for(delay_s):
    import time
    time.sleep(delay_s)
    return delay_s


def _log_call_and_die_late(arg):
    """Log the call, then kill the worker process for item 3.

    The death is delayed so sibling items finish first, making "which
    futures completed before the pool broke" deterministic.  In the
    main process (in-process fallback) the item succeeds.
    """
    import multiprocessing
    import os
    import time
    root, x = arg
    with open(os.path.join(root, "calls.log"), "a") as handle:
        handle.write(f"{x}\n")
    if x == 3 and multiprocessing.parent_process() is not None:
        time.sleep(0.4)
        os._exit(1)
    return 10 * x


def _die_once_in_worker(arg):
    """Kill the worker on the first pooled attempt only."""
    import multiprocessing
    import os
    root, x = arg
    marker = os.path.join(root, "died.marker")
    if multiprocessing.parent_process() is not None \
            and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return 2 * x


def _bad_config() -> BanScenarioConfig:
    """A config whose *run* fails deterministically: two joiners, one
    slot — the second node can never join and the deadline trips."""
    return _config(num_nodes=2, num_slots=1, join_protocol=True,
                   join_deadline_s=0.5, seed=2)


class TestFailureIsolation:
    def test_map_isolates_fn_errors_sequentially(self):
        executor = ScenarioExecutor(jobs=1, isolate_errors=True)
        results = executor.map(_double_or_boom, [1, 2, 3, 4])
        assert results[0] == 2
        assert results[1] == 4
        assert results[3] == 8
        error = results[2]
        assert isinstance(error, ErrorResult)
        assert error.failed
        assert error.index == 2
        assert error.error_type == "ValueError"
        assert "bad item 3" in error.message
        assert "ValueError" in error.traceback
        assert failures(results) == [error]

    def test_map_raises_without_isolation(self):
        with pytest.raises(ValueError, match="bad item 3"):
            ScenarioExecutor(jobs=1).map(_double_or_boom, [3])
        with pytest.raises(ValueError, match="bad item 3"):
            ScenarioExecutor(jobs=2).map(_double_or_boom, [1, 3, 4])

    def test_isolated_errors_identical_across_jobs(self):
        items = [1, 3, 4]
        sequential = ScenarioExecutor(
            jobs=1, isolate_errors=True).map(_double_or_boom, items)
        parallel = ScenarioExecutor(
            jobs=3, isolate_errors=True).map(_double_or_boom, items)
        assert sequential == parallel  # traceback excluded from ==

    def test_error_result_summary(self):
        executor = ScenarioExecutor(jobs=1, isolate_errors=True)
        error = executor.map(_double_or_boom, [3])[0]
        summary = error.summary()
        assert summary["index"] == 0
        assert summary["error_type"] == "ValueError"
        assert "bad item 3" in summary["message"]

    def test_run_configs_crash_isolation_matches_across_jobs(self):
        configs = [_config(seed=1), _bad_config(), _config(seed=5)]
        sequential = ScenarioExecutor(
            jobs=1, isolate_errors=True).run_configs(configs)
        parallel = ScenarioExecutor(
            jobs=3, isolate_errors=True).run_configs(configs)
        assert sequential == parallel
        # The two healthy scenarios produced full results...
        assert sequential[0].node("node1").radio_mj > 0
        assert sequential[2].node("node1").radio_mj > 0
        # ...and the crashing one a structured record, not an abort.
        error = sequential[1]
        assert isinstance(error, ErrorResult)
        assert error.index == 1
        assert error.error_type == "RuntimeError"
        assert "failed to join" in error.message

    def test_run_configs_raises_without_isolation(self):
        with pytest.raises(RuntimeError, match="failed to join"):
            run_configs([_bad_config()], jobs=1)

    def test_failed_results_never_cached(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        executor = ScenarioExecutor(jobs=1, cache=cache,
                                    isolate_errors=True)
        first = executor.run_configs([_bad_config(), _config()])
        assert isinstance(first[0], ErrorResult)
        assert cache.stats.misses == 2
        second = executor.run_configs([_bad_config(), _config()])
        assert isinstance(second[0], ErrorResult)
        assert second[1] == first[1]
        assert cache.stats.hits == 1  # only the healthy config

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            ScenarioExecutor(timeout_s=0.0)
        with pytest.raises(ValueError, match="retries"):
            ScenarioExecutor(retries=-1)


class TestPoolFailures:
    def test_timeout_yields_error_result(self):
        executor = ScenarioExecutor(jobs=2, isolate_errors=True,
                                    timeout_s=0.3)
        results = executor.map(_sleep_for, [0.0, 30.0])
        assert results[0] == 0.0
        error = results[1]
        assert isinstance(error, ErrorResult)
        assert error.error_type.endswith("ScenarioTimeoutError")

    def test_timeout_raises_without_isolation(self):
        executor = ScenarioExecutor(jobs=2, timeout_s=0.2)
        with pytest.raises(ScenarioTimeoutError):
            executor.map(_sleep_for, [0.0, 30.0])

    def test_broken_pool_recomputes_only_unfinished(self, tmp_path):
        items = [(str(tmp_path), x) for x in range(4)]
        executor = ScenarioExecutor(jobs=2)
        results = executor.map(_log_call_and_die_late, items)
        # The worker died on item 3; only that item fell back to the
        # main process — completed siblings were not recomputed.
        assert results == [0, 10, 20, 30]
        calls = (tmp_path / "calls.log").read_text().split()
        assert sorted(calls) == ["0", "1", "2", "3", "3"]

    def test_retries_redispatch_pool_losses(self, tmp_path):
        executor = ScenarioExecutor(jobs=2, retries=2)
        results = executor.map(_die_once_in_worker,
                               [(str(tmp_path), 7), (str(tmp_path), 8)])
        assert results == [14, 16]
        assert (tmp_path / "died.marker").exists()
