"""Overload and saturation behaviour: what happens when the platform is
asked for more than it can do.

These pin the *defined* behaviour at the edges — MCU saturation under
impossible sampling loads, radio-slot starvation, and queue bounds —
so regressions cannot silently change failure modes.
"""

import pytest

from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.mcu import Msp430
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.kernel import Simulator
from repro.sim.simtime import milliseconds, seconds
from repro.tinyos.scheduler import TaskScheduler
from repro.tinyos.timers import VirtualTimer

CAL = DEFAULT_CALIBRATION


class TestMcuSaturation:
    def test_backlog_grows_when_task_exceeds_period(self):
        """A 2 ms task posted every 1 ms: the queue grows, tasks still
        run in order, and the MCU never sleeps (100% duty)."""
        sim = Simulator()
        mcu = Msp430(sim, CAL)
        scheduler = TaskScheduler(sim, mcu)
        completed = []
        timer = VirtualTimer(
            sim, lambda: scheduler.post(
                lambda: completed.append(sim.now), 16_000))  # 2 ms
        timer.start_periodic(milliseconds(1))
        sim.run_until(seconds(0.1))
        # ~100 posts, ~50 completions: half the load is backlogged.
        assert 45 <= len(completed) <= 52
        assert scheduler.pending > 40
        assert completed == sorted(completed)
        # Fully saturated: active the whole time after the first post.
        assert mcu.active_seconds() == pytest.approx(0.099, abs=0.002)

    def test_saturated_mcu_energy_is_active_power(self):
        sim = Simulator()
        mcu = Msp430(sim, CAL)
        scheduler = TaskScheduler(sim, mcu)
        timer = VirtualTimer(
            sim, lambda: scheduler.post_cost_only(16_000))
        timer.start_periodic(milliseconds(1))
        sim.run_until(seconds(1.0))
        ceiling = CAL.mcu_active_a * CAL.supply_v * 1.0 * 1e3
        assert mcu.energy_mj() == pytest.approx(ceiling, rel=0.01)


class TestRadioStarvation:
    def test_streaming_backlog_bounded_by_drop_policy(self):
        """Oversampled streaming cannot grow memory without bound: the
        buffer drops oldest codes and keeps shipping full packets."""
        config = BanScenarioConfig(mac="static", app="ecg_streaming",
                                   num_nodes=1, cycle_ms=120.0,
                                   sampling_hz=400.0, measure_s=5.0)
        scenario = BanScenario(config)
        result = scenario.run()
        app = scenario.nodes[0].app
        assert app.codes_dropped > 0
        assert app.buffered_codes <= app._buffer.maxlen
        # The link still carries one full packet per cycle.
        cycles = 5.0 / 0.120
        assert result.node("node1").traffic.data_tx \
            == pytest.approx(cycles, abs=2)

    def test_rpeak_report_queue_bounded_under_beat_storm(self):
        """At 180 bpm on two channels (6 reports/s) against a 120 ms
        cycle (8.3 slots/s) the queue keeps up: bounded depth, nothing
        dropped — the densest rhythm the application supports."""
        config = BanScenarioConfig(mac="static", app="rpeak",
                                   num_nodes=1, cycle_ms=120.0,
                                   heart_rate_bpm=180.0, measure_s=10.0)
        scenario = BanScenario(config)
        scenario.run()
        app = scenario.nodes[0].app
        assert app.pending_reports <= 16
        assert app.reports_dropped == 0  # capacity suffices here

    def test_static_cycle_too_small_for_slots_rejected(self):
        from repro.mac.tdma_static import StaticTdmaConfig
        with pytest.raises(ValueError):
            StaticTdmaConfig(cycle_ticks=5, num_slots=10)


class TestSchedulerFairness:
    def test_interleaved_posters_share_in_post_order(self):
        sim = Simulator()
        mcu = Msp430(sim, CAL)
        scheduler = TaskScheduler(sim, mcu)
        ran = []
        for tick in range(10):
            sim.at(milliseconds(tick),
                   lambda t=tick: scheduler.post(
                       lambda t=t: ran.append(("a", t)), 4_000))
            sim.at(milliseconds(tick),
                   lambda t=tick: scheduler.post(
                       lambda t=t: ran.append(("b", t)), 4_000))
        sim.run_until(seconds(1.0))
        # Per tick, a precedes b; across ticks, order is chronological.
        assert ran == [(source, tick) for tick in range(10)
                       for source in ("a", "b")]
