#!/usr/bin/env python3
"""Dynamic determinism smoke: the invariant the static rules guard.

``repro.lint`` statically bans the things that *would* break bit-exact
reproducibility (global RNG, wall-clock reads, set-ordered dispatch);
this tool proves the invariant actually holds end to end.  Three
checks, each over a reference scenario set:

1. **Repeat-run** — the same config run twice in one process must
   produce an identical energy result *and* an identical event trace
   (every dispatched ``(tick, source, kind, detail)`` record).
2. **Parallel-equals-sequential** — a mixed batch executed with
   ``jobs=1`` and ``jobs=2`` must produce identical per-config result
   fingerprints in the same order.
3. **Merged counters** — the executor's merged telemetry counters and
   state timers (sim-time quantities; wall-clock histograms/gauges are
   explicitly out of scope) must be equal for ``jobs=1`` and
   ``jobs=2``.
4. **Causal spans** — attaching a span tracer must not perturb the
   run (result and trace fingerprints equal the spans-off run), the
   span set must be bit-identical across repeat runs, and the merged
   ``--jobs N`` span store must equal the sequential one.

Fingerprints are SHA-256 over the result cache's canonical dataclass
encoding (:func:`repro.exec.cache.config_fingerprint`), so "equal"
means equal to the last bit of every float.  A JSON artifact
(``--out``) records every fingerprint for offline diffing; the exit
code is non-zero on any divergence.

Usage::

    PYTHONPATH=src python tools/determinism_check.py --jobs 2 \
        --out determinism.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from typing import Any, Dict, List, Tuple

from repro.exec import ScenarioExecutor
from repro.exec.cache import config_fingerprint
from repro.net import BanScenario, BanScenarioConfig
from repro.obs import MetricsRegistry, SpanStore, attach_span_tracer
from repro.sim.trace import TraceRecorder


def reference_configs() -> List[BanScenarioConfig]:
    """A small batch covering distinct MACs, apps and seeds."""
    return [
        BanScenarioConfig(mac="static", app="ecg_streaming",
                          num_nodes=3, measure_s=2.0, seed=7),
        BanScenarioConfig(mac="dynamic", app="eeg_streaming",
                          num_nodes=2, measure_s=2.0, seed=11),
        BanScenarioConfig(mac="static", app="rpeak", num_nodes=2,
                          measure_s=2.0, seed=13,
                          clock_skew_ppm=40.0),
        BanScenarioConfig(mac="csma", app="ecg_streaming",
                          num_nodes=3, measure_s=2.0, seed=17,
                          sampling_hz=205.0),
    ]


def result_fingerprint(result: Any) -> str:
    """SHA-256 of the canonical (bit-exact) result encoding."""
    text = config_fingerprint(result)
    return hashlib.sha256(text.encode()).hexdigest()


def traced_run(config: BanScenarioConfig, spans: bool = False
               ) -> Tuple[str, str, str]:
    """Run once with tracing; return (result_fp, trace_fp, span_fp).

    ``span_fp`` is the span-store fingerprint when ``spans`` is set
    and ``""`` otherwise.
    """
    trace = TraceRecorder()
    scenario = BanScenario(config, trace=trace)
    tracer = attach_span_tracer(scenario) if spans else None
    result = scenario.run()
    digest = hashlib.sha256()
    for record in trace:
        digest.update(
            f"{record.time}|{record.source}|{record.kind}|"
            f"{record.detail}\n".encode())
    span_fp = tracer.store.fingerprint() if tracer is not None else ""
    return result_fingerprint(result), digest.hexdigest(), span_fp


def check_repeat_run(report: Dict[str, Any]) -> List[str]:
    """Check 1: same config, same process, twice — identical.

    Every reference config is exercised, so each MAC family (including
    the contention ones, whose backoff/jitter draws are the likeliest
    determinism hazard) proves repeatability separately.
    """
    failures = []
    entries = []
    for index, config in enumerate(reference_configs()):
        first = traced_run(config)
        second = traced_run(config)
        entries.append({
            "mac": config.mac,
            "result_fingerprints": [first[0], second[0]],
            "trace_fingerprints": [first[1], second[1]],
        })
        if first[0] != second[0]:
            failures.append(
                f"repeat-run energy results diverge "
                f"(config {index}, mac={config.mac})")
        if first[1] != second[1]:
            failures.append(
                f"repeat-run event traces diverge "
                f"(config {index}, mac={config.mac})")
    report["repeat_run"] = {"configs": entries}
    return failures


def check_jobs_equivalence(jobs: int, report: Dict[str, Any]
                           ) -> List[str]:
    """Checks 2+3: pooled results and merged counters == sequential."""
    failures = []
    configs = reference_configs()

    sequential_metrics = MetricsRegistry()
    sequential = ScenarioExecutor(
        jobs=1, metrics=sequential_metrics).run_configs(configs)
    pooled_metrics = MetricsRegistry()
    pooled = ScenarioExecutor(
        jobs=jobs, metrics=pooled_metrics).run_configs(configs)

    sequential_fps = [result_fingerprint(r) for r in sequential]
    pooled_fps = [result_fingerprint(r) for r in pooled]
    report["jobs_equivalence"] = {
        "jobs": jobs,
        "sequential": sequential_fps,
        "pooled": pooled_fps,
    }
    for index, (left, right) in enumerate(zip(sequential_fps,
                                              pooled_fps)):
        if left != right:
            failures.append(
                f"config {index}: jobs=1 and jobs={jobs} results "
                "diverge")

    # Sim-time telemetry must merge to equality; wall-clock figures
    # (histograms, gauges) legitimately differ run to run.
    deterministic_keys = ("counters", "state_timers")
    sequential_snapshot = sequential_metrics.snapshot()
    pooled_snapshot = pooled_metrics.snapshot()
    counters = {}
    for key in deterministic_keys:
        left, right = sequential_snapshot[key], pooled_snapshot[key]
        counters[key] = {"equal": left == right}
        if left != right:
            diff = {name for name in set(left) | set(right)
                    if left.get(name) != right.get(name)}
            counters[key]["diverging"] = sorted(diff)[:20]
            failures.append(
                f"merged {key} diverge between jobs=1 and "
                f"jobs={jobs}: {sorted(diff)[:5]}")
    report["merged_telemetry"] = counters
    return failures


def check_spans(jobs: int, report: Dict[str, Any]) -> List[str]:
    """Check 4: spans neither perturb nor vary (repeat + jobs merge).

    The perturbation check runs per reference config: the span hooks
    sit on different code paths per MAC family (TDMA slot machinery vs
    contention backoff/CCA phases), so one family passing proves
    nothing about the others.
    """
    failures = []
    configs = reference_configs()
    entries = []
    for index, config in enumerate(configs):
        base = traced_run(config)
        first = traced_run(config, spans=True)
        second = traced_run(config, spans=True)
        entries.append({
            "mac": config.mac,
            "result_fingerprints": [base[0], first[0], second[0]],
            "trace_fingerprints": [base[1], first[1], second[1]],
            "span_fingerprints": [first[2], second[2]],
        })
        where = f"(config {index}, mac={config.mac})"
        if (base[0], base[1]) != (first[0], first[1]):
            failures.append(
                "attaching spans perturbs the run (result or trace "
                f"fingerprint changed) {where}")
        if first[:2] != second[:2]:
            failures.append(f"spans-enabled repeat runs diverge {where}")
        if first[2] != second[2]:
            failures.append(f"repeat-run span sets diverge {where}")
    report["spans"] = {"configs": entries}
    merged: Dict[int, str] = {}
    for worker_count in (1, jobs):
        store = SpanStore()
        ScenarioExecutor(jobs=worker_count,
                         spans=store).run_configs(configs)
        merged[worker_count] = store.fingerprint()
    report["spans"]["jobs_span_fingerprints"] = {
        str(worker_count): fingerprint
        for worker_count, fingerprint in sorted(merged.items())}
    if merged[1] != merged[jobs]:
        failures.append(
            f"merged span sets diverge between jobs=1 and jobs={jobs}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="End-to-end determinism smoke "
                    "(static rules' dynamic counterpart).")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the pooled runs "
                             "(default: 2)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write fingerprint report JSON to PATH")
    args = parser.parse_args(argv)

    report: Dict[str, Any] = {"tool": "determinism_check",
                              "checks": {}}
    failures = []
    failures += check_repeat_run(report["checks"])
    failures += check_jobs_equivalence(args.jobs, report["checks"])
    failures += check_spans(args.jobs, report["checks"])
    report["ok"] = not failures
    report["failures"] = failures

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if failures:
        for failure in failures:
            print(f"DETERMINISM BROKEN: {failure}", file=sys.stderr)
        return 1
    print("determinism ok: repeat-run, jobs equivalence, merged "
          "telemetry and causal spans all bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
