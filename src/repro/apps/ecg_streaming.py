"""ECG streaming application (Section 5.1).

A 2-channel ECG signal is sampled and every acquired 12-bit code is
queued; each TDMA cycle the node transmits a fixed-size data packet to
the base station ("we fixed the transmission payload of each node to 18
bytes per TDMA cycle").  Eighteen bytes carry twelve 12-bit codes —
six sample pairs — which is why the paper couples sampling frequency
and cycle length (205 Hz/channel needs a 30 ms cycle, 55 Hz allows
120 ms).

The on-air payload size is *fixed* (padding if the buffer runs short,
as the platform does), so radio energy per cycle is deterministic; the
packed codes travel as the frame's content for the base station to
unpack.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from ..core.calibration import ModelCalibration
from ..hw.adc import Adc12
from ..hw.asic import BiopotentialAsic
from ..mac.base import AppPayload, NodeMac
from ..sim.kernel import Simulator
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import SamplingApplication

#: The case studies' fixed per-cycle payload (Section 5.1).
DEFAULT_PAYLOAD_BYTES = 18

#: Bits per packed sample (the ADC's resolution).
BITS_PER_CODE = 12


def codes_per_payload(payload_bytes: int) -> int:
    """How many 12-bit codes fit in ``payload_bytes`` (18 B -> 12)."""
    if payload_bytes < 0:
        raise ValueError(f"negative payload size: {payload_bytes}")
    return (payload_bytes * 8) // BITS_PER_CODE


def pack_codes(codes: Sequence[int]) -> bytes:
    """Pack 12-bit codes, little-end first nibble-wise (two codes per
    three bytes).  Used by tests and the base-station unpacker."""
    out = bytearray()
    for i in range(0, len(codes) - 1, 2):
        a, b = codes[i], codes[i + 1]
        out.append(a & 0xFF)
        out.append(((a >> 8) & 0x0F) | ((b & 0x0F) << 4))
        out.append((b >> 4) & 0xFF)
    if len(codes) % 2:
        a = codes[-1]
        out.append(a & 0xFF)
        out.append((a >> 8) & 0x0F)
    return bytes(out)


def unpack_codes(packed: bytes, count: int) -> List[int]:
    """Inverse of :func:`pack_codes` for ``count`` codes."""
    codes: List[int] = []
    i = 0
    while len(codes) + 2 <= count and i + 3 <= len(packed):
        b0, b1, b2 = packed[i], packed[i + 1], packed[i + 2]
        codes.append(b0 | ((b1 & 0x0F) << 8))
        codes.append(((b1 >> 4) & 0x0F) | (b2 << 4))
        i += 3
    if len(codes) < count and i + 2 <= len(packed):
        b0, b1 = packed[i], packed[i + 1]
        codes.append(b0 | ((b1 & 0x0F) << 8))
    return codes


class EcgStreamingApp(SamplingApplication):
    """Stream packed ECG samples to the base station every cycle.

    Args:
        payload_bytes: fixed on-air payload per cycle (default 18).
        buffer_limit_codes: backlog bound; oldest codes are dropped when
            acquisition outpaces the radio budget (the paper avoids this
            regime by matching sampling frequency to the cycle).
    """

    def __init__(self, sim: Simulator, scheduler: TaskScheduler,
                 asic: BiopotentialAsic, adc: Adc12, mac: NodeMac,
                 calibration: ModelCalibration,
                 channels: Sequence[int] = (0, 1),
                 sampling_hz: float = 205.0,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 buffer_limit_codes: Optional[int] = None,
                 name: str = "ecg_stream",
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, scheduler, asic, adc, mac, calibration,
                         channels, sampling_hz, name=name, trace=trace)
        if payload_bytes <= 0:
            raise ValueError(
                f"{name}: payload must be positive: {payload_bytes}")
        self.payload_bytes = payload_bytes
        self._capacity = codes_per_payload(payload_bytes)
        limit = buffer_limit_codes if buffer_limit_codes is not None \
            else 8 * self._capacity
        self._buffer: Deque[int] = deque(maxlen=limit)
        self.packets_provided = 0
        self.codes_sent = 0
        self.codes_dropped = 0

    @property
    def buffered_codes(self) -> int:
        """Codes currently awaiting transmission."""
        return len(self._buffer)

    def handle_samples(self, codes: Tuple[int, ...]) -> None:
        for code in codes:
            if len(self._buffer) == self._buffer.maxlen:
                self.codes_dropped += 1
            self._buffer.append(code)

    def next_payload(self) -> Optional[AppPayload]:
        take = min(len(self._buffer), self._capacity)
        codes = [self._buffer.popleft() for _ in range(take)]
        self.packets_provided += 1
        self.codes_sent += take
        content = {
            "kind": "ecg_stream",
            "codes": codes,
            "packed": pack_codes(codes),
            "channels": self.channels,
        }
        # Fixed-size frame: the platform always fills the ShockBurst
        # payload, padding when the buffer runs short.
        return (self.payload_bytes, content)


__all__ = [
    "DEFAULT_PAYLOAD_BYTES",
    "BITS_PER_CODE",
    "codes_per_payload",
    "pack_codes",
    "unpack_codes",
    "EcgStreamingApp",
]
