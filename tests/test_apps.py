"""Unit/integration tests for the two case-study applications."""

import pytest

from conftest import run_quick
from repro.apps.ecg_streaming import (
    codes_per_payload,
    pack_codes,
    unpack_codes,
)


class TestPacking:
    def test_codes_per_payload(self):
        assert codes_per_payload(18) == 12  # the case-study packet
        assert codes_per_payload(3) == 2
        assert codes_per_payload(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            codes_per_payload(-1)

    def test_pack_even_count(self):
        packed = pack_codes([0x123, 0xABC])
        assert packed == bytes([0x23, 0xC1, 0xAB])

    def test_pack_odd_count(self):
        packed = pack_codes([0xFFF])
        assert packed == bytes([0xFF, 0x0F])

    def test_roundtrip(self):
        codes = [0, 1, 0xFFF, 0x800, 0x7FF, 123, 4095, 2048]
        assert unpack_codes(pack_codes(codes), len(codes)) == codes

    def test_roundtrip_odd(self):
        codes = [10, 20, 30]
        assert unpack_codes(pack_codes(codes), 3) == codes

    def test_twelve_codes_fit_18_bytes(self):
        codes = list(range(12))
        assert len(pack_codes(codes)) == 18


class TestStreamingApp:
    def test_fixed_payload_every_cycle(self):
        scenario, result = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                     measure_s=3.0)
        node = result.node("node1")
        # 3 s at 30 ms -> 100 cycles, one fixed-size packet each.
        assert node.traffic.data_tx == pytest.approx(100, abs=2)

    def test_samples_arrive_at_base_station(self):
        scenario, result = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                     measure_s=3.0)
        frames = scenario.base_station.frames_from("node1")
        assert frames
        for frame in frames[:10]:
            content = frame.payload
            assert content["kind"] == "ecg_stream"
            codes = content["codes"]
            assert len(codes) <= codes_per_payload(18)
            assert unpack_codes(content["packed"],
                                len(codes)) == list(codes)

    def test_sampling_rate_respected(self):
        scenario, _ = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                sampling_hz=205.0, measure_s=3.0)
        app = scenario.nodes[0].app
        # Sampling ran through warm-up too; rate check via counter and
        # elapsed simulated time.
        from repro.sim.simtime import to_seconds
        elapsed = to_seconds(scenario.sim.now)
        assert app.samples_taken \
            == pytest.approx(205.0 * elapsed, rel=0.02)

    def test_derived_sampling_fills_payload(self):
        """With sampling_hz=None the rate is set so 12 codes arrive per
        cycle (two channels)."""
        scenario, _ = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                sampling_hz=None, measure_s=3.0)
        app = scenario.nodes[0].app
        assert app.sampling_hz == pytest.approx(6 / 0.030)
        # Backlog must stay bounded: production == consumption.
        assert app.buffered_codes <= 2 * codes_per_payload(18)
        assert app.codes_dropped == 0

    def test_backlog_drops_oldest_when_oversampled(self):
        # 400 Hz x 2 ch at a 30 ms cycle produces 24 codes/cycle but
        # only 12 can be shipped: the bounded buffer must drop.
        scenario, _ = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                sampling_hz=400.0, measure_s=3.0)
        app = scenario.nodes[0].app
        assert app.codes_dropped > 0
        assert app.buffered_codes <= 8 * codes_per_payload(18)


class TestRpeakApp:
    def test_beats_detected_and_reported(self):
        scenario, result = run_quick(app="rpeak", cycle_ms=120.0,
                                     measure_s=10.0, heart_rate_bpm=75.0)
        node = result.node("node1")
        app = scenario.nodes[0].app
        # 75 bpm x 2 channels -> ~2.5 detections/s.
        assert app.beats_detected > 0
        assert node.traffic.data_tx > 0

    def test_beat_packets_reach_base_station(self):
        scenario, _ = run_quick(app="rpeak", cycle_ms=120.0,
                                measure_s=10.0)
        frames = scenario.base_station.frames_from("node1")
        assert frames
        for frame in frames:
            assert frame.payload["kind"] == "beat"
            assert frame.payload["lag_samples"] > 0
            assert frame.payload["channel"] in (0, 1)

    def test_beat_rate_tracks_heart_rate(self):
        scenario, _ = run_quick(app="rpeak", cycle_ms=60.0,
                                measure_s=20.0, heart_rate_bpm=75.0,
                                num_nodes=1)
        frames = scenario.base_station.frames_from("node1")
        # Two channels x 75 bpm over the full run (warm-up included in
        # detection but only measured-window frames are logged):
        # ~2.5 packets/s in steady state.
        per_second = len(frames) / 20.0
        assert per_second == pytest.approx(2.5, rel=0.15)

    def test_idle_cycles_send_nothing(self):
        scenario, result = run_quick(app="rpeak", cycle_ms=30.0,
                                     measure_s=10.0)
        node = result.node("node1")
        cycles = 10.0 / 0.030
        # Far fewer packets than cycles: most slots stay silent.
        assert node.traffic.data_tx < 0.2 * cycles

    def test_rpeak_cheaper_than_streaming(self):
        """The headline claim: preprocessing on the node saves energy."""
        _, streaming = run_quick(app="ecg_streaming", cycle_ms=30.0,
                                 sampling_hz=205.0, measure_s=5.0)
        _, rpeak = run_quick(app="rpeak", cycle_ms=120.0, measure_s=5.0)
        assert rpeak.node("node1").total_mj \
            < 0.5 * streaming.node("node1").total_mj

    def test_pending_queue_bounded(self):
        scenario, _ = run_quick(app="rpeak", cycle_ms=120.0,
                                measure_s=5.0)
        app = scenario.nodes[0].app
        assert app.pending_reports <= 16
