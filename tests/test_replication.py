"""Tests for the seed-replication statistics module."""

import pytest

from repro.analysis.replication import (
    Summary,
    default_metrics,
    node_metric,
    replicate,
    traffic_metric,
)
from repro.net.scenario import BanScenarioConfig
from repro.phy.lossmodels import UniformLoss


def config_for(**kw):
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=2,
                    cycle_ms=30.0, sampling_hz=205.0, measure_s=2.0)
    defaults.update(kw)
    return BanScenarioConfig(**defaults)


class TestSummary:
    def test_statistics(self):
        summary = Summary("x", (1.0, 2.0, 3.0, 4.0))
        assert summary.n == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.stddev == pytest.approx(1.29099, rel=1e-4)
        assert summary.stderr == pytest.approx(0.645497, rel=1e-4)
        assert summary.ci95() == pytest.approx(1.96 * 0.645497, rel=1e-4)
        assert summary.minimum == 1.0 and summary.maximum == 4.0

    def test_single_sample_degenerate(self):
        summary = Summary("x", (5.0,))
        assert summary.stddev == 0.0
        assert summary.ci95() == 0.0

    def test_render(self):
        text = Summary("radio_mj", (1.0, 2.0)).render()
        assert "radio_mj" in text and "n=2" in text and "±" in text


class TestReplicate:
    def test_deterministic_scenario_zero_variance(self):
        """Without stochastic elements, every seed gives the same
        energy (the RNG streams exist but are never drawn)."""
        summaries = replicate(config_for(), seeds=(1, 2, 3),
                              metrics=default_metrics())
        # Samples are bit-identical; the mean may differ by one ulp.
        assert summaries["radio_mj"].stddev == pytest.approx(0.0,
                                                             abs=1e-9)
        assert summaries["mcu_mj"].stddev == pytest.approx(0.0, abs=1e-9)
        assert len(set(summaries["radio_mj"].samples)) == 1

    def test_lossy_scenario_varies_by_seed(self):
        config = config_for(loss_model=UniformLoss(0.2), measure_s=3.0)
        summaries = replicate(config, seeds=tuple(range(5)),
                              metrics=default_metrics())
        assert summaries["corrupted"].stddev > 0.0
        assert summaries["corrupted"].mean > 0.0
        # Energy varies too (missed beacons extend windows).
        assert summaries["radio_mj"].maximum \
            >= summaries["radio_mj"].minimum

    def test_custom_metric(self):
        summaries = replicate(
            config_for(), seeds=(1,),
            metrics={"bs_overheard": lambda result:
                     float(result.base_station.traffic.overheard)})
        assert "bs_overheard" in summaries

    def test_metric_builders(self):
        config = config_for()
        from repro.net.scenario import BanScenario
        result = BanScenario(config).run()
        assert node_metric("node1", "radio_mj")(result) \
            == result.node("node1").radio_mj
        assert traffic_metric("node1", "data_tx")(result) \
            == result.node("node1").traffic.data_tx

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(config_for(), seeds=(), metrics=default_metrics())
        with pytest.raises(ValueError):
            replicate(config_for(), seeds=(1,), metrics={})
