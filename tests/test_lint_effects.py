"""Tests for the interprocedural lint layer (PR 9).

Covers the call graph (receiver typing, inheritance dispatch, callback
bindings, hook indirection), the effect-inference pass and every OBS/FPC
rule in both directions, the ``# effect: pure`` pin, the on-disk
seeded-bug fixtures, the hook audit consumed by
``tools/determinism_check.py --static-obs``, and lint incrementality
(content-hash cache + ``--changed-only``).
"""

import json
import pathlib
import textwrap

import pytest

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.cache import CACHE_SCHEMA, LintCache, source_digest
from repro.lint.callgraph import build_call_graph
from repro.lint.cli import main as lint_main
from repro.lint.effects import (
    EFFECTS,
    FORBIDDEN_IN_HOOKS,
    analyze_effects,
    audit_hooks,
)
from repro.lint.engine import _collect_context
from repro.lint.fingerprint import analyze_fingerprint, field_type_names

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"


def fired(source, module_path="mac/m.py", config=None):
    """Unsuppressed rule codes for a snippet in simulation code."""
    findings = lint_source(textwrap.dedent(source), "<fixture>",
                           config or LintConfig(),
                           module_path=module_path)
    return [f.rule for f in findings if not f.suppressed]


def contexts_of(*sources, module_path="mac/m%d.py"):
    """FileContexts for snippets (for direct graph/pass tests)."""
    config = LintConfig()
    out = []
    for index, source in enumerate(sources):
        ctx, parse_findings = _collect_context(
            textwrap.dedent(source), f"<fixture-{index}>", config,
            module_path=module_path % index)
        assert ctx is not None and not parse_findings
        out.append(ctx)
    return out


# A guarded hook body that schedules through the kernel primitive.
IMPURE_GUARD = """
    class Simulator:
        def at(self, when, callback):
            pass

    class Mac:
        def __init__(self, sim):
            self._sim = sim
            self.spans = None

        def _kick(self):
            self._sim.at(1, self._kick)

        def send(self):
            if self.spans is not None:
                self._kick()
"""

PURE_GUARD = """
    class Mac:
        def __init__(self):
            self.spans = None
            self.sent = 0

        def send(self):
            self.sent += 1
            if self.spans is not None:
                total = self.sent + 1
                print(total)
"""


# ----------------------------------------------------------------------
# Call graph: resolution, inheritance, callbacks, indirection
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_typed_receiver_resolves_method(self):
        (ctx,) = contexts_of(IMPURE_GUARD)
        graph = build_call_graph([ctx])
        edges = graph.edges()
        assert ("mac/m0.py::Mac.send", "mac/m0.py::Mac._kick") in edges
        assert ("mac/m0.py::Mac._kick", "mac/m0.py::Simulator.at") in edges

    def test_inherited_method_resolves_through_base(self):
        (ctx,) = contexts_of("""
            class Base:
                def helper(self):
                    pass

            class Child(Base):
                def run(self):
                    self.helper()
        """)
        graph = build_call_graph([ctx])
        assert ("mac/m0.py::Child.run", "mac/m0.py::Base.helper") \
            in graph.edges()

    def test_subclass_override_fans_out(self):
        (ctx,) = contexts_of("""
            class Radio:
                def start(self):
                    pass

            class CC2420(Radio):
                def start(self):
                    pass

            class Node:
                def __init__(self, radio: Radio):
                    self._radio = radio

                def boot(self):
                    self._radio.start()
        """)
        graph = build_call_graph([ctx])
        edges = graph.edges()
        assert ("mac/m0.py::Node.boot", "mac/m0.py::Radio.start") in edges
        assert ("mac/m0.py::Node.boot", "mac/m0.py::CC2420.start") in edges

    def test_callback_binding_resolves_indirect_call(self):
        (ctx,) = contexts_of("""
            class Timer:
                def __init__(self):
                    self.on_fire = None

                def fire(self):
                    self.on_fire()

            class Mac:
                def __init__(self, timer: Timer):
                    timer.on_fire = self._on_timer

                def _on_timer(self):
                    pass
        """)
        graph = build_call_graph([ctx])
        assert "mac/m0.py::Mac._on_timer" \
            in graph.callback_bindings.get("on_fire", set())
        assert ("mac/m0.py::Timer.fire", "mac/m0.py::Mac._on_timer") \
            in graph.edges()

    def test_cross_file_resolution(self):
        kernel, user = contexts_of(
            """
            class Ledger:
                def transition(self, state, tick):
                    pass
            """,
            """
            class Driver:
                def __init__(self, ledger: Ledger):
                    self._ledger = ledger

                def go(self):
                    self._ledger.transition("tx", 0)
            """)
        graph = build_call_graph([kernel, user])
        assert ("mac/m1.py::Driver.go", "mac/m0.py::Ledger.transition") \
            in graph.edges()

    def test_summary_shape(self):
        (ctx,) = contexts_of(IMPURE_GUARD)
        summary = build_call_graph([ctx]).to_summary()
        for key in ("functions", "classes", "call_sites",
                    "resolved_call_sites", "edges"):
            assert key in summary
        assert summary["functions"] >= 4


# ----------------------------------------------------------------------
# Effect inference
# ----------------------------------------------------------------------
class TestEffectInference:
    def effects_table(self, source):
        (ctx,) = contexts_of(source)
        _, extras = analyze_effects([ctx], LintConfig())
        return extras["effects"]["functions"]

    def test_kernel_primitive_seeds_propagate(self):
        table = self.effects_table(IMPURE_GUARD)
        assert "schedules-event" in table["mac/m0.py::Simulator.at"]
        assert "schedules-event" in table["mac/m0.py::Mac._kick"]
        assert "schedules-event" in table["mac/m0.py::Mac.send"]

    def test_rng_draw_detected(self):
        table = self.effects_table("""
            class Backoff:
                def __init__(self, rng):
                    self._rng = rng

                def pick(self):
                    return self._rng.randrange(8)
        """)
        assert "draws-rng" in table["mac/m0.py::Backoff.pick"]

    def test_fresh_local_mutation_is_pure(self):
        table = self.effects_table("""
            class Summary:
                def collect(self):
                    out = []
                    out.append(1)
                    report = {}
                    report["a"] = 2
                    return out, report
        """)
        assert "mac/m0.py::Summary.collect" not in table

    def test_lattice_and_forbidden_set(self):
        assert "io" in EFFECTS
        assert "io" not in FORBIDDEN_IN_HOOKS
        assert set(FORBIDDEN_IN_HOOKS) < set(EFFECTS)

    def test_pure_pin_suppresses_effect(self):
        table = self.effects_table("""
            class Mcu:
                def __init__(self):
                    self._memo = {}

                # effect: pure
                def ticks(self, cycles):
                    self._memo[cycles] = cycles * 2
                    return self._memo[cycles]
        """)
        assert "mac/m0.py::Mcu.ticks" not in table


# ----------------------------------------------------------------------
# OBS001/OBS002/OBS003: hook purity, both directions
# ----------------------------------------------------------------------
class TestObsRules:
    def test_obs002_guarded_call_reaching_scheduler_fires(self):
        assert "OBS002" in fired(IMPURE_GUARD)

    def test_obs002_message_carries_witness_path(self):
        findings = lint_source(textwrap.dedent(IMPURE_GUARD),
                               "<fixture>", LintConfig(),
                               module_path="mac/m.py")
        (finding,) = [f for f in findings if f.rule == "OBS002"]
        assert "Mac._kick" in finding.message
        assert "Simulator.at" in finding.message

    def test_pure_guard_body_is_clean(self):
        assert fired(PURE_GUARD) == []

    def test_obs001_direct_mutation_in_guard_fires(self):
        assert "OBS001" in fired("""
            class Mac:
                def __init__(self):
                    self.spans = None
                    self._queue = []

                def send(self):
                    if self.spans is not None:
                        self._queue.pop()
        """)

    def test_obs001_direct_schedule_in_guard_fires(self):
        codes = fired("""
            class Mac:
                def __init__(self, sim):
                    self._sim = sim
                    self.spans = None

                def send(self):
                    if self.spans is not None:
                        self._sim.at(3, self.send)
        """)
        assert "OBS001" in codes or "OBS002" in codes

    def test_trace_attr_guard_also_audited(self):
        assert "OBS001" in fired("""
            class Mac:
                def __init__(self):
                    self._trace = None
                    self._queue = []

                def send(self):
                    if self._trace is not None:
                        self._queue.pop()
        """)

    def test_guard_inside_obs_module_exempt(self):
        source = """
            class Tracer:
                def __init__(self):
                    self.spans = None
                    self._events = []

                def note(self):
                    if self.spans is not None:
                        self._events.pop()
        """
        assert "OBS001" in fired(source, module_path="mac/t.py")
        assert fired(source, module_path="obs/t.py") == []

    def test_obs003_impure_metrics_hook_fires(self):
        assert "OBS003" in fired("""
            class Simulator:
                def at(self, when, callback):
                    pass

            class Mac:
                def __init__(self, sim):
                    self._sim = sim

                def observe_metrics(self, registry):
                    self._sim.at(1, self.observe_metrics)
        """)

    def test_obs003_pure_metrics_hook_clean(self):
        assert fired("""
            class Mac:
                def __init__(self):
                    self.sent = 0

                def observe_metrics(self, registry):
                    registry.counter("mac.sent").set(self.sent)
        """) == []

    def test_obs002_pin_accepted_as_pure(self):
        assert fired("""
            class Mcu:
                def __init__(self):
                    self._memo = {}

                # effect: pure
                def ticks(self, cycles):
                    self._memo[cycles] = cycles * 2
                    return self._memo[cycles]

            class Mac:
                def __init__(self, mcu: Mcu):
                    self._mcu = mcu
                    self.spans = None

                def send(self):
                    if self.spans is not None:
                        self._mcu.ticks(40)
        """) == []


# ----------------------------------------------------------------------
# FPC001/FPC002: fingerprint coverage, both directions
# ----------------------------------------------------------------------
FPC_MODULE = "net/m.py"


class TestFpcRules:
    def test_fpc001_non_field_attr_read_fires(self):
        assert "FPC001" in fired("""
            from dataclasses import dataclass

            @dataclass
            class BanScenarioConfig:
                seed: int = 0

                def __post_init__(self):
                    self.debug_gain = 1.0

            def run(config: BanScenarioConfig):
                return config.seed * config.debug_gain
        """, module_path=FPC_MODULE)

    def test_fpc001_field_read_clean(self):
        assert fired("""
            from dataclasses import dataclass

            @dataclass
            class BanScenarioConfig:
                seed: int = 0

            def run(config: BanScenarioConfig):
                return config.seed
        """, module_path=FPC_MODULE) == []

    def test_fpc001_method_access_clean(self):
        assert fired("""
            from dataclasses import dataclass

            @dataclass
            class BanScenarioConfig:
                seed: int = 0

                def derived(self):
                    return self.seed + 1

            def run(config: BanScenarioConfig):
                return config.derived()
        """, module_path=FPC_MODULE) == []

    def test_fpc002_unfingerprinted_config_read_fires(self):
        assert "FPC002" in fired("""
            from dataclasses import dataclass

            @dataclass
            class TuningConfig:
                gain: float = 1.0

            def run(tuning: TuningConfig):
                return tuning.gain
        """, module_path=FPC_MODULE)

    def test_fpc002_constructed_in_sim_code_exempt(self):
        assert fired("""
            from dataclasses import dataclass

            @dataclass
            class TuningConfig:
                gain: float = 1.0

            def run():
                tuning = TuningConfig(gain=2.0)
                return tuning.gain
        """, module_path=FPC_MODULE) == []

    def test_fpc002_closure_member_exempt(self):
        assert fired("""
            from dataclasses import dataclass

            @dataclass
            class TuningConfig:
                gain: float = 1.0

            @dataclass
            class BanScenarioConfig:
                tuning: TuningConfig = None

            def run(config: BanScenarioConfig):
                return config.tuning.gain
        """, module_path=FPC_MODULE) == []

    def test_fpc_silent_outside_salted_packages(self):
        assert fired("""
            from dataclasses import dataclass

            @dataclass
            class TuningConfig:
                gain: float = 1.0

            def run(tuning: TuningConfig):
                return tuning.gain
        """, module_path="analysis/m.py") == []

    def test_field_type_names_unwraps_containers(self):
        import ast
        ann = ast.parse("Optional[Sequence[NodeSpec]]",
                        mode="eval").body
        assert "NodeSpec" in field_type_names(ann)
        callable_ann = ast.parse("Callable[[int], float]",
                                 mode="eval").body
        assert field_type_names(callable_ann) == ()

    def test_closure_extras_published(self):
        (ctx,) = contexts_of("""
            from dataclasses import dataclass

            @dataclass
            class SubConfig:
                depth: int = 1

            @dataclass
            class BanScenarioConfig:
                sub: SubConfig = None
        """, module_path="net/m%d.py")
        _, extras = analyze_fingerprint([ctx], LintConfig())
        closure = extras["fingerprint"]["closure"]
        assert "BanScenarioConfig" in closure
        assert "SubConfig" in closure


# ----------------------------------------------------------------------
# On-disk seeded-bug fixtures
# ----------------------------------------------------------------------
class TestSeededFixtures:
    def test_impure_span_hook_fixture_caught(self):
        source = (FIXTURES / "impure_span_hook.py").read_text()
        findings = lint_source(source, "impure_span_hook.py",
                               LintConfig(),
                               module_path="mac/impure_span_hook.py")
        codes = sorted(f.rule for f in findings if not f.suppressed)
        assert "OBS001" in codes and "OBS002" in codes
        lines = {f.rule: f.line for f in findings}
        assert lines["OBS002"] < lines["OBS001"]  # at() then pop()

    def test_unfingerprinted_field_fixture_caught(self):
        source = (FIXTURES / "unfingerprinted_field.py").read_text()
        findings = lint_source(
            source, "unfingerprinted_field.py", LintConfig(),
            module_path="net/unfingerprinted_field.py")
        codes = sorted(f.rule for f in findings if not f.suppressed)
        assert codes == ["FPC001", "FPC002"]


# ----------------------------------------------------------------------
# Hook audit (tools/determinism_check.py --static-obs)
# ----------------------------------------------------------------------
class TestHookAudit:
    def test_audit_lists_guard_classes_and_hooks(self):
        ctxs = contexts_of(IMPURE_GUARD, """
            class Injector:
                def observe_metrics(self, registry):
                    pass
        """)
        audit, findings = audit_hooks(ctxs, LintConfig())
        assert audit.guard_classes() == {"Mac"}
        assert any(q.endswith("Injector.observe_metrics")
                   for q in audit.hook_methods)
        assert any(f.rule == "OBS002" for f in findings)

    def test_audit_over_real_tree_matches_runtime_surface(self):
        report = lint_paths([ROOT / "src"], LintConfig())
        hooks = report.extras["effects"]["hooks"]
        guarded = {g["attr"] for g in hooks["span_guards"]}
        assert "spans" in guarded
        assert hooks["hook_methods"]  # observe_metrics providers exist


# ----------------------------------------------------------------------
# Incrementality: content-hash cache + --changed-only
# ----------------------------------------------------------------------
class TestIncrementality:
    def make_tree(self, tmp_path):
        src = tmp_path / "proj"
        src.mkdir()
        (src / "a.py").write_text("A_S = 1.0\n")
        (src / "b.py").write_text("def twice(x):\n    return x * 2\n")
        return src

    def test_cold_then_warm_hits(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        cold = LintCache(tmp_path / "cache", config)
        first = lint_paths([src], config, cache=cold)
        assert cold.stats() == {"file_hits": 0, "file_misses": 2,
                                "tree_hit": False}
        warm = LintCache(tmp_path / "cache", config)
        second = lint_paths([src], config, cache=warm)
        assert warm.stats() == {"file_hits": 2, "file_misses": 0,
                                "tree_hit": True}
        strip = lambda r: [(f.rule, f.path, f.line, f.message)
                           for f in r.findings]
        assert strip(first) == strip(second)

    def test_edit_invalidates_file_and_tree(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        lint_paths([src], config,
                   cache=LintCache(tmp_path / "cache", config))
        (src / "a.py").write_text("A_S = 2.0\n")
        cache = LintCache(tmp_path / "cache", config)
        lint_paths([src], config, cache=cache)
        assert cache.stats() == {"file_hits": 1, "file_misses": 1,
                                 "tree_hit": False}

    def test_changed_only_filters_to_edited_files(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        lint_paths([src], config,
                   cache=LintCache(tmp_path / "cache", config))
        # Unchanged tree: nothing to report.
        report = lint_paths([src], config,
                            cache=LintCache(tmp_path / "cache", config),
                            changed_only=True)
        assert report.findings == []
        # Introduce a violation in one file: only it is reported.
        (src / "a.py").write_text("import random\nrandom.random()\n")
        report = lint_paths([src], config,
                            cache=LintCache(tmp_path / "cache", config),
                            changed_only=True)
        assert report.findings
        assert {f.path for f in report.findings} \
            == {str(src / "a.py")}

    def test_config_change_invalidates_salt(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        lint_paths([src], config,
                   cache=LintCache(tmp_path / "cache", config))
        other = LintConfig(select=("DET001",))
        cache = LintCache(tmp_path / "cache", other)
        lint_paths([src], other, cache=cache)
        assert cache.stats()["file_misses"] == 2

    def test_corrupt_cache_file_starts_cold(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        cachedir = tmp_path / "cache"
        cachedir.mkdir()
        (cachedir / "lint-cache.json").write_text("{not json")
        cache = LintCache(cachedir, config)
        lint_paths([src], config, cache=cache)
        assert cache.stats()["file_misses"] == 2
        # And the save repaired it.
        document = json.loads(
            (cachedir / "lint-cache.json").read_text())
        assert document["schema"] == CACHE_SCHEMA

    def test_source_digest_is_content_hash(self):
        assert source_digest("x = 1\n") == source_digest("x = 1\n")
        assert source_digest("x = 1\n") != source_digest("x = 2\n")

    def test_cli_cache_and_changed_only(self, tmp_path, capsys):
        src = self.make_tree(tmp_path)
        cachedir = str(tmp_path / "cache")
        assert lint_main([str(src), "--cache-dir", cachedir]) == 0
        assert lint_main([str(src), "--cache-dir", cachedir,
                          "--changed-only"]) == 0
        capsys.readouterr()
        assert lint_main([str(src), "--changed-only"]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_cache_stats_in_json_report(self, tmp_path):
        src = self.make_tree(tmp_path)
        config = LintConfig()
        cache = LintCache(tmp_path / "cache", config)
        report = lint_paths([src], config, cache=cache)
        assert report.extras["cache"]["file_misses"] == 2
        assert "timings" in report.extras


# ----------------------------------------------------------------------
# Report schema v3 extras
# ----------------------------------------------------------------------
class TestReportExtras:
    def test_tree_run_publishes_v3_analyses(self, tmp_path):
        src = tmp_path / "proj"
        src.mkdir()
        (src / "m.py").write_text(textwrap.dedent(IMPURE_GUARD))
        report = lint_paths([src], LintConfig())
        assert "call_graph" in report.extras
        effects = report.extras["effects"]
        assert effects["lattice"] == list(EFFECTS)
        assert effects["forbidden_in_hooks"] \
            == sorted(FORBIDDEN_IN_HOOKS)
        assert "fingerprint" in report.extras
        assert "timings" in report.extras
