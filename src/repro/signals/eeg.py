"""Synthetic electroencephalogram generator.

The platform monitors "up to 24 channels EEG" (Section 3); for energy
purposes an EEG channel is just another sampled waveform, but examples
and tests benefit from a physiologically plausible one.  The generator
sums deterministic sinusoids drawn from the clinical bands (delta,
theta, alpha, beta) with seed-derived frequencies, phases and
amplitudes — a band-limited noise process that is still a pure function
of time (reproducible, order-independent).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Band:
    """One EEG band: frequency range [hz_low, hz_high] and RMS weight."""

    name: str
    hz_low: float
    hz_high: float
    rms_uv: float


#: Typical resting-adult band mix (amplitudes in microvolts RMS).
DEFAULT_BANDS: Tuple[Band, ...] = (
    Band("delta", 0.5, 4.0, 10.0),
    Band("theta", 4.0, 8.0, 8.0),
    Band("alpha", 8.0, 13.0, 20.0),
    Band("beta", 13.0, 30.0, 6.0),
)


class SyntheticEeg:
    """Band-limited deterministic EEG-like signal.

    Args:
        seed: derives every random frequency/phase/amplitude; the same
            seed always yields the same waveform.
        bands: band mix; defaults to a resting-adult spectrum.
        tones_per_band: sinusoids per band (more = smoother spectrum).
    """

    def __init__(self, seed: int = 0,
                 bands: Tuple[Band, ...] = DEFAULT_BANDS,
                 tones_per_band: int = 8) -> None:
        if tones_per_band < 1:
            raise ValueError(
                f"tones_per_band must be >= 1: {tones_per_band}")
        self.seed = seed
        self.bands = bands
        rng = random.Random(seed)
        self._tones: List[Tuple[float, float, float]] = []
        for band in bands:
            # Each tone carries an equal share of the band's RMS power:
            # amplitude = rms * sqrt(2 / n).
            amplitude = band.rms_uv * math.sqrt(2.0 / tones_per_band)
            for _ in range(tones_per_band):
                frequency = rng.uniform(band.hz_low, band.hz_high)
                phase = rng.uniform(0.0, 2.0 * math.pi)
                self._tones.append((frequency, phase, amplitude))
        # Angular frequency per tone, precomputed with the same float
        # ops value_at used inline ((2.0 * pi) * f), so samples are
        # bit-identical.
        self._fast_tones: Tuple[Tuple[float, float, float], ...] = tuple(
            (2.0 * math.pi * f, p, a) for f, p, a in self._tones)

    def value_at(self, t_seconds: float) -> float:
        """Signal value in microvolts at ``t_seconds``."""
        sin = math.sin
        return sum(a * sin(w * t_seconds + p)
                   for w, p, a in self._fast_tones)

    def band_rms(self) -> Dict[str, float]:
        """Analytic per-band RMS in microvolts (exact for pure tones)."""
        totals: Dict[str, float] = {}
        for band in self.bands:
            acc = 0.0
            for frequency, _, amplitude in self._tones:
                if band.hz_low <= frequency <= band.hz_high:
                    acc += amplitude ** 2 / 2.0
            totals[band.name] = math.sqrt(acc)
        return totals


__all__ = ["Band", "DEFAULT_BANDS", "SyntheticEeg"]
