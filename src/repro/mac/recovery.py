"""Degradation/recovery policy knobs for the node-side TDMA MACs.

The WBAN MAC surveys (Rahim et al.; Ullah et al.) identify recovery
from missed beacons and slot loss as the dominant reliability/energy
trade-off in TDMA BANs.  :class:`RecoveryConfig` packages the knobs of
the reproduction's recovery behaviour:

* **Guard-window widening** — after each consecutive missed beacon the
  free-running node multiplies its guard lead by ``widen_factor``
  (capped at ``max_widen_factor``), trading RX energy for a better
  chance of catching the drifting beacon.
* **Bounded reacquisition scan** — once demoted to acquisition after
  ``max_missed_beacons`` misses, the node duty-cycles the receiver
  (``scan_on_cycles`` listening, ``scan_off_cycles`` asleep) instead of
  burning continuous RX forever against a base station that may be gone.
* **Slot re-request backoff** — in dynamic TDMA a joining node whose
  slot requests keep going unanswered backs off exponentially (skipping
  ``2^(n-1) - 1`` cycles after the n-th attempt, capped at
  ``ssr_backoff_cap_cycles``) so a congested ES window is not hammered
  every cycle.
* **CSMA backoff-cap widening** — a CSMA/CA node whose clear-channel
  assessments come back busy ``csma_busy_streak`` times in a row (the
  signature of a locked-up receive chain or a saturated channel) raises
  its maximum backoff exponent by ``csma_be_boost``, spreading retries
  over a wider window until an idle CCA clears the streak.

All of it is **opt-in**: every MAC built without a ``RecoveryConfig``
behaves exactly as before (ledger byte-identical), which is what keeps
the no-fault golden values valid.  The dataclass is frozen and
value-typed so it participates in the result-cache fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RecoveryConfig:
    """Opt-in MAC degradation/recovery behaviour.

    Attributes:
        widen_factor: per-consecutive-miss multiplier on the guard
            lead (1.0 disables widening).
        max_widen_factor: cap on the accumulated widening multiplier.
        scan_on_cycles: cycles of continuous listening per
            reacquisition-scan burst.
        scan_off_cycles: cycles of radio-off pause between scan bursts
            (0 disables the duty cycle: continuous reacquisition RX,
            the pre-recovery behaviour).
        ssr_backoff_cap_cycles: cap, in cycles, on the exponential
            slot-re-request backoff (0 disables backoff).
        csma_busy_streak: consecutive busy CCAs before a CSMA node
            widens its backoff-exponent cap (0 disables widening).
        csma_be_boost: how much the maximum backoff exponent grows
            while the busy streak persists.
    """

    widen_factor: float = 1.5
    max_widen_factor: float = 6.0
    scan_on_cycles: float = 2.0
    scan_off_cycles: float = 3.0
    ssr_backoff_cap_cycles: int = 8
    csma_busy_streak: int = 4
    csma_be_boost: int = 2

    def __post_init__(self) -> None:
        if self.widen_factor < 1.0:
            raise ValueError(
                f"widen_factor must be >= 1: {self.widen_factor}")
        if self.max_widen_factor < self.widen_factor:
            raise ValueError(
                "max_widen_factor must be >= widen_factor: "
                f"{self.max_widen_factor} < {self.widen_factor}")
        if self.scan_on_cycles <= 0:
            raise ValueError(
                f"scan_on_cycles must be positive: {self.scan_on_cycles}")
        if self.scan_off_cycles < 0:
            raise ValueError(
                f"scan_off_cycles must be >= 0: {self.scan_off_cycles}")
        if self.ssr_backoff_cap_cycles < 0:
            raise ValueError(
                "ssr_backoff_cap_cycles must be >= 0: "
                f"{self.ssr_backoff_cap_cycles}")
        if self.csma_busy_streak < 0:
            raise ValueError(
                f"csma_busy_streak must be >= 0: {self.csma_busy_streak}")
        if self.csma_be_boost < 0:
            raise ValueError(
                f"csma_be_boost must be >= 0: {self.csma_be_boost}")

    def widened_lead(self, lead: int, consecutive_misses: int) -> int:
        """The guard lead after ``consecutive_misses`` missed beacons."""
        if consecutive_misses <= 0 or self.widen_factor == 1.0:
            return lead
        factor = min(self.widen_factor ** consecutive_misses,
                     self.max_widen_factor)
        return round(lead * factor)

    def ssr_skip_cycles(self, attempts: int) -> int:
        """Cycles to skip after the ``attempts``-th unanswered SSR."""
        if self.ssr_backoff_cap_cycles == 0 or attempts <= 1:
            return 0
        return min(2 ** (attempts - 1) - 1, self.ssr_backoff_cap_cycles)


__all__ = ["RecoveryConfig"]
