"""Battery and lifetime-projection model.

BANs "should work autonomously and avoid maintenance" (Section 1); the
practical output of an energy model is therefore a battery-lifetime
projection.  :class:`Battery` converts the simulator's average-power
figures into runtimes for typical coin/prismatic cells.

The model is deliberately simple — an ideal charge reservoir with a
usable-capacity derating — matching the abstraction level of the paper's
energy model (no rate-dependent Peukert effects, no voltage sag).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Battery:
    """An ideal charge reservoir.

    Attributes:
        capacity_mah: nominal capacity in milliamp-hours.
        voltage_v: nominal terminal voltage.
        usable_fraction: fraction of nominal capacity available before
            the supply drops below the platform's brown-out threshold.
    """

    capacity_mah: float
    voltage_v: float = 2.8
    usable_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError(f"capacity must be positive: {self.capacity_mah}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive: {self.voltage_v}")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError(
                f"usable_fraction must be in (0, 1]: {self.usable_fraction}")

    @property
    def usable_energy_j(self) -> float:
        """Usable energy content in joules."""
        return (self.capacity_mah * 1e-3 * 3600.0
                * self.voltage_v * self.usable_fraction)

    def lifetime_hours(self, average_power_w: float) -> float:
        """Runtime in hours at a constant average power draw."""
        if average_power_w <= 0:
            raise ValueError(
                f"average power must be positive: {average_power_w}")
        return self.usable_energy_j / average_power_w / 3600.0

    def lifetime_days(self, average_power_w: float) -> float:
        """Runtime in days at a constant average power draw."""
        return self.lifetime_hours(average_power_w) / 24.0

    def fraction_used(self, energy_j: float) -> float:
        """Share of usable capacity consumed by ``energy_j`` joules."""
        if energy_j < 0:
            raise ValueError(f"energy must be non-negative: {energy_j}")
        return energy_j / self.usable_energy_j


#: A CR2477 lithium coin cell, a typical wearable-node supply.
CR2477 = Battery(capacity_mah=1000.0, voltage_v=3.0)

#: A small 160 mAh lithium-polymer cell (patch form factor).
LIPO_160 = Battery(capacity_mah=160.0, voltage_v=3.7)


__all__ = ["Battery", "CR2477", "LIPO_160"]
