"""Tests for the flow-sensitive units analysis (UNI001-UNI004) and the
RNG provenance pass (RNG001-RNG002).

Fixture sources are linted through :func:`repro.lint.lint_source`, which
runs the same tree analyses the CLI runs, so every assertion here covers
the end-to-end path: parse -> seed units -> propagate -> report.
"""

import json
import pathlib
import textwrap

import pytest

from repro.lint import LintConfig, lint_paths, lint_source, load_config
from repro.lint.report import report_to_dict
from repro.lint.units import (DIMENSIONLESS, Unit, UnitParseError,
                              div_units, format_unit, make_unit,
                              mul_units, parse_unit, pow_unit,
                              unit_from_identifier)

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"


def fired(source, module_path="hw/model.py", config=None):
    """Unsuppressed rule codes for a fixture, sorted."""
    findings = lint_source(textwrap.dedent(source), "<fixture>",
                           config or LintConfig(),
                           module_path=module_path)
    return sorted(f.rule for f in findings if not f.suppressed)


class TestUnitAlgebra:
    def test_joule_is_derived(self):
        assert parse_unit("j") == make_unit({"s": 1, "a": 1, "v": 1})
        assert parse_unit("j") == mul_units(
            mul_units(parse_unit("s"), parse_unit("a")),
            parse_unit("v"))

    def test_decade_scales(self):
        assert parse_unit("mj").scale == 3
        assert parse_unit("us").scale == 6
        assert parse_unit("mj").dims == parse_unit("j").dims

    def test_compound_expressions(self):
        assert parse_unit("cyc/s") == make_unit({"cyc": 1, "s": -1})
        assert parse_unit("bit*s^-1") == parse_unit("bps")
        assert parse_unit("tick/ms") == make_unit({"tick": 1, "s": -1},
                                                  -3)

    def test_dimensionless_forms(self):
        assert parse_unit("1") == DIMENSIONLESS
        assert parse_unit("ratio") == DIMENSIONLESS
        assert parse_unit("pct").dims == ()
        assert parse_unit("pct").scale == 2

    def test_parse_errors(self):
        for bad in ("florps", "j*", "j^x", "", "j//s"):
            with pytest.raises(UnitParseError):
                parse_unit(bad)

    def test_div_and_pow(self):
        joule = parse_unit("j")
        watt = div_units(joule, parse_unit("s"))
        assert watt == make_unit({"a": 1, "v": 1})
        assert pow_unit(parse_unit("ma"), 2) == make_unit({"a": 2}, 6)

    def test_format_named_units(self):
        assert format_unit(parse_unit("j")) == "J"
        assert format_unit(parse_unit("mj")) == "mJ"
        assert format_unit(parse_unit("a*v")) == "W"
        assert format_unit(make_unit({"s": 2})) == "s^2"
        assert "x10^3" in format_unit(make_unit({"tick": 1}, 3))

    def test_none_scale_poisons_arithmetic(self):
        b = parse_unit("bytes")
        assert b.scale is None
        assert mul_units(b, parse_unit("ms")).scale is None

    def test_suffix_seeding(self):
        assert unit_from_identifier("radio_tx_a") == parse_unit("a")
        assert unit_from_identifier("energy_mj") == parse_unit("mj")
        assert unit_from_identifier("_slot_ticks") == parse_unit("tick")
        # Bare single tokens only seed through the EXACT_NAMES list.
        assert unit_from_identifier("ticks") == parse_unit("tick")
        assert unit_from_identifier("energy") is None
        # "_cycles" counts TDMA cycles on this tree, not MCU cycles.
        assert unit_from_identifier("warmup_cycles") is None

    def test_unit_hashable_for_env_maps(self):
        assert len({parse_unit("j"), parse_unit("s*a*v"),
                    parse_unit("mj")}) == 2


class TestUni001Mixing:
    def test_dimension_mismatch_in_addition(self):
        assert fired("""
            def f(active_s, tx_a):
                return active_s + tx_a
            """) == ["UNI001"]

    def test_decade_mismatch_in_addition(self):
        assert fired("""
            def f(radio_j, mcu_energy_mj):
                return radio_j + mcu_energy_mj
            """) == ["UNI001"]

    def test_comparison_mismatch(self):
        assert fired("""
            def f(deadline_ticks, timeout_ms):
                return deadline_ticks > timeout_ms
            """) == ["UNI001"]

    def test_matching_dimensions_are_clean(self):
        assert fired("""
            def f(active_s, sleep_s):
                return active_s + sleep_s
            """) == []

    def test_unknown_side_is_silent(self):
        assert fired("""
            def f(active_s, fudge):
                return active_s + fudge
            """) == []

    def test_known_call_seeds_ticks(self):
        assert fired("""
            from repro.sim.simtime import milliseconds

            def f(delay_ms, period_ticks):
                return milliseconds(delay_ms) + period_ticks
            """) == []
        assert fired("""
            from repro.sim.simtime import to_seconds

            def f(now_ticks, window_s):
                return to_seconds(now_ticks) - window_s
            """) == []

    def test_min_max_require_agreement(self):
        assert fired("""
            def f(a_s, b_s):
                return min(a_s, b_s)
            """) == []
        assert fired("""
            def f(a_s, leak_ma):
                return max(a_s, leak_ma)
            """) == ["UNI001"]

    def test_decade_literal_shifts_scale(self):
        assert fired("""
            def f(event_s, tx_a, supply_v, budget_mj):
                e = event_s * tx_a * supply_v
                e_mj = 1e3 * e
                return e_mj + budget_mj
            """) == []

    def test_non_decade_literal_erases_scale_not_dims(self):
        # 0.7 * J has unknown prefix but is still an energy: adding a
        # time to it must be reported, adding mJ must not.
        assert fired("""
            def f(event_j, active_s):
                derated = 0.7 * event_j
                return derated + active_s
            """) == ["UNI001"]
        assert fired("""
            def f(event_j, budget_mj):
                derated = 0.7 * event_j
                return derated + budget_mj
            """) == []

    def test_branch_disagreement_is_conservative(self):
        assert fired("""
            def f(flag, a_s, b_j):
                if flag:
                    x = a_s
                else:
                    x = b_j
                return x + a_s
            """) == []

    def test_branch_agreement_still_propagates(self):
        assert fired("""
            def f(flag, a_s, b_s, tx_a):
                if flag:
                    x = a_s
                else:
                    x = b_s
                return x + tx_a
            """) == ["UNI001"]

    def test_invalid_annotation_is_uni001(self):
        findings = lint_source("RATE = 3.0  # unit: florps\n",
                               "<fixture>", LintConfig(),
                               module_path="analysis/x.py")
        assert [f.rule for f in findings] == ["UNI001"]
        assert "florps" in findings[0].message


class TestUni002Returns:
    def test_suffix_contract_violation(self):
        assert fired("""
            def report_energy_j(active_s):
                return active_s
            """) == ["UNI002"]

    def test_header_annotation_contract(self):
        assert fired("""
            def drain(active_s, tx_a, supply_v):  # unit: mj
                return active_s * tx_a * supply_v
            """) == ["UNI002"]

    def test_energy_product_satisfies_contract(self):
        assert fired("""
            def tx_energy_j(event_s, tx_a, supply_v):
                return event_s * tx_a * supply_v
            """) == []

    def test_annotation_overrides_inference(self):
        # The assignment annotation re-types the value, so the return
        # agrees with the declared mJ contract.
        assert fired("""
            def scaled_energy_mj(event_j):
                bumped = 1e3 * event_j  # unit: mj
                return bumped
            """) == []


class TestUni003SquaredElectrical:
    def test_current_squared(self):
        assert fired("""
            def f(sleep_ma, leak_ma):
                return sleep_ma * leak_ma
            """) == ["UNI003"]

    def test_voltage_squared(self):
        assert fired("""
            def f(supply_v, ref_v):
                return supply_v * ref_v
            """) == ["UNI003"]

    def test_current_times_voltage_is_power(self):
        assert fired("""
            def f(tx_a, supply_v):
                return tx_a * supply_v
            """) == []


class TestUni004Constants:
    def test_bare_constant_in_calibration_module(self):
        assert fired("LIMIT = 3.3\n",
                     module_path="hw/tables.py") == ["UNI004"]

    def test_suffix_silences(self):
        assert fired("LIMIT_V = 3.3\n",
                     module_path="hw/tables.py") == []

    def test_annotation_silences(self):
        assert fired("LIMIT = 3.3  # unit: v\n",
                     module_path="hw/tables.py") == []

    def test_private_names_exempt(self):
        assert fired("_SCRATCH = 3.3\n",
                     module_path="hw/tables.py") == []

    def test_only_const_modules_checked(self):
        assert fired("LIMIT = 3.3\n",
                     module_path="analysis/foo.py") == []


class TestRngProvenance:
    def test_unseeded_random(self):
        assert fired("""
            import random

            def make():
                return random.Random()
            """) == ["RNG001"]

    def test_system_random_fires_both_layers(self):
        # DET001 flags the construct itself; RNG001 flags the entropy.
        assert fired("""
            import random

            def make():
                return random.SystemRandom()
            """) == ["DET001", "RNG001"]

    def test_literal_seed_is_not_derived(self):
        assert fired("""
            import random

            def make():
                return random.Random(1234)
            """) == ["RNG002"]

    def test_seed_parameter_is_legal(self):
        assert fired("""
            import random

            def make(seed):
                return random.Random(seed)
            """) == []

    def test_arithmetic_on_seed_stays_tainted(self):
        assert fired("""
            import random

            def make(seed):
                derived = seed * 31 + 7
                return random.Random(derived)
            """) == []

    def test_stream_call_is_a_deriving_source(self):
        assert fired("""
            import random

            def make(registry):
                return random.Random(registry.stream("mac"))
            """) == []

    def test_reassignment_drops_taint(self):
        assert fired("""
            import random

            def make(seed):
                s = seed
                s = 4
                return random.Random(s)
            """) == ["RNG002"]

    def test_partial_taint_across_branches_reports(self):
        assert fired("""
            import random

            def make(flag, seed):
                s = 0
                if flag:
                    s = seed
                return random.Random(s)
            """) == ["RNG002"]

    def test_numpy_default_rng_checked(self):
        assert fired("""
            from numpy.random import default_rng

            def make():
                return default_rng()
            """) == ["RNG001"]

    def test_waiver_suppresses_with_reason(self):
        findings = lint_source(
            "import random\n"
            "TABLE_RNG = random.Random(1234)"
            "  # lint: allow(RNG002): frozen table shuffle\n",
            "<fixture>", LintConfig(), module_path="data/x.py")
        assert [(f.rule, f.suppressed) for f in findings] == [
            ("RNG002", True)]


class TestSeededFixtures:
    def lint_fixture(self, name, module_path):
        source = (FIXTURES / name).read_text(encoding="utf-8")
        findings = lint_source(source, str(FIXTURES / name),
                               LintConfig(), module_path=module_path)
        return [f for f in findings if not f.suppressed]

    def test_unit_mixing_fixture(self):
        findings = self.lint_fixture("unit_mixing.py",
                                     "hw/unit_mixing.py")
        assert sorted(f.rule for f in findings) == [
            "UNI001", "UNI002", "UNI003", "UNI004"]
        by_rule = {f.rule: f for f in findings}
        assert by_rule["UNI004"].line == 15      # REFERENCE_BUDGET
        assert by_rule["UNI001"].line == 20      # radio_j + mcu_energy_mj
        assert by_rule["UNI003"].line == 26      # sleep_ma * leak_ma
        assert by_rule["UNI002"].line == 32      # returns seconds

    def test_unseeded_rng_fixture(self):
        findings = self.lint_fixture("unseeded_rng.py",
                                     "mac/unseeded_rng.py")
        assert sorted((f.rule, f.line) for f in findings) == [
            ("DET001", 27),   # SystemRandom is also a global-RNG form
            ("RNG001", 17),   # random.Random() -- no seed
            ("RNG001", 27),   # SystemRandom -- OS entropy
            ("RNG002", 22),   # frame-id counter seed (PR 4 bug shape)
        ]

    def test_stale_waiver_fixture(self):
        findings = self.lint_fixture("stale_waiver.py",
                                     "core/stale_waiver.py")
        assert [(f.rule, f.line) for f in findings] == [("SUP002", 11)]


class TestTreeUnitsClean:
    def test_src_has_no_unit_findings(self):
        config = load_config([ROOT / "pyproject.toml"])
        report = lint_paths([ROOT / "src"], config)
        unit_findings = [f for f in report.findings
                         if f.rule.startswith("UNI")
                         and not f.suppressed]
        assert unit_findings == []

    def test_src_has_no_rng_findings(self):
        config = load_config([ROOT / "pyproject.toml"])
        report = lint_paths([ROOT / "src"], config)
        rng_findings = [f for f in report.findings
                        if f.rule.startswith("RNG")
                        and not f.suppressed]
        assert rng_findings == []


class TestJsonSchemaV4:
    def test_round_trip(self, tmp_path):
        (tmp_path / "repro" / "hw").mkdir(parents=True)
        (tmp_path / "repro" / "hw" / "tables.py").write_text(
            "LIMIT = 3.3\n", encoding="utf-8")
        report = lint_paths([tmp_path], LintConfig())
        document = json.loads(json.dumps(report_to_dict(report)))
        assert document["schema_version"] == 4
        assert "analyses" in document
        assert document["summary"]["stale_waivers"] == 0
        assert [f["rule"] for f in document["findings"]] == ["UNI004"]

    def test_stale_waiver_counted_in_summary(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "def f(total_j, count):\n"
            "    return total_j / max(count, 1)"
            "  # lint: allow(FLT001): zero sentinel\n",
            encoding="utf-8")
        document = report_to_dict(lint_paths([tmp_path], LintConfig()))
        assert document["summary"]["stale_waivers"] == 1
