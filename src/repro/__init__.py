"""repro — OS-based sensor node platform and energy estimation model
for health-care wireless sensor networks.

A from-scratch Python reproduction of Rincón et al., *"OS-Based Sensor
Node Platform and Energy Estimation Model for Health-Care Wireless
Sensor Networks"* (DATE 2008): a TOSSIM-style event-driven simulator of
a TinyOS body-area-network platform (MSP430F149 + nRF2401 + 25-channel
biopotential ASIC) with a validated time-in-state energy model.

Quick start::

    from repro import run_scenario

    result = run_scenario(mac="static", app="ecg_streaming",
                          num_nodes=5, cycle_ms=30.0, measure_s=60.0)
    node = result.node("node1")
    print(f"radio {node.radio_mj:.1f} mJ, MCU {node.mcu_mj:.1f} mJ")

Package map:

* :mod:`repro.sim` — discrete-event kernel (the TOSSIM substrate),
* :mod:`repro.core` — the energy model: ledgers, calibration, losses,
* :mod:`repro.tinyos` — TinyOS scheduler/timers/components,
* :mod:`repro.hw` — MSP430, nRF2401, biopotential ASIC, battery,
* :mod:`repro.phy` — channel, topologies, loss models,
* :mod:`repro.mac` — static & dynamic TDMA, sync policies,
* :mod:`repro.apps` — ECG streaming and Rpeak applications,
* :mod:`repro.signals` — synthetic ECG/EEG,
* :mod:`repro.net` — node/base-station assembly, scenario runner,
* :mod:`repro.data` — the paper's published tables,
* :mod:`repro.analysis` — experiment reproduction, validation, sweeps.
"""

from .core.calibration import DEFAULT_CALIBRATION, ModelCalibration
from .core.losses import RadioEnergyCategory
from .core.report import NetworkEnergyResult, NodeEnergyResult, render_table
from .net.scenario import BanScenario, BanScenarioConfig, run_scenario

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CALIBRATION",
    "ModelCalibration",
    "RadioEnergyCategory",
    "NetworkEnergyResult",
    "NodeEnergyResult",
    "render_table",
    "BanScenario",
    "BanScenarioConfig",
    "run_scenario",
    "__version__",
]
