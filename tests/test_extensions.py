"""Tests for the extension features: EEG streaming, heterogeneous BANs,
battery monitoring, dynamic slot reclaim and irregular-rhythm signals."""

import pytest

from repro.hw.battery import Battery
from repro.net.monitor import BatteryMonitor
from repro.net.scenario import BanScenario, BanScenarioConfig, NodeSpec
from repro.signals.arrhythmia import IrregularEcg
from repro.apps.rpeak_detector import RPeakDetector
from repro.sim.simtime import milliseconds, seconds


class TestEegStreaming:
    def run_eeg(self, **spec_kw):
        spec = NodeSpec(app="eeg_streaming",
                        channels=tuple(range(spec_kw.pop("n_channels", 8))),
                        **spec_kw)
        config = BanScenarioConfig(mac="static", cycle_ms=60.0,
                                   node_specs=[spec], measure_s=4.0)
        scenario = BanScenario(config)
        return scenario, scenario.run()

    def test_decimation_reduces_rate(self):
        scenario, _ = self.run_eeg(n_channels=8, decimation=8,
                                   transmit_channels=(0, 1, 2, 3))
        app = scenario.nodes[0].app
        assert app.effective_rate_hz == pytest.approx(32.0)
        assert app.required_payload_rate_bps() \
            == pytest.approx(4 * 32.0 * 12.0)

    def test_codes_flow_to_base_station(self):
        scenario, result = self.run_eeg(n_channels=4, decimation=4)
        frames = scenario.base_station.frames_from("node1")
        assert frames
        assert frames[0].payload["kind"] == "eeg_stream"
        assert frames[0].payload["decimation"] == 4
        assert result.node("node1").traffic.data_tx == len(frames)

    def test_backlog_bounded_when_link_sufficient(self):
        # 4 tx channels at 256/8 = 32 Hz -> 128 codes/s; link carries
        # 12 codes / 60 ms = 200 codes/s: no drops.
        scenario, _ = self.run_eeg(n_channels=8, decimation=8,
                                   transmit_channels=(0, 1, 2, 3))
        app = scenario.nodes[0].app
        assert app.codes_dropped == 0

    def test_drops_when_link_oversubscribed(self):
        # 8 channels at 256 Hz raw -> 2048 codes/s >> 200 codes/s link.
        scenario, _ = self.run_eeg(n_channels=8, decimation=1)
        app = scenario.nodes[0].app
        assert app.codes_dropped > 0

    def test_acquisition_cost_scales_with_channels(self):
        _, few = self.run_eeg(n_channels=2, decimation=4)
        _, many = self.run_eeg(n_channels=8, decimation=4)
        assert many.node("node1").mcu_mj > few.node("node1").mcu_mj

    def test_validation(self):
        from repro.hw.adc import Adc12
        with pytest.raises(ValueError, match="decimation"):
            self.run_eeg(n_channels=2, decimation=0)
        with pytest.raises(ValueError, match="transmit channels"):
            self.run_eeg(n_channels=2, transmit_channels=(5,))
        del Adc12


class TestHeterogeneousBan:
    SPECS = [
        NodeSpec(app="rpeak", label="chest"),
        NodeSpec(app="eeg_streaming", channels=tuple(range(8)),
                 transmit_channels=(0, 1, 2, 3), decimation=8,
                 label="head"),
        NodeSpec(app="ecg_streaming", label="left_arm"),
    ]

    def test_mixed_apps_in_one_network(self):
        config = BanScenarioConfig(mac="static", cycle_ms=60.0,
                                   node_specs=self.SPECS, measure_s=4.0)
        scenario = BanScenario(config)
        result = scenario.run()
        apps = [type(node.app).__name__ for node in scenario.nodes]
        assert apps == ["RpeakApp", "EegStreamingApp", "EcgStreamingApp"]
        # Streaming nodes send every cycle; the Rpeak node rarely.
        assert result.node("node1").traffic.data_tx \
            < result.node("node3").traffic.data_tx

    def test_num_nodes_follows_specs(self):
        config = BanScenarioConfig(mac="static", cycle_ms=60.0,
                                   num_nodes=99, node_specs=self.SPECS,
                                   measure_s=1.0)
        assert config.num_nodes == 3

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            BanScenarioConfig(node_specs=[])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(app="video")
        with pytest.raises(ValueError):
            NodeSpec(channels=())

    def test_heterogeneous_dynamic_join(self):
        config = BanScenarioConfig(mac="dynamic", node_specs=self.SPECS,
                                   join_protocol=True, measure_s=2.0)
        scenario = BanScenario(config)
        scenario.run()
        assert all(node.mac.is_synced for node in scenario.nodes)


class TestBatteryMonitor:
    def make(self, capacity_mah=0.02, thresholds=(0.5, 0.2)):
        """A deliberately tiny cell so a short run drains it."""
        config = BanScenarioConfig(mac="static", app="ecg_streaming",
                                   num_nodes=1, cycle_ms=30.0,
                                   sampling_hz=205.0, measure_s=8.0)
        scenario = BanScenario(config)
        battery = Battery(capacity_mah=capacity_mah, voltage_v=2.8,
                          usable_fraction=1.0)
        monitor = BatteryMonitor(scenario.nodes[0], battery,
                                 sample_period_s=0.25,
                                 thresholds=thresholds)
        return scenario, monitor

    def test_soc_decreases_monotonically(self):
        scenario, monitor = self.make()
        monitor.start()
        scenario.run()
        history = [soc for _, soc in monitor.history]
        assert history
        assert all(b <= a + 1e-12 for a, b in zip(history, history[1:]))

    def test_thresholds_fire_in_order(self):
        scenario, monitor = self.make()
        events = []
        monitor.on_threshold(0.5, lambda n, t, s: events.append((t, s)))
        monitor.on_threshold(0.2, lambda n, t, s: events.append((t, s)))
        monitor.start()
        scenario.run()
        assert [t for t, _ in events] == [0.5, 0.2]
        assert all(soc <= t for t, soc in events)
        assert monitor.thresholds_fired == [0.5, 0.2]

    def test_remaining_estimate_plausible(self):
        scenario, monitor = self.make(capacity_mah=1.0)
        monitor.start()
        scenario.run()
        remaining = monitor.estimated_remaining_s()
        assert remaining is not None
        # ~21 mW (with ASIC) on 1 mAh*2.8V*3600 ~ 10.1 J -> ~480 s left.
        assert 200 < remaining < 2000

    def test_depletion_flag(self):
        scenario, monitor = self.make(capacity_mah=0.01)
        monitor.start()
        scenario.run()
        assert monitor.is_depleted
        assert monitor.state_of_charge == 0.0

    def test_validation(self):
        scenario, _ = self.make()
        battery = Battery(capacity_mah=1.0)
        with pytest.raises(ValueError):
            BatteryMonitor(scenario.nodes[0], battery,
                           sample_period_s=0.0)
        with pytest.raises(ValueError):
            BatteryMonitor(scenario.nodes[0], battery,
                           thresholds=(1.5,))
        monitor = BatteryMonitor(scenario.nodes[0], battery)
        with pytest.raises(ValueError):
            monitor.on_threshold(0.99, lambda *a: None)

    def test_double_start_rejected(self):
        scenario, monitor = self.make()
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()


class TestSlotReclaim:
    def test_silent_node_slot_reclaimed_and_reused(self):
        from repro.mac.tdma_dynamic import DynamicTdmaConfig
        config = BanScenarioConfig(mac="dynamic", app="ecg_streaming",
                                   num_nodes=3, measure_s=1.0)
        scenario = BanScenario(config)
        # Rebuild the BS MAC config with the reclaim extension on.
        bs_mac = scenario.base_station.mac
        bs_mac.config = DynamicTdmaConfig(
            slot_ticks=milliseconds(10.0), initial_assigned=3,
            inactivity_timeout_s=0.5)
        scenario.base_station.start()
        for node in scenario.nodes:
            node.start()
        sim = scenario.sim
        sim.run_until(seconds(1.0))
        assert bs_mac.schedule.slot_of("node2") == 2
        # node2 dies (stack stops: no more beacon tracking or TX).
        scenario.nodes[1].stack.stop_all()
        sim.run_until(seconds(3.0))
        assert bs_mac.slots_reclaimed >= 1
        assert bs_mac.schedule.slot_of("node2") is None
        # The surviving nodes keep their slots.
        assert bs_mac.schedule.slot_of("node1") == 1
        assert bs_mac.schedule.slot_of("node3") == 3

    def test_reclaim_disabled_by_default(self):
        config = BanScenarioConfig(mac="dynamic", app="rpeak",
                                   num_nodes=2, measure_s=3.0)
        scenario = BanScenario(config)
        scenario.run()
        assert scenario.base_station.mac.slots_reclaimed == 0

    def test_timeout_validation(self):
        from repro.mac.tdma_dynamic import DynamicTdmaConfig
        with pytest.raises(ValueError):
            DynamicTdmaConfig(inactivity_timeout_s=0.0)


class TestIrregularEcg:
    def test_dropped_beats_lengthen_rr(self):
        ecg = IrregularEcg(heart_rate_bpm=60.0, dropped_beat_prob=0.2,
                           seed=4)
        intervals = ecg.rr_intervals(120.0)
        assert ecg.beats_dropped > 5
        assert max(intervals) == pytest.approx(2.0, abs=0.01)
        assert min(intervals) == pytest.approx(1.0, abs=0.01)

    def test_premature_beats_shorten_rr(self):
        ecg = IrregularEcg(heart_rate_bpm=60.0, premature_beat_prob=0.2,
                           premature_fraction=0.4, seed=4)
        intervals = ecg.rr_intervals(120.0)
        assert ecg.beats_premature > 5
        assert min(intervals) == pytest.approx(0.4, abs=0.01)

    def test_jitter_bounds(self):
        ecg = IrregularEcg(heart_rate_bpm=60.0, rr_jitter_fraction=0.1,
                           seed=1)
        intervals = ecg.rr_intervals(60.0)
        assert all(0.9 <= rr <= 1.1 for rr in intervals)
        assert max(intervals) > 1.05 and min(intervals) < 0.95

    def test_deterministic(self):
        a = IrregularEcg(dropped_beat_prob=0.1, seed=9)
        b = IrregularEcg(dropped_beat_prob=0.1, seed=9)
        assert a.r_peak_times(60.0) == b.r_peak_times(60.0)

    def test_detector_survives_dropped_beats(self):
        ecg = IrregularEcg(heart_rate_bpm=75.0, dropped_beat_prob=0.1,
                           seed=2)
        detector = RPeakDetector(200.0)
        for index in range(200 * 60):
            detector.process(ecg.value_at(index / 200.0))
        truth = len(ecg.r_peak_times(60.0))
        assert detector.beats_detected == pytest.approx(truth, abs=4)

    def test_detector_with_premature_beats(self):
        """Premature beats at 40% of an 800 ms RR (i.e. 320 ms spacing)
        are outside the 250 ms refractory and should mostly be found."""
        ecg = IrregularEcg(heart_rate_bpm=75.0, premature_beat_prob=0.15,
                           seed=2)
        detector = RPeakDetector(200.0)
        for index in range(200 * 60):
            detector.process(ecg.value_at(index / 200.0))
        truth = len(ecg.r_peak_times(60.0))
        assert detector.beats_detected >= 0.9 * truth

    def test_validation(self):
        with pytest.raises(ValueError):
            IrregularEcg(dropped_beat_prob=1.0)
        with pytest.raises(ValueError):
            IrregularEcg(premature_fraction=0.05)
        with pytest.raises(ValueError):
            IrregularEcg(rr_jitter_fraction=0.5)
