#!/usr/bin/env python3
"""Fault-injection and crash-isolation smoke test for CI.

Two checks, both deterministic:

1. **Fault injection** — a two-node scenario takes a crash+reboot on
   one node and a beacon-loss burst on the other (the CI job also
   exercises the same plan through ``python -m repro run --faults``).
   Both nodes must end the run synchronised and the injector's
   counters must show every fault fired.

2. **Crash isolation** — a three-config batch whose middle config
   deterministically fails to join is executed with
   ``isolate_errors=True``, sequentially and pooled.  Both runs must
   return the two valid results plus one structured
   :class:`ErrorResult` in the failing slot, and must be equal.

The collected fault counters and failure summaries are written as a
JSON artifact (``--out``) so every CI run leaves an inspectable record
of what failed and how it was contained.  Exits non-zero if any
invariant breaks.

Usage::

    PYTHONPATH=src python tools/fault_smoke.py --jobs 2 \
        --out fault-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.exec import ErrorResult, failures, run_configs
from repro.faults import parse_fault_spec
from repro.mac import RecoveryConfig
from repro.net import BanScenario, BanScenarioConfig

FAULT_SPEC = ("crash,node=node1,at=0.4,reboot=0.5; "
              "beacons,node=node2,at=0.8,count=4")


def _config(**overrides) -> BanScenarioConfig:
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=2,
                    cycle_ms=30.0, measure_s=2.0, seed=11)
    defaults.update(overrides)
    return BanScenarioConfig(**defaults)


def check_fault_injection() -> dict:
    """Crash + beacon burst: every fault fires, every node recovers."""
    scenario = BanScenario(_config(
        faults=parse_fault_spec(FAULT_SPEC),
        recovery=RecoveryConfig()))
    scenario.run()
    summary = scenario.fault_injector.summary()
    assert summary["node1"]["crashes"] == 1, summary
    assert summary["node1"]["reboots"] == 1, summary
    assert summary["node2"]["beacon_bursts"] == 1, summary
    for node in scenario.nodes:
        assert node.mac.started and node.mac.is_synced, \
            f"{node.name} did not recover"
    return summary


def check_crash_isolation(jobs: int) -> list:
    """One failing config must not discard its siblings' results."""
    bad = _config(num_slots=1, join_protocol=True, join_deadline_s=0.5,
                  seed=2)
    configs = [_config(seed=1), bad, _config(seed=3)]
    sequential = run_configs(configs, jobs=1, isolate_errors=True)
    pooled = run_configs(configs, jobs=jobs, isolate_errors=True)
    assert sequential == pooled, \
        "jobs=1 and pooled runs disagree under failure isolation"
    errors = failures(pooled)
    assert len(errors) == 1 and errors[0].index == 1, errors
    valid = [r for r in pooled if not isinstance(r, ErrorResult)]
    assert len(valid) == len(configs) - 1, \
        "sibling results were lost alongside the failure"
    return [error.summary() for error in errors]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=2,
                        help="pool size for the isolation check")
    parser.add_argument("--out", metavar="PATH",
                        default="fault-smoke.json",
                        help="where to write the JSON artifact")
    args = parser.parse_args(argv)

    report = {
        "fault_spec": FAULT_SPEC,
        "fault_counters": check_fault_injection(),
        "isolation_jobs": args.jobs,
        "isolated_failures": check_crash_isolation(args.jobs),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"fault smoke OK -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
