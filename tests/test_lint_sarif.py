"""Tests for the SARIF 2.1.0 exporter (``repro.lint.sarif``).

``jsonschema`` is not available in this environment, so structural
conformance is checked by a hand-rolled validator implementing the
subset of the SARIF 2.1.0 schema the exporter emits: required
top-level keys, run/tool/driver shape, rule descriptors, result
anatomy (ruleId/ruleIndex agreement, physical locations with 1-based
regions, legal levels) and suppression records.
"""

import json
import pathlib

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.sarif import (SARIF_SCHEMA, SARIF_VERSION,
                              render_sarif, report_to_sarif)

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: One clean file, one file with a real finding (module-level RNG
#: draw), and one with a *waived* finding — so the exported document
#: exercises results, suppressions, and the empty case.
DIRTY = "import random\nVALUE = random.random()\n"
WAIVED = ("import random\n"
          "VALUE = random.random()  # lint: allow(DET001): fixture\n")
CLEAN = "X = 1\n"

_LEVELS = {"none", "note", "warning", "error"}


def _require(condition, message):
    assert condition, f"SARIF conformance: {message}"


def validate_sarif(doc):
    """Structural SARIF 2.1.0 conformance for the emitted subset."""
    _require(isinstance(doc, dict), "document must be an object")
    _require(doc.get("version") == "2.1.0",
             "version must be the literal '2.1.0'")
    _require(doc.get("$schema", "").startswith("https://"),
             "$schema must be an absolute URI")
    runs = doc.get("runs")
    _require(isinstance(runs, list) and runs,
             "runs must be a non-empty array")
    for run in runs:
        driver = run.get("tool", {}).get("driver")
        _require(isinstance(driver, dict),
                 "every run needs tool.driver")
        _require(isinstance(driver.get("name"), str)
                 and driver["name"],
                 "driver.name must be a non-empty string")
        rules = driver.get("rules", [])
        _require(isinstance(rules, list), "driver.rules must be array")
        ids = []
        for rule in rules:
            _require(isinstance(rule.get("id"), str) and rule["id"],
                     "rule.id must be a non-empty string")
            _require(rule["id"] not in ids,
                     f"duplicate rule id {rule['id']}")
            ids.append(rule["id"])
            short = rule.get("shortDescription", {})
            _require(isinstance(short.get("text"), str),
                     "shortDescription.text must be a string")
            level = rule.get("defaultConfiguration", {}).get("level")
            _require(level in _LEVELS,
                     f"illegal defaultConfiguration.level {level!r}")
        for result in run.get("results", []):
            _validate_result(result, ids)
    return True


def _validate_result(result, rule_ids):
    _require(isinstance(result.get("ruleId"), str),
             "result.ruleId must be a string")
    _require(result.get("level") in _LEVELS,
             f"illegal result.level {result.get('level')!r}")
    _require(isinstance(result.get("message", {}).get("text"), str),
             "result.message.text must be a string")
    index = result.get("ruleIndex")
    if index is not None:
        _require(isinstance(index, int) and 0 <= index < len(rule_ids),
                 "ruleIndex out of range")
        _require(rule_ids[index] == result["ruleId"],
                 "ruleIndex must point at the ruleId's descriptor")
    for location in result.get("locations", []):
        physical = location.get("physicalLocation", {})
        uri = physical.get("artifactLocation", {}).get("uri")
        _require(isinstance(uri, str) and "\\" not in uri,
                 "artifact uri must be /-separated")
        region = physical.get("region", {})
        _require(region.get("startLine", 1) >= 1,
                 "startLine is 1-based")
        _require(region.get("startColumn", 1) >= 1,
                 "startColumn is 1-based")
    for suppression in result.get("suppressions", []):
        _require(suppression.get("kind") in ("inSource", "external"),
                 f"illegal suppression.kind "
                 f"{suppression.get('kind')!r}")


@pytest.fixture()
def tree(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    (tmp_path / "waived.py").write_text(WAIVED, encoding="utf-8")
    (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
    return tmp_path


class TestDocumentShape:
    def test_validates_against_schema_subset(self, tree):
        report = lint_paths([tree], LintConfig())
        assert validate_sarif(report_to_sarif(report))

    def test_src_report_validates_too(self):
        report = lint_paths([ROOT / "src" / "repro" / "core"],
                            LintConfig())
        assert validate_sarif(report_to_sarif(report))

    def test_version_and_schema_constants(self):
        assert SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0.json" in SARIF_SCHEMA

    def test_findings_become_results(self, tree):
        report = lint_paths([tree], LintConfig())
        doc = report_to_sarif(report)
        results = doc["runs"][0]["results"]
        assert len(results) == len(report.findings)
        rule_ids = {r["ruleId"] for r in results}
        assert "DET001" in rule_ids

    def test_rule_catalog_covers_every_result(self, tree):
        report = lint_paths([tree], LintConfig())
        doc = report_to_sarif(report)
        declared = {r["id"] for r in
                    doc["runs"][0]["tool"]["driver"]["rules"]}
        fired = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert fired <= declared
        assert {"LIF001", "LIF002", "LIF003", "LIF004",
                "LIF005"} <= declared

    def test_clean_report_has_empty_results(self, tmp_path):
        (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
        report = lint_paths([tmp_path], LintConfig())
        doc = report_to_sarif(report)
        assert doc["runs"][0]["results"] == []


class TestSuppressions:
    def test_waived_finding_exports_suppression(self, tree):
        report = lint_paths([tree], LintConfig())
        doc = report_to_sarif(report)
        suppressed = [r for r in doc["runs"][0]["results"]
                      if r.get("suppressions")]
        assert len(suppressed) == 1
        record = suppressed[0]["suppressions"][0]
        assert record["kind"] == "inSource"
        assert record["justification"] == "fixture"

    def test_unsuppressed_findings_carry_no_suppressions(self, tree):
        report = lint_paths([tree], LintConfig())
        doc = report_to_sarif(report)
        for result in doc["runs"][0]["results"]:
            if not result.get("suppressions"):
                assert "suppressions" not in result


class TestSerialisation:
    def test_render_is_deterministic(self, tree):
        report = lint_paths([tree], LintConfig())
        assert render_sarif(report) == render_sarif(report)
        assert render_sarif(report).endswith("\n")

    def test_render_round_trips(self, tree):
        report = lint_paths([tree], LintConfig())
        assert json.loads(render_sarif(report)) == \
            report_to_sarif(report)


class TestCli:
    def test_sarif_flag_writes_validating_file(self, tree, tmp_path,
                                               capsys):
        out = tmp_path / "lint.sarif"
        code = lint_main([str(tree), "--sarif", str(out)])
        assert code == 1  # the dirty finding still gates
        assert f"wrote {out}" in capsys.readouterr().out
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert validate_sarif(doc)

    def test_sarif_flag_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
        out = tmp_path / "lint.sarif"
        code = lint_main([str(tmp_path), "--sarif", str(out)])
        assert code == 0
        capsys.readouterr()
        assert validate_sarif(
            json.loads(out.read_text(encoding="utf-8")))
