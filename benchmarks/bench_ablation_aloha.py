"""Ablation A9: what does TDMA's coordination actually buy (and cost)?

The paper adopts TDMA without quantifying the contention-based
alternative.  We compare the same streaming workload (5 nodes, one
18-byte packet per 30 ms per node) under:

* the paper's **static TDMA** — synchronised, collision-free, but every
  node pays a ~3.3 ms beacon-listen window per cycle;
* **unslotted ALOHA** — no beacons, no listening, TX-only nodes, but
  frames collide silently (no acknowledgements on this radio).

Metrics: node radio energy, delivery ratio at the base station, and
the composite *energy per delivered frame*.  Expected shape: ALOHA
wins raw node energy by ~10x (it skips all coordination), yet loses a
bounded-reliability guarantee — its loss rate is structural and grows
with offered load, which the node-count sweep shows.
"""

from conftest import bench_measure_s, run_once
from repro.net.scenario import BanScenario, BanScenarioConfig


def run_comparison(measure_s: float):
    out = {}
    for mac in ("static", "aloha"):
        config = BanScenarioConfig(mac=mac, app="ecg_streaming",
                                   num_nodes=5, cycle_ms=30.0,
                                   sampling_hz=205.0,
                                   measure_s=measure_s, seed=3)
        scenario = BanScenario(config)
        result = scenario.run()
        offered = sum(n.traffic.data_tx + n.traffic.corrupted
                      for n in result.nodes.values())
        # TX-side collision bookkeeping differs: count deliveries
        # directly at the base station.
        delivered = result.base_station.traffic.data_rx
        out[mac] = {
            "node": result.node("node1"),
            "offered": offered,
            "delivered": delivered,
            "corrupted_at_bs": result.base_station.traffic.corrupted,
        }
    # Load sweep for the ALOHA loss trend.
    losses = []
    for nodes in (2, 5, 8):
        config = BanScenarioConfig(mac="aloha", app="ecg_streaming",
                                   num_nodes=nodes, cycle_ms=30.0,
                                   sampling_hz=205.0,
                                   measure_s=min(measure_s, 20.0),
                                   seed=3)
        result = BanScenario(config).run()
        bs = result.base_station.traffic
        loss = bs.corrupted / max(1, bs.corrupted + bs.data_rx)
        losses.append((nodes, loss))
    return out, losses


def test_ablation_tdma_vs_aloha(benchmark):
    measure_s = bench_measure_s()
    comparison, losses = run_once(benchmark, run_comparison, measure_s)

    tdma = comparison["static"]
    aloha = comparison["aloha"]
    expected_frames = 5 * measure_s / 0.030

    print(f"\nA9 TDMA vs ALOHA, 5-node streaming ({measure_s:.0f} s):")
    for mac, record in comparison.items():
        node = record["node"]
        delivery = record["delivered"] / expected_frames
        energy_per_frame = node.radio_mj * 5 / max(1, record["delivered"])
        print(f"  {mac:<7} node radio {node.radio_mj:7.1f} mJ   "
              f"delivery {100 * delivery:5.1f}%   "
              f"{1e3 * energy_per_frame:6.1f} uJ radio / delivered frame")
        benchmark.extra_info[f"{mac}_radio_mj"] = round(node.radio_mj, 1)
        benchmark.extra_info[f"{mac}_delivery"] = round(delivery, 4)
    print("  ALOHA loss rate vs load: "
          + ", ".join(f"{n} nodes: {100 * loss:.1f}%"
                      for n, loss in losses))

    # TDMA delivers everything; ALOHA cannot.
    assert tdma["corrupted_at_bs"] == 0
    assert tdma["delivered"] >= 0.99 * expected_frames
    assert aloha["corrupted_at_bs"] > 0
    assert aloha["delivered"] < 0.99 * expected_frames

    # ALOHA's node energy is an order of magnitude below TDMA's: the
    # whole difference is coordination (windows + beacons).
    assert aloha["node"].radio_mj < 0.15 * tdma["node"].radio_mj

    # The structural loss grows with offered load.
    rates = [loss for _, loss in losses]
    assert rates[0] < rates[-1]
    assert rates[-1] > 0.05
