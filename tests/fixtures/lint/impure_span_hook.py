"""Seeded-bug fixture: a spans hook guard that perturbs the simulation.

Linted with ``module_path="mac/impure_span_hook.py"`` so the effect
pass treats it as simulation code.  The ``enqueue`` method hides two
classic perturbation bugs inside its ``spans is not None`` guard: it
schedules a kernel event and mutates the transmit queue — both only
when observability is attached, which is exactly the divergence
determinism check 4 exists to catch at runtime and OBS001/OBS002 catch
here statically.
"""

from typing import Callable, List, Optional


class SpanTracer:
    """Stand-in tracer whose hook methods are sim-pure (reads only)."""

    def packet_queued(self, node: str) -> None:
        """A well-behaved hook: observes, touches nothing."""


class Simulator:
    def __init__(self) -> None:
        self.now = 0

    def at(self, when: int, callback: Callable[[], None]) -> None:
        """Schedules an event (intrinsically effectful)."""


class NodeMac:
    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self.spans: Optional[SpanTracer] = None
        self._queue: List[object] = []

    def _flush(self) -> None:
        self._queue.clear()

    def enqueue(self, frame: object) -> None:
        self._queue.append(frame)
        if self.spans is not None:
            self.spans.packet_queued("n0")  # pure: allowed in a hook
            self._sim.at(self._sim.now + 10, self._flush)  # seeded bug
            self._queue.pop()  # seeded bug: spans-on drops the frame
