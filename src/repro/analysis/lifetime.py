"""Battery-lifetime projection from simulated energy figures.

The motivation of the whole platform is autonomy ("replacement of power
supplies in patients can be a very tedious and unpleasant task",
Section 1): the actionable output of the energy model is *how long a
node lasts*.  This module turns a :class:`NodeEnergyResult` into a
runtime projection for a given battery, optionally including the
constant-power sensing ASIC the validation tables exclude.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.report import NodeEnergyResult
from ..hw.battery import Battery


@dataclass(frozen=True)
class LifetimeProjection:
    """Projected runtime of one node on one battery."""

    node_id: str
    battery: Battery
    average_power_mw: float
    include_asic: bool
    hours: float

    @property
    def days(self) -> float:
        """Runtime in days."""
        return self.hours / 24.0

    def render(self) -> str:
        """One-line summary."""
        scope = "radio+MCU+ASIC" if self.include_asic else "radio+MCU"
        return (f"{self.node_id}: {self.average_power_mw:.2f} mW "
                f"({scope}) on {self.battery.capacity_mah:.0f} mAh "
                f"=> {self.hours:.0f} h ({self.days:.1f} days)")


def project_lifetime(node: NodeEnergyResult, battery: Battery,
                     include_asic: bool = True) -> LifetimeProjection:
    """Project a node's battery life from a measured window.

    Assumes the measured window is representative steady state (true
    for the paper's periodic TDMA workloads).
    """
    if node.horizon_s <= 0:
        raise ValueError("node result has a non-positive horizon")
    energy_mj = node.total_with_asic_mj if include_asic else node.total_mj
    average_power_w = energy_mj * 1e-3 / node.horizon_s
    hours = battery.lifetime_hours(average_power_w)
    return LifetimeProjection(
        node_id=node.node_id,
        battery=battery,
        average_power_mw=average_power_w * 1e3,
        include_asic=include_asic,
        hours=hours,
    )


__all__ = ["LifetimeProjection", "project_lifetime"]
