"""Dynamic TDMA (Figure 3).

Slots have a fixed length and the cycle grows with the network: with N
joined nodes the cycle is ``(N + 1) * slot_len`` — one leading slot for
the beacon (SB) plus the empty-slot request window (ES), then one data
slot per node.  A joining node transmits its slot request at a random
instant inside the ES ("the node performs a SSR on a random time,
minimizing the risk of a collision of 2 requests within the same ES");
the base station creates a new slot, assigns it, and announces both the
assignment and the new cycle length in the next beacon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.calibration import ModelCalibration
from ..hw.radio import Nrf2401
from ..sim.kernel import Simulator
from ..sim.simtime import microseconds, milliseconds
from ..sim.trace import TraceRecorder
from ..tinyos.scheduler import TaskScheduler
from .base import BaseStationMac, NodeMac
from .messages import BeaconPayload, SlotRequestPayload
from .recovery import RecoveryConfig
from .slots import SlotSchedule, dynamic_cycle_ticks, dynamic_slot_offset
from .sync import SyncPolicy, paper_dynamic_policy

if TYPE_CHECKING:
    from ..hw.frames import Frame
    from ..obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class DynamicTdmaConfig:
    """Parameters of a dynamic-TDMA network.

    Attributes:
        slot_ticks: fixed slot length (the paper's case studies: 10 ms).
        first_beacon_ticks: absolute time of the first beacon.
        base_station: the base station's address.
        initial_assigned: number of preassigned nodes when the scenario
            skips the join protocol (steady-state measurements); defines
            the initial cycle length.
        es_open_offset_ticks: earliest SSR instant after the beacon
            start (clears the beacon airtime).
        es_close_margin_ticks: latest-SSR margin before the ES slot
            ends (clears the SSR ShockBurst event).
        inactivity_timeout_s: optional node-leave handling (an extension
            beyond the paper): the base station releases a slot whose
            owner has been silent for this long, making it reusable by
            future joiners.  Rpeak nodes legitimately stay silent for
            hundreds of milliseconds, so enable this only with a
            comfortably larger timeout.  None (default) disables it.
    """

    slot_ticks: int = milliseconds(10)
    first_beacon_ticks: int = milliseconds(10)
    base_station: str = "base_station"
    initial_assigned: int = 0
    es_open_offset_ticks: int = microseconds(300)
    es_close_margin_ticks: int = microseconds(500)
    inactivity_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.slot_ticks <= 0:
            raise ValueError(f"slot must be positive: {self.slot_ticks}")
        if self.initial_assigned < 0:
            raise ValueError(
                f"initial_assigned must be >= 0: {self.initial_assigned}")
        usable = self.slot_ticks - self.es_open_offset_ticks \
            - self.es_close_margin_ticks
        if usable <= 0:
            raise ValueError(
                f"slot {self.slot_ticks} leaves no ES window "
                f"(open {self.es_open_offset_ticks} + close "
                f"{self.es_close_margin_ticks})")
        if self.inactivity_timeout_s is not None \
                and self.inactivity_timeout_s <= 0:
            raise ValueError(
                f"inactivity timeout must be positive: "
                f"{self.inactivity_timeout_s}")


class DynamicTdmaNodeMac(NodeMac):
    """Node side of the dynamic TDMA protocol."""

    #: The ES window is a shared contention resource: repeated
    #: unanswered requests back off exponentially (with recovery on).
    _supports_ssr_backoff = True

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: DynamicTdmaConfig,
                 sync_policy: Optional[SyncPolicy] = None,
                 preassigned_slot: Optional[int] = None,
                 clock_skew_ppm: float = 0.0,
                 recovery: Optional[RecoveryConfig] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.config = config
        policy = sync_policy if sync_policy is not None \
            else paper_dynamic_policy(calibration)
        super().__init__(
            sim, radio, scheduler, calibration, policy,
            base_station=config.base_station,
            preassigned_slot=preassigned_slot,
            first_beacon_ticks=config.first_beacon_ticks,
            clock_skew_ppm=clock_skew_ppm,
            recovery=recovery,
            trace=trace)

    def _initial_cycle_ticks(self) -> int:
        return dynamic_cycle_ticks(self.config.slot_ticks,
                                   self.config.initial_assigned)

    def _cycle_from_beacon(self, payload: BeaconPayload) -> int:
        return payload.cycle_ticks

    def _slot_offset(self, cycle_ticks: int, slot: int) -> int:
        return dynamic_slot_offset(self.config.slot_ticks, slot)

    def _schedule_slot_request(self, beacon_start: int,
                               payload: BeaconPayload) -> None:
        earliest = beacon_start + self.config.es_open_offset_ticks
        latest = beacon_start + self.config.slot_ticks \
            - self.config.es_close_margin_ticks
        if latest <= self._sim.now:
            return  # ES already over; retry next cycle
        earliest = max(earliest, self._sim.now)
        request_time = self._sim.rng.uniform_ticks(
            f"{self._radio.address}.es", earliest, latest)
        if self.spans is not None:
            self.spans.note_wait(self._radio.address, "mac.ssr_wait",
                                 self._sim.now, request_time)
        self._sim.at(request_time,
                     lambda: self._send_slot_request(wanted_slot=None),
                     label=f"{self.name}.ssr_es")


class DynamicTdmaBaseMac(BaseStationMac):
    """Base-station side of the dynamic TDMA protocol."""

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 config: DynamicTdmaConfig,
                 trace: Optional[TraceRecorder] = None) -> None:
        self.config = config
        schedule = SlotSchedule(max(1, config.initial_assigned))
        super().__init__(
            sim, radio, scheduler, calibration,
            schedule=schedule,
            first_beacon_ticks=config.first_beacon_ticks,
            trace=trace)
        self._last_heard: dict = {}
        self.slots_reclaimed = 0

    def _current_cycle_ticks(self) -> int:
        # The beacon slot plus one data slot per *schedulable* slot; the
        # schedule only grows when joins outpace it, so the cycle always
        # covers every assigned slot.
        return dynamic_cycle_ticks(self.config.slot_ticks,
                                   self.schedule.num_slots)

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the base-station figures plus dynamic-TDMA specifics.

        Adds the configured slot length, the *current* (grown) cycle
        length and the inactivity-reclaim counter on top of the shared
        occupancy gauges.
        """
        super().observe_metrics(registry, node)
        registry.gauge("mac", node, "slot_ticks").set(
            float(self.config.slot_ticks))
        registry.gauge("mac", node, "cycle_ticks").set(
            float(self._current_cycle_ticks()))
        registry.counter("mac", node,
                         "slots_reclaimed").inc(self.slots_reclaimed)

    def _handle_slot_request(self, payload: SlotRequestPayload) -> None:
        if self.schedule.slot_of(payload.requester) is not None:
            # Duplicate request (grant beacon was lost): keep the slot.
            # Safe against double allocation for the same reason as the
            # static variant; the dangerous direction was the *node*
            # side — a synced owner whose slot was inactivity-reclaimed
            # kept transmitting into a reassignable slot — which the
            # NodeMac revocation check now closes.
            return
        free = self.schedule.free_slots()
        slot = free[0] if free else self.schedule.grow()
        self.schedule.assign(slot, payload.requester)
        self._last_heard[payload.requester] = self._sim.now

    # ------------------------------------------------------------------
    # Node-leave handling (extension; see DynamicTdmaConfig)
    # ------------------------------------------------------------------
    def _frame_activity(self, frame: "Frame") -> None:
        self._last_heard[frame.src] = self._sim.now

    def _before_beacon(self) -> None:
        timeout_s = self.config.inactivity_timeout_s
        if timeout_s is None:
            return
        from ..sim.simtime import seconds
        timeout = seconds(timeout_s)
        for owner in list(self.schedule.as_map().values()):
            heard = self._last_heard.get(owner)
            if heard is None:
                # Grandfather preassigned owners from the first beacon.
                self._last_heard[owner] = self._sim.now
                continue
            if self._sim.now - heard > timeout:
                self.schedule.release(owner)
                self._last_heard.pop(owner, None)
                self.slots_reclaimed += 1


__all__ = ["DynamicTdmaConfig", "DynamicTdmaNodeMac", "DynamicTdmaBaseMac"]
