"""MAC layer: frames, slots, sync policies, static & dynamic TDMA, and
the contention family (unslotted ALOHA and 802.15.4-style CSMA/CA)."""

from .aloha import AlohaBaseMac, AlohaConfig, AlohaNodeMac
from .base import AppPayload, BaseStationMac, MacCounters, NodeMac, NodeState
from .csma import CsmaBaseMac, CsmaConfig, CsmaNodeMac
from .recovery import RecoveryConfig
from .messages import (
    BEACON_BASE_BYTES,
    SLOT_REQUEST_BYTES,
    BeaconPayload,
    SlotRequestPayload,
    beacon_payload_bytes,
    make_beacon,
    make_data,
    make_slot_request,
)
from .slots import (
    SlotSchedule,
    dynamic_cycle_ticks,
    dynamic_slot_offset,
    static_slot_offset,
)
from .sync import (
    CycleProportionalLead,
    DriftTrackingLead,
    FixedLead,
    SyncPolicy,
    paper_dynamic_policy,
    paper_static_policy,
)
from .tdma_dynamic import DynamicTdmaBaseMac, DynamicTdmaConfig, \
    DynamicTdmaNodeMac
from .tdma_static import StaticTdmaBaseMac, StaticTdmaConfig, \
    StaticTdmaNodeMac

__all__ = [
    "AlohaBaseMac",
    "AlohaConfig",
    "AlohaNodeMac",
    "AppPayload",
    "BaseStationMac",
    "CsmaBaseMac",
    "CsmaConfig",
    "CsmaNodeMac",
    "MacCounters",
    "NodeMac",
    "NodeState",
    "RecoveryConfig",
    "BEACON_BASE_BYTES",
    "SLOT_REQUEST_BYTES",
    "BeaconPayload",
    "SlotRequestPayload",
    "beacon_payload_bytes",
    "make_beacon",
    "make_data",
    "make_slot_request",
    "SlotSchedule",
    "dynamic_cycle_ticks",
    "dynamic_slot_offset",
    "static_slot_offset",
    "CycleProportionalLead",
    "DriftTrackingLead",
    "FixedLead",
    "SyncPolicy",
    "paper_dynamic_policy",
    "paper_static_policy",
    "DynamicTdmaBaseMac",
    "DynamicTdmaConfig",
    "DynamicTdmaNodeMac",
    "StaticTdmaBaseMac",
    "StaticTdmaConfig",
    "StaticTdmaNodeMac",
]
