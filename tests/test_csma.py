"""Tests for the unslotted CSMA/CA MAC and the radio's CCA primitive."""

import pytest

from repro.hw.radio import Nrf2401, RadioError
from repro.mac.csma import CsmaConfig
from repro.mac.recovery import RecoveryConfig
from repro.faults import FaultPlan, RadioLockup
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.channel import Channel
from repro.sim.simtime import microseconds, milliseconds, seconds

CCA_TICKS = microseconds(128)


@pytest.fixture
def pair(sim, cal):
    """Two radios, 'a' and 'b', on a perfect channel."""
    channel = Channel(sim)
    a = Nrf2401(sim, cal, channel, "a", name="a.radio")
    b = Nrf2401(sim, cal, channel, "b", name="b.radio")
    a.power_up()
    b.power_up()
    return channel, a, b


def data_frame(src="a", dest="b", payload_bytes=18):
    from repro.hw.frames import Frame, FrameKind
    return Frame(src=src, dest=dest, kind=FrameKind.DATA,
                 payload_bytes=payload_bytes, payload={"n": 1})


def run_csma(num_nodes=3, measure_s=5.0, app="ecg_streaming",
             cycle_ms=30.0, seed=2, **kw):
    config = BanScenarioConfig(
        mac="csma", app=app, num_nodes=num_nodes, cycle_ms=cycle_ms,
        sampling_hz=205.0 if app == "ecg_streaming" else None,
        measure_s=measure_s, seed=seed, **kw)
    scenario = BanScenario(config)
    return scenario, scenario.run()


class TestConfig:
    def test_defaults_are_802154(self):
        config = CsmaConfig()
        assert (config.min_be, config.max_be, config.max_backoffs) \
            == (3, 5, 4)
        assert config.backoff_unit_ticks == microseconds(320)
        assert config.cca_ticks == microseconds(128)

    def test_validation(self):
        with pytest.raises(ValueError):
            CsmaConfig(min_be=-1)
        with pytest.raises(ValueError):
            CsmaConfig(min_be=4, max_be=3)
        with pytest.raises(ValueError):
            CsmaConfig(max_backoffs=-1)
        with pytest.raises(ValueError):
            CsmaConfig(backoff_unit_ticks=0)
        with pytest.raises(ValueError):
            CsmaConfig(cca_ticks=0)
        with pytest.raises(ValueError):
            CsmaConfig(poll_interval_ticks=0)

    def test_scenario_accepts_csma(self):
        config = BanScenarioConfig(mac="csma", measure_s=1.0)
        assert config.cycle_ticks == milliseconds(30.0)

    def test_join_protocol_rejected(self):
        with pytest.raises(ValueError, match="join"):
            BanScenarioConfig(mac="csma", measure_s=1.0,
                              join_protocol=True)


class TestCcaPrimitive:
    """The radio-level clear-channel assessment."""

    def test_idle_channel_reads_clear(self, sim, cal, pair):
        _, a, _ = pair
        results = []
        a.cca(CCA_TICKS, results.append)
        assert a.state == "cca"
        sim.run_until(seconds(1.0))
        assert results == [False]
        assert a.state == "standby"

    def test_inflight_frame_reads_busy(self, sim, cal, pair):
        _, a, b = pair
        results = []
        # a's 26-byte frame occupies the air 195..403 us.
        a.send(data_frame())
        sim.at(microseconds(250), lambda: b.cca(CCA_TICKS, results.append))
        sim.run_until(seconds(1.0))
        assert results == [True]

    def test_busy_at_start_latches(self, sim, cal, pair):
        _, a, b = pair
        results = []
        # Sense 350..478 us: the frame ends at 403 us, mid-window, but
        # the busy start reading must stick.
        a.send(data_frame())
        sim.at(microseconds(350), lambda: b.cca(CCA_TICKS, results.append))
        sim.run_until(seconds(1.0))
        assert results == [True]

    def test_busy_at_end_detected(self, sim, cal, pair):
        _, a, b = pair
        results = []
        # Sense 150..278 us: idle at the start (airtime begins at
        # 195 us), busy by the end.
        a.send(data_frame())
        sim.at(microseconds(150), lambda: b.cca(CCA_TICKS, results.append))
        sim.run_until(seconds(1.0))
        assert results == [True]

    def test_gap_between_frames_reads_clear(self, sim, cal, pair):
        _, a, b = pair
        results = []
        a.send(data_frame())
        # 500..628 us: a's TX event (485 us) has fully drained.
        sim.at(microseconds(500), lambda: b.cca(CCA_TICKS, results.append))
        sim.run_until(seconds(1.0))
        assert results == [False]

    def test_deaf_chain_reads_busy(self, sim, cal, pair):
        _, _, b = pair
        results = []
        b.fault_rx_deaf = True
        b.cca(CCA_TICKS, results.append)
        sim.run_until(seconds(1.0))
        assert results == [True]

    def test_energy_booked_at_rx_current(self, sim, cal, pair):
        _, a, _ = pair
        a.cca(CCA_TICKS, lambda busy: None)
        sim.run_until(seconds(1.0))
        expected = 128e-6 * cal.radio_rx_a * cal.supply_v
        assert a.ledger.energy_j(state="cca") == pytest.approx(expected)
        # Eagerly attributed (idle-listening class), so the loss
        # accountant's invariant survives without finalisation help.
        assert a.accountant.snapshot().total_j == pytest.approx(expected)

    def test_guards(self, sim, cal, pair):
        _, a, b = pair
        with pytest.raises(ValueError):
            a.cca(0, lambda busy: None)
        a.send(data_frame())
        with pytest.raises(RadioError):  # mid-ShockBurst
            a.cca(CCA_TICKS, lambda busy: None)
        b.start_rx()
        with pytest.raises(RadioError):  # receiving
            b.cca(CCA_TICKS, lambda busy: None)
        b.stop_rx()
        sim.run_until(seconds(1.0))
        a.cca(CCA_TICKS, lambda busy: None)
        with pytest.raises(RadioError):  # already sensing
            a.cca(CCA_TICKS, lambda busy: None)
        with pytest.raises(RadioError):  # no TX mid-sense
            a.send(data_frame())
        with pytest.raises(RadioError):  # no RX mid-sense
            a.start_rx()

    def test_cca_on_powered_down_radio_raises(self, sim, cal):
        channel = Channel(sim)
        radio = Nrf2401(sim, cal, channel, "a", name="a.radio")
        with pytest.raises(RadioError):
            radio.cca(CCA_TICKS, lambda busy: None)

    def test_power_down_mid_sense_books_partial_window(self, sim, cal,
                                                       pair):
        _, a, _ = pair
        results = []
        a.cca(CCA_TICKS, results.append)
        sim.at(microseconds(50), a.power_down)
        sim.run_until(seconds(1.0))
        # The callback never fires; the 50 us actually spent sensing is
        # booked, attributed, and the radio is cleanly off.
        assert results == []
        assert a.state == "power_down"
        expected = 50e-6 * cal.radio_rx_a * cal.supply_v
        assert a.ledger.energy_j(state="cca") == pytest.approx(expected)
        assert a.accountant.snapshot().total_j == pytest.approx(expected)


class TestNodeBehaviour:
    def test_single_node_lossless(self):
        _, result = run_csma(num_nodes=1, measure_s=5.0)
        assert result.base_station.traffic.corrupted == 0
        assert result.base_station.traffic.data_rx > 0

    def test_nodes_never_enter_rx(self):
        scenario, result = run_csma()
        for node in scenario.nodes:
            assert node.radio.ledger.seconds_in(state="rx") == 0.0
            assert result.node(node.node_id).traffic.control_rx == 0

    def test_every_tx_is_preceded_by_a_clear_cca(self):
        scenario, _ = run_csma(num_nodes=5, measure_s=5.0)
        for node in scenario.nodes:
            counters = node.mac.counters
            # Each attempt terminates in exactly one of: a busy CCA, a
            # transmission, or (at most once) the cut at collection.
            slack = counters.backoff_attempts \
                - counters.cca_busy - counters.data_sent
            assert 0 <= slack <= 1

    def test_cca_time_is_quantised_to_full_windows(self):
        scenario, _ = run_csma(num_nodes=5, measure_s=5.0)
        for node in scenario.nodes:
            windows = node.radio.ledger.seconds_in(state="cca") / 128e-6
            assert windows == pytest.approx(round(windows), abs=1e-6)
            assert windows > 0

    def test_busy_ccas_and_collisions_coexist_under_load(self):
        scenario, result = run_csma(num_nodes=5, measure_s=10.0, seed=3)
        busy = sum(n.mac.counters.cca_busy for n in scenario.nodes)
        assert busy > 0
        # The channel's own collision bookkeeping must agree that
        # contention was real: every base-station corruption is at
        # least one detected overlap (pairs are counted per receiver,
        # so the channel total is an upper bound on BS corruptions).
        assert result.base_station.traffic.corrupted > 0
        assert scenario.channel.collisions_detected \
            >= result.base_station.traffic.corrupted

    def test_attribution_invariant_holds(self):
        _, result = run_csma(num_nodes=5, measure_s=5.0)
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)

    def test_deterministic(self):
        _, a = run_csma(seed=9)
        _, b = run_csma(seed=9)
        assert a.node("node1").radio_mj == b.node("node1").radio_mj

    def test_seed_changes_backoff_outcomes(self):
        _, a = run_csma(num_nodes=5, seed=9)
        _, b = run_csma(num_nodes=5, seed=10)
        assert a.node("node1").radio_mj != b.node("node1").radio_mj

    def test_backoff_draws_use_named_node_streams(self):
        scenario, _ = run_csma(num_nodes=2, measure_s=2.0)
        streams = scenario.sim.rng._streams
        for node in scenario.nodes:
            assert f"{node.node_id}.csma_backoff" in streams
            assert f"{node.node_id}.csma_start" in streams


class TestAbandonmentAndRecovery:
    LOCKUP = FaultPlan(faults=(
        RadioLockup(node="node1", at_s=0.5, duration_s=0.8),))

    def test_lockup_forces_abandonment(self):
        scenario, _ = run_csma(num_nodes=2, measure_s=2.5, seed=5,
                               faults=self.LOCKUP)
        jammed = scenario.nodes[0].mac.counters
        clear = scenario.nodes[1].mac.counters
        # A deaf receive chain reads busy: frames exhaust their
        # max_backoffs retries and die at the MAC, never on air.
        assert jammed.tx_abandoned > 0
        assert jammed.cca_busy \
            >= jammed.tx_abandoned * (CsmaConfig().max_backoffs + 1)
        assert clear.tx_abandoned == 0
        # Without a RecoveryConfig the cap never widens.
        assert jammed.windows_widened == 0

    def test_recovery_widens_backoff_cap(self):
        scenario, _ = run_csma(num_nodes=2, measure_s=2.5, seed=5,
                               faults=self.LOCKUP,
                               recovery=RecoveryConfig())
        jammed = scenario.nodes[0].mac.counters
        assert jammed.windows_widened >= 1
        # The lockup ends inside the run: an idle CCA clears the
        # streak and traffic resumes.
        assert jammed.data_sent > 0
        assert scenario.nodes[1].mac.counters.windows_widened == 0

    def test_widening_and_restore_are_traced(self):
        from repro.sim.trace import TraceRecorder
        config = BanScenarioConfig(
            mac="csma", app="ecg_streaming", num_nodes=2, cycle_ms=30.0,
            sampling_hz=205.0, measure_s=2.5, seed=5,
            faults=self.LOCKUP, recovery=RecoveryConfig())
        trace = TraceRecorder()
        scenario = BanScenario(config, trace=trace)
        scenario.run()
        kinds = [record.kind for record in trace
                 if record.source.startswith("node1")]
        assert "backoff_cap_widened" in kinds
        assert "backoff_cap_restored" in kinds
        assert "tx_abandoned" in kinds


class TestSpans:
    def _traced(self, **kw):
        from repro.obs import attach_span_tracer
        config = BanScenarioConfig(
            mac="csma", app="ecg_streaming", num_nodes=3, cycle_ms=30.0,
            sampling_hz=205.0, measure_s=2.0, seed=3, **kw)
        scenario = BanScenario(config)
        tracer = attach_span_tracer(scenario)
        scenario.run()
        return scenario, tracer.store

    def test_cca_spans_carry_exact_rx_energy(self, cal):
        _, store = self._traced()
        cca_spans = [s for s in store.spans if s.name == "mac.cca"]
        assert cca_spans
        per_window = 128e-6 * cal.radio_rx_a * cal.supply_v
        for span in cca_spans:
            assert span.duration_ticks == microseconds(128)
            assert span.energy_j == pytest.approx(per_window)
            assert span.status in ("busy", "idle")

    def test_backoff_wait_spans_are_radio_off(self):
        _, store = self._traced()
        waits = [s for s in store.spans if s.name == "mac.backoff_wait"]
        assert waits
        assert all(s.energy_j == 0.0 for s in waits)

    def test_cca_ledger_state_fully_reconciled(self):
        from repro.obs.spans import reconcile_spans
        scenario, store = self._traced()
        rows = [row for row in reconcile_spans(store, scenario)
                if row["state"] == "cca"]
        assert rows
        for row in rows:
            # Every CCA window belongs to exactly one packet, so span
            # coverage of the cca ledger state is complete.
            assert row["coverage"] == pytest.approx(1.0, rel=1e-9)

    def test_abandoned_frames_close_their_trace(self):
        _, store = self._traced(
            faults=FaultPlan(faults=(
                RadioLockup(node="node1", at_s=0.5, duration_s=0.8),)))
        statuses = {root.status for root in store.roots()}
        assert "abandoned" in statuses


class TestEnergyComparison:
    def test_csma_sits_between_aloha_and_tdma(self):
        _, csma = run_csma(num_nodes=5, measure_s=5.0, seed=3)
        aloha = BanScenario(BanScenarioConfig(
            mac="aloha", app="ecg_streaming", num_nodes=5,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=5.0,
            seed=3)).run()
        tdma = BanScenario(BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=5,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=5.0,
            seed=3)).run()
        node_csma = csma.node("node1").radio_mj
        # CCA dwells cost real RX-current energy on top of ALOHA's
        # bare TX events, but remain far below TDMA's beacon windows.
        assert node_csma > aloha.node("node1").radio_mj
        assert node_csma < 0.25 * tdma.node("node1").radio_mj

    def test_base_station_energy_similar_to_aloha(self):
        _, csma = run_csma(num_nodes=3, measure_s=5.0)
        aloha = BanScenario(BanScenarioConfig(
            mac="aloha", app="ecg_streaming", num_nodes=3,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=5.0,
            seed=2)).run()
        assert csma.base_station.radio_mj \
            == pytest.approx(aloha.base_station.radio_mj, rel=0.05)
