"""Over-the-air frame representation.

The nRF2401 ShockBurst frame is ``preamble | address | payload | CRC``;
only the payload is visible to software.  :class:`Frame` models one such
frame abstractly: we carry the payload as a Python object plus an explicit
``payload_bytes`` size (what determines airtime and energy), so the
simulator never serialises bits but always accounts the exact on-air size.

``kind`` classifies frames for the loss taxonomy: beacons, slot requests
and slot grants are *control* traffic (Section 4.2's "control packet
overhead"); application packets are *data*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

#: Destination address meaning "all nodes" (beacons use it).
BROADCAST = "*"


class FrameKind(enum.Enum):
    """What a frame carries, for MAC dispatch and energy attribution."""

    DATA = "data"
    BEACON = "beacon"
    SLOT_REQUEST = "slot_request"
    SLOT_GRANT = "slot_grant"

    @property
    def is_control(self) -> bool:
        """True for MAC control traffic (everything except DATA)."""
        return self is not FrameKind.DATA


@dataclass(frozen=True, slots=True)
class Frame:
    """One over-the-air frame.

    Attributes:
        src: transmitting node's address (its node id).
        dest: destination address, or :data:`BROADCAST`.
        kind: frame classification (see :class:`FrameKind`).
        payload_bytes: on-air payload size in bytes; drives airtime.
        payload: the modelled payload content (dict or dataclass); not
            serialised, but available to the receiver's MAC/application.
        frame_id: serial for tracing and in-flight bookkeeping.  0
            means "not yet transmitted": the radio stamps a
            per-simulation serial on first send, so ids restart at 1
            for every scenario.  (The previous process-global counter
            made the second run in one process trace different serials
            than the first; caught by tools/determinism_check.py.)
    """

    src: str
    dest: str
    kind: FrameKind
    payload_bytes: int
    payload: Any = None
    frame_id: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be >= 0, got {self.payload_bytes}")

    @property
    def is_broadcast(self) -> bool:
        """Whether this frame is addressed to every node."""
        return self.dest == BROADCAST

    def addressed_to(self, address: str) -> bool:
        """Whether the nRF2401 address filter at ``address`` accepts it."""
        return self.is_broadcast or self.dest == address

    def describe(self) -> str:
        """Short human-readable summary for traces."""
        return (f"{self.kind.value}#{self.frame_id} "
                f"{self.src}->{self.dest} ({self.payload_bytes}B)")


__all__ = ["BROADCAST", "Frame", "FrameKind"]
