"""Baseline estimators the paper's simulator is argued against."""

from .powertossim import (
    BasicBlock,
    BlockProgram,
    CycleMapping,
    build_program,
    estimate_mcu_energy,
    mapping_error_sweep,
)
from .naive import (
    ENERGY_PER_INSTRUCTION_J,
    BaselineEstimate,
    Fidelity,
    estimate,
    fidelity_ladder,
)

__all__ = [
    "BasicBlock",
    "BlockProgram",
    "CycleMapping",
    "build_program",
    "estimate_mcu_energy",
    "mapping_error_sweep",
    "ENERGY_PER_INSTRUCTION_J",
    "BaselineEstimate",
    "Fidelity",
    "estimate",
    "fidelity_ladder",
]
