"""Cache-fingerprint coverage analysis (FPC001/FPC002).

The on-disk :class:`~repro.exec.cache.ResultCache` is keyed by
``config_fingerprint``: a canonical serialisation that covers *exactly*
the ``dataclasses.fields`` of :class:`BanScenarioConfig`, recursively
through nested dataclasses, sequences and mappings.  Anything the
simulation reads that is **not** reachable from that encoding can vary
between two runs that hash identically — the cache-poisoning shape,
and a cross-tenant correctness bug once the cache is shared
(ROADMAP items 2 and 5).

This pass proves coverage statically, on top of the
:mod:`repro.lint.callgraph` receiver typing:

* **The fingerprint closure** — class names reachable from the
  configured roots (``BanScenarioConfig``, ``MultiBanScenario``) via
  dataclass field annotations, unwrapped through
  ``Optional``/``Union``/containers exactly as ``_encode`` recurses
  (``Callable`` fields stop the walk: a config embedding a callable is
  :class:`~repro.exec.cache.Uncacheable` and never reaches the cache).
  Subclasses of closure members join the closure — a field typed as a
  base holds instances of its subclasses.  Non-dataclass roots
  contribute their annotated ``__init__`` parameters.
* **FPC001** — simulation code reads ``cfg.attr`` where ``cfg`` is a
  closure *dataclass* but ``attr`` is not a dataclass field (nor a
  method, property or ``ClassVar``).  Such an attribute influences
  behaviour without influencing the key: two configs with different
  values of it fingerprint identically.
* **FPC002** — a config-shaped dataclass (name matching
  ``(Config|Spec|Plan)$``) defined in a cache-salted package is read
  by simulation code, yet is neither in the fingerprint closure nor
  constructed anywhere inside salted simulation code.  Instances must
  then originate outside the fingerprint — unkeyed configuration
  reaching simulated behaviour.  (Derived configs the scenario builder
  assembles *from* fingerprinted fields, like the per-MAC config
  objects, are exempt: their values are functions of the key.)
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import (CallGraph, annotation_class_names,
                        build_call_graph, _dotted)
from .config import LintConfig
from .engine import FileContext, Finding

CODES = ("FPC001", "FPC002")

#: Annotation heads that stop the closure walk: values of these types
#: have no canonical serialisation, so ``_encode`` raises
#: ``Uncacheable`` before their contents could matter.
_UNCACHEABLE_HEADS = frozenset({"Callable", "Type", "type"})

#: Container heads ``_encode`` recurses through element-wise.
_CONTAINER_HEADS = frozenset({
    "Dict", "FrozenSet", "Iterable", "List", "Mapping", "MutableMapping",
    "Optional", "Sequence", "Set", "Tuple", "Union", "dict", "frozenset",
    "list", "set", "tuple",
})


def field_type_names(annotation: Optional[ast.AST]) -> Tuple[str, ...]:
    """Every class-name leaf of a *field* annotation.

    Unlike :func:`~repro.lint.callgraph.annotation_class_names` (which
    types a receiver, so container element types must not leak), the
    fingerprint encoder recurses into sequences and mappings — so
    ``Optional[Sequence[NodeSpec]]`` contributes ``NodeSpec`` here.
    """
    if annotation is None:
        return ()
    if isinstance(annotation, ast.Constant):
        if not isinstance(annotation.value, str):
            return ()
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return ()
    if isinstance(annotation, ast.Subscript):
        head = (_dotted(annotation.value) or "").split(".")[-1]
        if head in _UNCACHEABLE_HEADS:
            return ()
        inner = annotation.slice
        elements = (inner.elts if isinstance(inner, ast.Tuple)
                    else [inner])
        names: List[str] = []
        for element in elements:
            names.extend(field_type_names(element))
        return tuple(names)
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):
        return (field_type_names(annotation.left)
                + field_type_names(annotation.right))
    return annotation_class_names(annotation)


def fingerprint_closure(graph: CallGraph,
                        roots: Sequence[str]) -> Set[str]:
    """Class names whose fields feed ``config_fingerprint``."""
    closure: Set[str] = set()
    worklist: List[str] = [name for name in roots
                           if name in graph.classes]
    while worklist:
        name = worklist.pop()
        if name in closure:
            continue
        closure.add(name)
        for info in graph.mro(name):
            if info.is_dataclass or name not in roots:
                for ann in info.ann_fields.values():
                    for leaf in field_type_names(ann.annotation):
                        if leaf in graph.classes:
                            worklist.append(leaf)
            else:
                # Non-dataclass root (MultiBanScenario): follow the
                # annotated constructor parameters instead.
                init = info.methods.get("__init__")
                if init is None:
                    continue
                arguments = init.node.args  # type: ignore[attr-defined]
                for arg in (arguments.posonlyargs + arguments.args
                            + arguments.kwonlyargs):
                    for leaf in field_type_names(arg.annotation):
                        if leaf in graph.classes:
                            worklist.append(leaf)
    # Subclass expansion: a base-typed field holds subclass instances.
    changed = True
    while changed:
        changed = False
        for name in graph.classes:
            if name in closure:
                continue
            if any(info.name in closure
                   for info in graph.mro(name)[1:]):
                closure.add(name)
                changed = True
    return closure


def _is_salted(ctx: FileContext, packages: Sequence[str]) -> bool:
    return ctx.package in packages


def analyze_fingerprint(contexts: Sequence[FileContext],
                        config: LintConfig,
                        graph: Optional[CallGraph] = None,
                        ) -> Tuple[List[Finding], Dict[str, object]]:
    """Run the FPC closure + rules; return findings and report extras."""
    if graph is None:
        graph = build_call_graph(contexts)
    closure = fingerprint_closure(graph, config.fpc_roots)
    pattern = re.compile(config.fpc_pattern)
    packages = config.fpc_packages
    findings: List[Finding] = []

    #: Closure dataclasses, with their fingerprinted/known attr names.
    known_attrs: Dict[str, Tuple[Set[str], Set[str]]] = {}
    for name in closure:
        infos = graph.classes.get(name, ())
        if not any(info.is_dataclass for info in infos):
            continue
        fields, callables, classvars, _ = graph.class_attr_names(name)
        known_attrs[name] = (fields, callables | classvars)

    #: name -> sample read site, for config-shaped dataclasses read in
    #: salted code; and the set constructed in salted code.
    reads: Dict[str, Tuple[FileContext, int, int, str]] = {}
    constructed: Set[str] = set()

    for ctx in contexts:
        if not _is_salted(ctx, packages):
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                callee = _dotted(node.func)
                if callee is not None:
                    constructed.add(callee.split(".")[-1])

    for qualname, function in graph.functions.items():
        ctx = function.ctx
        if not _is_salted(ctx, packages):
            continue
        env = graph._local_env(function)
        for node in ast.walk(function.node):
            if not isinstance(node, ast.Attribute) \
                    or not isinstance(node.ctx, ast.Load):
                continue
            types = graph._expr_types(node.value, env)
            for class_name in types:
                if class_name in known_attrs:
                    fields, other = known_attrs[class_name]
                    if node.attr in fields or node.attr in other \
                            or node.attr.startswith("__"):
                        continue
                    findings.append(ctx.finding_at(
                        "FPC001", node.lineno, node.col_offset,
                        f"read of {class_name}.{node.attr} which is "
                        f"not a dataclass field: config_fingerprint "
                        f"never encodes it, so two configs differing "
                        f"only here hash identically (cache "
                        f"poisoning); make it a field or derive it "
                        f"from fields"))
                    break
                if class_name not in closure \
                        and pattern.search(class_name) \
                        and class_name not in reads \
                        and any(info.is_dataclass and _is_salted(
                            info.ctx, packages)
                            for info in graph.classes.get(class_name, ())):
                    reads[class_name] = (ctx, node.lineno,
                                         node.col_offset, node.attr)

    for class_name, (ctx, line, col, attr) in sorted(reads.items()):
        if class_name in constructed:
            continue  # derived inside simulation code from the key
        for info in graph.classes[class_name]:
            if not info.is_dataclass or not _is_salted(info.ctx,
                                                       packages):
                continue
            findings.append(info.ctx.finding_at(
                "FPC002", info.node.lineno, info.node.col_offset,
                f"config dataclass {class_name} is read by simulation "
                f"code ({ctx.path}:{line} reads .{attr}) but is "
                f"neither reachable from config_fingerprint nor "
                f"constructed inside salted simulation code — its "
                f"values bypass the result-cache key; fingerprint it "
                f"or derive it from fingerprinted fields"))

    extras: Dict[str, object] = {
        "fingerprint": {
            "roots": sorted(set(config.fpc_roots)
                            & set(graph.classes)),
            "closure": sorted(closure),
            "checked_dataclasses": sorted(known_attrs),
        },
    }
    return findings, extras


__all__ = [
    "CODES",
    "analyze_fingerprint",
    "field_type_names",
    "fingerprint_closure",
]
