"""Per-link frame loss models.

The channel asks the loss model, once per (transmission, receiver) pair,
whether the frame arrives bit-corrupted at that receiver *independently of
collisions* (which the channel detects itself from airtime overlap).  A
corrupted frame fails the nRF2401's CRC and is dropped inside the radio.

Draws use the simulator's named RNG streams, so results are reproducible
and insensitive to node count or call order.

Performance notes: stream *names* (``loss.src->dst``) are cached per
link so the per-frame path never re-formats strings, and
:class:`DistanceLoss` precomputes its whole pairwise PER table — with
numpy when available — since the topology it reads is immutable.  Both
caches are value-transparent: the PER table is verified bit-identical
to the scalar formula (see tests), and stream identity is untouched.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..sim.rng import RngRegistry
from .topology import BodyTopology

try:  # pragma: no cover - exercised via DistanceLoss paths
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None


class _StreamNameCache:
    """Per-link ``loss.src->dst`` stream names, formatted once."""

    __slots__ = ("_names",)

    def __init__(self) -> None:
        self._names: Dict[Tuple[str, str], str] = {}

    def name_for(self, src: str, dst: str) -> str:
        key = (src, dst)
        name = self._names.get(key)
        if name is None:
            name = f"loss.{src}->{dst}"
            self._names[key] = name
        return name


class LossModel:
    """Base class: lossless channel."""

    def is_corrupted(self, rng: RngRegistry, src: str, dst: str,
                     frame_id: int) -> bool:
        """Whether this frame arrives corrupted at ``dst``."""
        return False


class PerfectChannel(LossModel):
    """No bit errors ever (the paper's validation setting: short on-body
    links at -5 dBm are effectively error-free over 60 s)."""


class UniformLoss(LossModel):
    """Every link corrupts frames i.i.d. with probability ``per``."""

    def __init__(self, per: float) -> None:
        if not 0.0 <= per <= 1.0:
            raise ValueError(f"packet error rate must be in [0,1]: {per}")
        self.per = per
        self._stream_names = _StreamNameCache()

    def is_corrupted(self, rng: RngRegistry, src: str, dst: str,
                     frame_id: int) -> bool:
        if self.per == 0.0:
            return False
        stream = rng.stream(self._stream_names.name_for(src, dst))
        return stream.random() < self.per


class PerLinkLoss(LossModel):
    """Explicit per-link packet error rates; unlisted links are perfect."""

    def __init__(self, per_link: Dict[Tuple[str, str], float]) -> None:
        for link, per in per_link.items():
            if not 0.0 <= per <= 1.0:
                raise ValueError(f"PER for link {link} out of range: {per}")
        self._per_link = dict(per_link)
        self._stream_names = _StreamNameCache()

    def is_corrupted(self, rng: RngRegistry, src: str, dst: str,
                     frame_id: int) -> bool:
        per = self._per_link.get((src, dst), 0.0)
        if per == 0.0:
            return False
        name = self._stream_names.name_for(src, dst)
        return rng.stream(name).random() < per


class DeterministicLoss(LossModel):
    """Drop exact occurrences of a link's traffic — no randomness.

    Each (src, dst) link keeps an occurrence counter: the n-th call for
    that link (0-based) is corrupted iff ``n`` is in the link's drop
    set.  This pins protocol recovery paths in tests — e.g. "drop
    exactly the grant beacon" or "drop beacons 3..5 at node1" — with
    the loss decision independent of RNG stream state.

    Args:
        drops: map from ``(src, dst)`` to the occurrence indices to
            corrupt on that link.  Unlisted links are perfect.
    """

    def __init__(self, drops: Dict[Tuple[str, str], Iterable[int]]) -> None:
        self._drops: Dict[Tuple[str, str], frozenset] = {}
        for link, indices in drops.items():
            indices = frozenset(indices)
            for n in indices:
                if n < 0:
                    raise ValueError(
                        f"occurrence index for link {link} must be >= 0: {n}")
            self._drops[link] = indices
        self._seen: Dict[Tuple[str, str], int] = {}
        self.dropped = 0

    def is_corrupted(self, rng: RngRegistry, src: str, dst: str,
                     frame_id: int) -> bool:
        occurrence = self._seen.get((src, dst), 0)
        self._seen[(src, dst)] = occurrence + 1
        if occurrence in self._drops.get((src, dst), ()):
            self.dropped += 1
            return True
        return False


class DistanceLoss(LossModel):
    """PER grows with link distance on a :class:`BodyTopology`.

    A simple monotone model for robustness studies:
    ``per(d) = min(1, floor_per + slope * d)``.
    """

    def __init__(self, topology: BodyTopology, floor_per: float = 0.0,
                 slope_per_m: float = 0.05) -> None:
        if floor_per < 0 or slope_per_m < 0:
            raise ValueError("loss parameters must be non-negative")
        self._topology = topology
        self._floor = floor_per
        self._slope = slope_per_m
        self._stream_names = _StreamNameCache()
        # The topology is immutable, so the whole pairwise PER table can
        # be computed up front — vectorised over every link at once when
        # numpy is present.  Values are bit-identical to the scalar
        # formula (same operation order; numpy's x**2 and sqrt round the
        # same way), which tests assert with exact equality.
        self._per_table: Optional[Dict[Tuple[str, str], float]] = \
            self._build_per_table()

    def _build_per_table(self) -> Optional[Dict[Tuple[str, str], float]]:
        if _np is None:
            return None
        names = self._topology.nodes()
        if not names:
            return {}
        positions = [self._topology.position_of(node) for node in names]
        xs = _np.array([p.x for p in positions])
        ys = _np.array([p.y for p in positions])
        zs = _np.array([p.z for p in positions])
        # Mirror Position.distance_to exactly: (dx**2 + dy**2) + dz**2,
        # then sqrt; ** 2 is the same correctly rounded square as x*x.
        dx2 = (xs[:, None] - xs[None, :]) ** 2
        dy2 = (ys[:, None] - ys[None, :]) ** 2
        dz2 = (zs[:, None] - zs[None, :]) ** 2
        distance = _np.sqrt(dx2 + dy2 + dz2)
        per = _np.minimum(1.0, self._floor + self._slope * distance)
        table: Dict[Tuple[str, str], float] = {}
        for i, src in enumerate(names):
            row = per[i]
            for j, dst in enumerate(names):
                table[(src, dst)] = float(row[j])
        return table

    def per_for(self, src: str, dst: str) -> float:
        """Packet error rate for the (src, dst) link."""
        table = self._per_table
        if table is not None:
            per = table.get((src, dst))
            if per is not None:
                return per
            # Unknown node: fall through so position_of raises the
            # canonical KeyError.
        distance = self._topology.position_of(src).distance_to(
            self._topology.position_of(dst))
        return min(1.0, self._floor + self._slope * distance)

    def is_corrupted(self, rng: RngRegistry, src: str, dst: str,
                     frame_id: int) -> bool:
        per = self.per_for(src, dst)
        if per == 0.0:
            return False
        name = self._stream_names.name_for(src, dst)
        return rng.stream(name).random() < per


__all__ = [
    "LossModel",
    "PerfectChannel",
    "UniformLoss",
    "PerLinkLoss",
    "DeterministicLoss",
    "DistanceLoss",
]
