"""Regression tests for the resource leaks the lifecycle lint found.

The LIF001/LIF004 findings over the shipped tree were real bugs, not
lint noise: MACs left their radio in stand-by after stopping (booking
0.9 mA against a dead node forever), the base station's beacon cadence
survived its own stop, periodic snapshotters could never be disarmed,
and a CLI command that aborted mid-run lost its trace file un-flushed.
Each test here fails against the pre-fix code and pins the repaired
behaviour — including the mid-ShockBurst case, where the power-down
must *defer* to the TX-completion callback rather than raise
``RadioError``.
"""

import argparse
import json

import pytest

from repro.cli import _Observability
from repro.core.calibration import DEFAULT_CALIBRATION
from repro.hw.mcu import Msp430
from repro.hw.radio import Nrf2401
from repro.mac.aloha import AlohaBaseMac, AlohaConfig, AlohaNodeMac
from repro.mac.tdma_static import (StaticTdmaBaseMac, StaticTdmaConfig,
                                   StaticTdmaNodeMac)
from repro.obs.instrument import (PeriodicSnapshotter,
                                  attach_periodic_snapshots)
from repro.obs.metrics import MetricsRegistry
from repro.phy.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.simtime import microseconds, milliseconds, seconds
from repro.tinyos.scheduler import TaskScheduler

CAL = DEFAULT_CALIBRATION


def _tdma_pair(sim, num_nodes=1):
    """A hand-built static-TDMA base station plus nodes."""
    channel = Channel(sim)
    config = StaticTdmaConfig(cycle_ticks=milliseconds(30.0),
                              num_slots=max(1, num_nodes))
    bs_radio = Nrf2401(sim, CAL, channel, "base_station",
                       name="bs.radio")
    bs_mac = StaticTdmaBaseMac(
        sim, bs_radio, TaskScheduler(sim, Msp430(sim, CAL)),
        CAL, config)
    nodes = []
    for index in range(1, num_nodes + 1):
        node_id = f"node{index}"
        radio = Nrf2401(sim, CAL, channel, node_id,
                        name=f"{node_id}.radio")
        mac = StaticTdmaNodeMac(
            sim, radio, TaskScheduler(sim, Msp430(sim, CAL)),
            CAL, config, preassigned_slot=index)
        bs_mac.schedule.assign(index, node_id)
        mac.payload_provider = lambda: (18, {"d": 1})
        nodes.append((mac, radio))
    return bs_mac, bs_radio, nodes


def _run_until_transmitting(sim, radio, deadline_ticks,
                            step=microseconds(20.0)):
    """Advance in small steps until ``radio`` is mid-ShockBurst."""
    while sim.now < deadline_ticks:
        sim.run_until(sim.now + step)
        if radio.is_transmitting:
            return True
    return False


class TestNodeMacReleasesRadio:
    def test_stop_powers_radio_down(self, sim):
        bs_mac, _, nodes = _tdma_pair(sim)
        mac, radio = nodes[0]
        bs_mac.start()
        mac.start()
        sim.run_until(seconds(0.5))
        assert radio.state != "power_down"
        mac.stop()
        assert radio.state == "power_down"

    def test_stop_mid_tx_defers_to_completion(self, sim):
        bs_mac, _, nodes = _tdma_pair(sim)
        mac, radio = nodes[0]
        bs_mac.start()
        mac.start()
        assert _run_until_transmitting(sim, radio, seconds(2.0)), \
            "node never transmitted"
        mac.stop()  # must not raise RadioError mid-ShockBurst
        assert radio.is_transmitting  # the burst finishes first
        sim.run_until(sim.now + milliseconds(5.0))
        assert radio.state == "power_down"

    def test_stopped_node_accrues_no_standby_energy(self, sim):
        bs_mac, _, nodes = _tdma_pair(sim)
        mac, radio = nodes[0]
        bs_mac.start()
        mac.start()
        sim.run_until(seconds(0.5))
        mac.stop()
        bs_mac.stop()
        settled = radio.energy_mj()
        sim.run_until(seconds(10.0))
        assert radio.energy_mj() == pytest.approx(settled)


class TestBaseStationMacReleasesRadio:
    def test_stop_powers_radio_down_and_kills_beacons(self, sim):
        bs_mac, bs_radio, _ = _tdma_pair(sim)
        bs_mac.start()
        sim.run_until(seconds(0.5))
        sent = bs_mac.counters.beacons_sent
        assert sent > 0
        bs_mac.stop()
        sim.run_until(seconds(2.0))
        assert bs_radio.state == "power_down"
        assert bs_mac.counters.beacons_sent == sent

    def test_stop_mid_beacon_defers_and_skips_rx(self, sim):
        bs_mac, bs_radio, _ = _tdma_pair(sim)
        bs_mac.start()
        assert _run_until_transmitting(sim, bs_radio, seconds(1.0)), \
            "base station never transmitted a beacon"
        bs_mac.stop()
        assert bs_radio.is_transmitting
        sim.run_until(sim.now + milliseconds(5.0))
        # The completion callback must power down instead of
        # re-entering the listen phase.
        assert bs_radio.state == "power_down"
        assert not bs_radio.is_receiving


class TestAlohaMacsReleaseRadio:
    def _pair(self, sim):
        channel = Channel(sim)
        config = AlohaConfig(
            poll_interval_ticks=milliseconds(30.0))
        bs_radio = Nrf2401(sim, CAL, channel, "base_station",
                           name="bs.radio")
        bs_mac = AlohaBaseMac(
            sim, bs_radio, TaskScheduler(sim, Msp430(sim, CAL)), CAL,
            config)
        radio = Nrf2401(sim, CAL, channel, "node1",
                        name="node1.radio")
        mac = AlohaNodeMac(
            sim, radio, TaskScheduler(sim, Msp430(sim, CAL)), CAL,
            config)
        mac.payload_provider = lambda: (18, {"d": 1})
        return bs_mac, bs_radio, mac, radio

    def test_collector_stop_powers_down(self, sim):
        bs_mac, bs_radio, mac, _ = self._pair(sim)
        bs_mac.start()
        mac.start()
        sim.run_until(seconds(0.5))
        assert bs_radio.is_receiving
        bs_mac.stop()
        assert bs_radio.state == "power_down"

    def test_node_stop_powers_down(self, sim):
        bs_mac, _, mac, radio = self._pair(sim)
        bs_mac.start()
        mac.start()
        sim.run_until(seconds(0.5))
        mac.stop()
        sim.run_until(seconds(1.0))
        assert radio.state == "power_down"


class TestSnapshotterStop:
    def test_stop_disarms_future_fires(self, sim):
        registry = MetricsRegistry()
        snap = attach_periodic_snapshots(sim, registry, period_s=0.1)
        sim.run_until(seconds(1.05))
        taken = snap.samples
        assert taken >= 10
        snap.stop()
        sim.run_until(seconds(5.0))
        assert snap.samples == taken

    def test_stop_before_any_fire(self, sim):
        registry = MetricsRegistry()
        snap = PeriodicSnapshotter(sim, None, registry, period_s=0.1)
        snap.start()
        snap.stop()
        sim.run_until(seconds(2.0))
        assert snap.samples == 0

    def test_stop_is_idempotent_and_rearmable(self, sim):
        registry = MetricsRegistry()
        snap = PeriodicSnapshotter(sim, None, registry, period_s=0.1)
        snap.start()
        snap.stop()
        snap.stop()  # no-op, not an error
        snap.start()  # a stopped snapshotter may be re-armed
        sim.run_until(seconds(0.55))
        assert snap.samples == 5


class TestObservabilityUnwind:
    def _obs(self, trace_path):
        args = argparse.Namespace(metrics=None, trace_jsonl=trace_path,
                                  metrics_period=5.0, profile=False,
                                  spans=None, spans_perfetto=None,
                                  command="run")
        return _Observability(args)

    def test_close_flushes_sink_without_finish(self, tmp_path):
        """The unwind backstop: an aborted command still gets its
        trace records on disk."""
        path = tmp_path / "trace.jsonl"
        obs = self._obs(str(path))
        recorder = obs.make_trace()
        recorder.record(0, "node1", "boot", "")
        recorder.record(10, "node1", "tx", "frame=1")
        obs.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["kind"] == "tx"

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        obs = self._obs(str(path))
        obs.make_trace().record(0, "node1", "boot", "")
        obs.close()
        obs.close()
        assert len(path.read_text(encoding="utf-8")
                   .splitlines()) == 1

    def test_close_without_sink_is_noop(self, tmp_path):
        obs = self._obs(None)
        obs.close()  # no trace requested: nothing to flush
