"""Tests for the PowerTOSSIM-style basic-block CPU estimator."""

import pytest

from repro.baselines.powertossim import (
    BasicBlock,
    BlockProgram,
    CycleMapping,
    build_program,
    estimate_mcu_energy,
    mapping_error_sweep,
)
from repro.net.scenario import BanScenarioConfig


def config_for(app="ecg_streaming", **kw):
    defaults = dict(mac="static", app=app, num_nodes=5, cycle_ms=30.0,
                    sampling_hz=205.0 if app == "ecg_streaming" else None,
                    measure_s=60.0)
    defaults.update(kw)
    return BanScenarioConfig(**defaults)


class TestBlockProgram:
    def test_duplicate_blocks_rejected(self):
        with pytest.raises(ValueError):
            BlockProgram([BasicBlock("a", 1), BasicBlock("a", 2)])

    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock("a", -1)

    def test_counting(self):
        program = BlockProgram([BasicBlock("a", 10)])
        program.count("a", 3)
        program.count("a", 2)
        assert program.counts() == {"a": 5.0}

    def test_unknown_block_rejected(self):
        program = BlockProgram([BasicBlock("a", 10)])
        with pytest.raises(KeyError):
            program.count("b", 1)
        with pytest.raises(ValueError):
            program.count("a", -1)

    def test_true_mapping_reproduces_costs(self):
        program = BlockProgram([BasicBlock("a", 10), BasicBlock("b", 5)])
        program.count("a", 2)
        program.count("b", 4)
        assert program.true_mapping().cycles_for(program.counts()) == 40

    def test_mapping_missing_block(self):
        mapping = CycleMapping({"a": 10.0})
        with pytest.raises(KeyError):
            mapping.cycles_for({"zzz": 1.0})


class TestCycleMapping:
    def test_perturbation_bounds(self):
        mapping = CycleMapping({f"b{i}": 100.0 for i in range(50)})
        noisy = mapping.perturbed(0.2, seed=1)
        for name, cycles in noisy.cycles_per_block.items():
            assert 80.0 <= cycles <= 120.0
        values = set(noisy.cycles_per_block.values())
        assert len(values) > 40  # per-block factors differ

    def test_perturbation_deterministic(self):
        mapping = CycleMapping({"a": 10.0, "b": 20.0})
        assert mapping.perturbed(0.1, seed=3).cycles_per_block \
            == mapping.perturbed(0.1, seed=3).cycles_per_block

    def test_zero_error_is_identity(self):
        mapping = CycleMapping({"a": 10.0})
        assert mapping.perturbed(0.0).cycles_per_block == {"a": 10.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleMapping({"a": 1.0}).perturbed(1.5)


class TestEstimation:
    def test_perfect_mapping_matches_paper_model(self):
        """With an exact binary mapping, block counting reproduces the
        paper's MCU figure (minus wake-up transitions)."""
        config = config_for()
        program = build_program(config)
        estimate = estimate_mcu_energy(config, program.true_mapping(),
                                       program)
        # Paper sim for Table 1 row 1: 161.2 mJ; block counting misses
        # only the 6 us wake-ups (~0.5 mJ over 60 s).
        assert estimate == pytest.approx(161.2, rel=0.01)

    def test_rpeak_program_includes_algorithm_block(self):
        program = build_program(config_for(app="rpeak", cycle_ms=120.0))
        names = {block.name for block in program.blocks}
        assert "rpeak_algorithm" in names
        counts = program.counts()
        assert counts["rpeak_algorithm"] == counts["adc_sample"]
        assert counts["packet_prepare"] < counts["beacon_handler"]

    def test_error_grows_with_mapping_degradation(self):
        """Measured against the true-model estimate: a perfect mapping
        is exact, a degraded one drifts (a lucky perturbation can land
        *closer* to the hardware number, which is why the reference
        here is the model, not the measurement)."""
        config = config_for()
        reference = estimate_mcu_energy(
            config, build_program(config).true_mapping())
        sweep = mapping_error_sweep(config, [0.0, 0.1, 0.3],
                                    reference_mj=reference, seed=2)
        assert sweep[0.0] == pytest.approx(0.0, abs=1e-12)
        assert sweep[0.1] > 0.0
        assert sweep[0.3] > sweep[0.1]

    def test_block_counting_says_nothing_about_radio(self):
        """The structural criticism: the technique only covers the MCU;
        at Table 1 row 1 the radio is ~76% of the node budget."""
        config = config_for()
        mcu = estimate_mcu_energy(config,
                                  build_program(config).true_mapping())
        radio_real = 540.6
        assert mcu < 0.35 * (mcu + radio_real)
