"""Tests for the analytic predictor and the baseline fidelity ladder."""

import pytest

from conftest import run_quick
from repro.analysis.closed_form import beacon_window_s, explain, predict
from repro.baselines.naive import Fidelity, estimate, fidelity_ladder
from repro.net.scenario import BanScenarioConfig


def config_for(**kw):
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=5,
                    cycle_ms=30.0, sampling_hz=205.0, measure_s=60.0)
    defaults.update(kw)
    return BanScenarioConfig(**defaults)


class TestAnalyticPredictor:
    def test_matches_paper_table1_row1(self):
        pred = predict(config_for())
        assert pred.radio_mj == pytest.approx(502.9, rel=0.01)
        assert pred.mcu_mj == pytest.approx(161.2, rel=0.01)

    def test_matches_simulator_streaming(self):
        config = config_for(measure_s=4.0, num_nodes=3)
        pred = predict(config)
        _, result = run_quick(app="ecg_streaming", cycle_ms=30.0,
                              sampling_hz=205.0, num_nodes=3,
                              measure_s=4.0)
        node = result.node("node1")
        assert node.radio_mj == pytest.approx(pred.radio_mj, rel=0.005)
        assert node.mcu_mj == pytest.approx(pred.mcu_mj, rel=0.005)

    def test_matches_simulator_rpeak(self):
        config = config_for(app="rpeak", cycle_ms=120.0, sampling_hz=None,
                            measure_s=6.0)
        pred = predict(config)
        _, result = run_quick(app="rpeak", cycle_ms=120.0, num_nodes=5,
                              measure_s=6.0)
        node = result.node("node1")
        # Beat traffic is stochastic-ish (detection timing), so a
        # slightly wider band than streaming.
        assert node.radio_mj == pytest.approx(pred.radio_mj, rel=0.02)
        assert node.mcu_mj == pytest.approx(pred.mcu_mj, rel=0.02)

    def test_matches_simulator_dynamic(self):
        config = config_for(mac="dynamic", sampling_hz=None,
                            num_nodes=3, measure_s=4.0)
        pred = predict(config)
        _, result = run_quick(mac="dynamic", app="ecg_streaming",
                              num_nodes=3, measure_s=4.0)
        node = result.node("node1")
        assert node.radio_mj == pytest.approx(pred.radio_mj, rel=0.01)
        assert node.mcu_mj == pytest.approx(pred.mcu_mj, rel=0.01)

    def test_window_static_vs_dynamic(self):
        static = beacon_window_s(config_for())
        dynamic = beacon_window_s(config_for(mac="dynamic", num_nodes=5,
                                             sampling_hz=None))
        assert static == pytest.approx(3.28e-3, rel=0.01)
        # 60 ms dynamic cycle: 2.048 + 0.017*60 + air + tail ~ 3.24 ms.
        assert dynamic == pytest.approx(3.24e-3, rel=0.02)

    def test_asic_energy(self):
        assert predict(config_for()).asic_mj == pytest.approx(630.0)

    def test_explain_contains_numbers(self):
        text = explain(config_for())
        assert "2000.0 cycles" in text
        assert "radio: 50" in text


class TestFidelityLadder:
    def test_ladder_orders_by_accuracy(self):
        config = config_for()
        l0, l1, l2 = fidelity_ladder(config)
        # Radio estimates rise monotonically toward the truth (~540 real).
        assert l0.radio_mj < l1.radio_mj < l2.radio_mj
        assert l2.radio_mj == pytest.approx(502.9, rel=0.01)

    def test_l0_misses_an_order_of_magnitude(self):
        l0 = estimate(config_for(), Fidelity.L0_AIRTIME)
        assert l0.radio_mj < 0.1 * 540.6

    def test_l1_adds_only_tx_overhead(self):
        config = config_for()
        l0 = estimate(config, Fidelity.L0_AIRTIME)
        l1 = estimate(config, Fidelity.L1_TX_OVERHEAD)
        cal = config.calibration
        overhead_s = cal.radio_timing.tx_settle_s \
            + cal.radio_timing.tx_tail_s
        expected_delta = 2000 * overhead_s * cal.radio_tx_a \
            * cal.supply_v * 1e3
        assert l1.radio_mj - l0.radio_mj \
            == pytest.approx(expected_delta, rel=0.01)

    def test_l2_equals_analytic(self):
        config = config_for()
        l2 = estimate(config, Fidelity.L2_GUARD_WINDOWS)
        pred = predict(config)
        assert l2.radio_mj == pred.radio_mj
        assert l2.mcu_mj == pred.mcu_mj

    def test_rpeak_ladder(self):
        config = config_for(app="rpeak", cycle_ms=120.0,
                            sampling_hz=None)
        l0, _, l2 = fidelity_ladder(config)
        assert l0.radio_mj < 0.05 * l2.radio_mj  # almost no TX traffic
        assert l2.radio_mj == pytest.approx(116.7, rel=0.02)

    def test_naive_mcu_underestimates(self):
        l0 = estimate(config_for(), Fidelity.L0_AIRTIME)
        # Instruction-count-only: far below the measured 170.2 mJ.
        assert l0.mcu_mj < 0.75 * 170.2
