"""The lint rules: named, individually testable AST checks.

Each rule is a pure function ``FileContext -> list[Finding]`` wrapped
in a :class:`Rule` record carrying its code, title and rationale (the
rationale is what ``docs/static_analysis.md`` and ``--list-rules``
print).  Rules never consult global state: everything they need —
source lines, AST, configuration — arrives in the context, which is
what makes them unit-testable on five-line fixture snippets.

The catalog:

* DET001 — global-RNG draws perturb every other stream's sequence and
  break seed-reproducibility; only named, seeded generators are legal.
* DET002 — wall-clock reads make results depend on host speed; only
  allowlisted profiling files may time anything.
* DET003 — set iteration order is salted per process; in packages
  whose iteration order can reach the event queue it must be sorted.
* FLT001 — accumulated energies/times are never exactly equal; an
  ``==`` on them silently becomes machine-dependent.
* EXC001 — an overbroad ``except`` can swallow a SimulationError and
  turn a crash into a silently-wrong energy figure.
* MUT001 — mutable defaults leak state between calls (and between
  scenarios sharing a config function).
* CFG001 — config dataclasses feed the result-cache fingerprint;
  unannotated or unordered fields make the fingerprint unstable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from .engine import FileContext, Finding


@dataclass(frozen=True)
class Rule:
    """One named lint rule (callable on a :class:`FileContext`)."""

    code: str
    title: str
    rationale: str
    check: Callable[[FileContext], List[Finding]]

    def __call__(self, context: FileContext) -> List[Finding]:
        return self.check(context)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for nested Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the plain-module import of ``module`` is bound to."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name == module:
                    aliases.add(item.asname
                                or item.name.split(".")[0])
    return aliases


def _import_from_bindings(tree: ast.AST, module: str) -> Dict[str, str]:
    """``{local_name: original_name}`` for ``from module import ...``."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for item in node.names:
                bindings[item.asname or item.name] = item.name
    return bindings


# ----------------------------------------------------------------------
# DET001 — no global/module-level RNG
# ----------------------------------------------------------------------
#: numpy.random attributes that *construct* (seedable) generators.
_NP_GENERATOR_CTORS = frozenset({
    "default_rng", "Generator", "SeedSequence", "PCG64", "MT19937",
    "Philox", "SFC64", "RandomState", "BitGenerator",
})


def _check_det001(context: FileContext) -> List[Finding]:
    tree = context.tree
    findings: List[Finding] = []
    random_aliases = _module_aliases(tree, "random")
    numpy_aliases = _module_aliases(tree, "numpy")
    # ``import numpy.random`` binds the *numpy* name too.
    numpy_aliases |= _module_aliases(tree, "numpy.random")
    np_random_aliases = {
        local for local, original
        in _import_from_bindings(tree, "numpy").items()
        if original == "random"}

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for item in node.names:
                    if item.name != "Random":
                        findings.append(context.finding(
                            "DET001", node,
                            f"'from random import {item.name}' binds the "
                            "process-global RNG; use a seeded "
                            "random.Random instance (e.g. "
                            "Simulator.rng.stream(purpose))"))
            elif node.module == "numpy.random":
                for item in node.names:
                    if item.name not in _NP_GENERATOR_CTORS:
                        findings.append(context.finding(
                            "DET001", node,
                            f"'from numpy.random import {item.name}' "
                            "draws from the global NumPy RNG; use "
                            "numpy.random.default_rng(seed)"))
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if (len(parts) == 2 and parts[0] in random_aliases
                    and parts[1] != "Random"):
                findings.append(context.finding(
                    "DET001", node,
                    f"{name}() draws from / mutates the process-global "
                    "RNG; use a seeded random.Random stream"))
            elif ((len(parts) == 3 and parts[0] in numpy_aliases
                   and parts[1] == "random"
                   and parts[2] not in _NP_GENERATOR_CTORS)
                  or (len(parts) == 2
                      and parts[0] in np_random_aliases
                      and parts[1] not in _NP_GENERATOR_CTORS)):
                findings.append(context.finding(
                    "DET001", node,
                    f"{name}() draws from the global NumPy RNG; use "
                    "numpy.random.default_rng(seed)"))
    return findings


# ----------------------------------------------------------------------
# DET002 — no wall-clock reads outside the allowlist
# ----------------------------------------------------------------------
_TIME_READS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "clock_gettime",
    "clock_gettime_ns",
})
_DATETIME_READS = frozenset({"now", "utcnow", "today"})


def _check_det002(context: FileContext) -> List[Finding]:
    if any(context.module_path.endswith(entry)
           for entry in context.config.det002_allow):
        return []
    tree = context.tree
    findings: List[Finding] = []
    time_aliases = _module_aliases(tree, "time")
    datetime_mod_aliases = _module_aliases(tree, "datetime")
    time_bindings = {
        local: original for local, original
        in _import_from_bindings(tree, "time").items()
        if original in _TIME_READS}
    datetime_classes = {
        local for local, original
        in _import_from_bindings(tree, "datetime").items()
        if original in ("datetime", "date")}

    def flag(node: ast.AST, what: str) -> None:
        findings.append(context.finding(
            "DET002", node,
            f"{what} reads the wall clock; simulation quantities must "
            "derive from sim ticks (profiling files belong in the "
            "[tool.repro-lint.det002] allow list)"))

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for item in node.names:
                if item.name in _TIME_READS:
                    flag(node, f"'from time import {item.name}'")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) == 1 and parts[0] in time_bindings:
                flag(node, f"{name}()")
            elif (len(parts) == 2 and parts[0] in time_aliases
                    and parts[1] in _TIME_READS):
                flag(node, f"{name}()")
            elif (len(parts) == 2 and parts[0] in datetime_classes
                    and parts[1] in _DATETIME_READS):
                flag(node, f"{name}()")
            elif (len(parts) == 3
                    and parts[0] in datetime_mod_aliases
                    and parts[1] in ("datetime", "date")
                    and parts[2] in _DATETIME_READS):
                flag(node, f"{name}()")
    return findings


# ----------------------------------------------------------------------
# DET003 — no set iteration in order-sensitive packages
# ----------------------------------------------------------------------
_SET_TYPE_NAMES = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
#: Builtins whose result order follows the (nondeterministic) argument
#: order — materialising a set through them is still a violation.
_ORDER_KEEPING_BUILTINS = frozenset({"list", "tuple", "enumerate"})


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    target: ast.AST = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted_name(target)
    return name is not None and name.split(".")[-1] in _SET_TYPE_NAMES


def _collect_set_names(tree: ast.AST) -> Set[str]:
    """Identifiers bound (anywhere in the file) to an evident set."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if _annotation_is_set(node.annotation):
                name = dotted_name(node.target)
                if name is not None:
                    names.add(name.split(".")[-1])
        elif isinstance(node, ast.Assign):
            if _is_set_expr(node.value, set()):
                for target in node.targets:
                    name = dotted_name(target)
                    if name is not None:
                        names.add(name.split(".")[-1])
        elif isinstance(node, ast.arg):
            if _annotation_is_set(node.annotation):
                names.add(node.arg)
    return names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Conservatively: does this expression evidently produce a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and _is_set_expr(node.func.value, set_names)):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    name = dotted_name(node)
    return (name is not None
            and name.split(".")[-1] in set_names)


def _check_det003(context: FileContext) -> List[Finding]:
    if context.package not in context.config.det003_packages:
        return []
    tree = context.tree
    set_names = _collect_set_names(tree)
    findings: List[Finding] = []

    def flag(node: ast.AST) -> None:
        findings.append(context.finding(
            "DET003", node,
            "iterating a set here is order-nondeterministic and can "
            "reach the event queue; iterate sorted(...) or keep an "
            "ordered container"))

    iterables: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iterables.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if (name in _ORDER_KEEPING_BUILTINS and len(node.args) == 1
                    and _is_set_expr(node.args[0], set_names)):
                flag(node)
    for iterable in iterables:
        if _is_set_expr(iterable, set_names):
            flag(iterable)
    return findings


# ----------------------------------------------------------------------
# FLT001 — no float equality on energy/time values
# ----------------------------------------------------------------------
def _operand_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_fractional_float(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value != int(node.value))


def _check_flt001(context: FileContext) -> List[Finding]:
    pattern = re.compile(context.config.flt001_name_pattern, re.I)
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[index], operands[index + 1])
            fractional = any(_is_fractional_float(item) for item in pair)
            named = any(
                identifier is not None and pattern.search(identifier)
                for identifier in map(_operand_identifier, pair))
            if fractional or named:
                findings.append(context.finding(
                    "FLT001", node,
                    "float ==/!= on an energy/time-like value is "
                    "machine-dependent after accumulation; compare "
                    "with math.isclose/tolerance or restructure"))
    return findings


# ----------------------------------------------------------------------
# EXC001 — no bare/overbroad except without a reasoned waiver
# ----------------------------------------------------------------------
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _broad_exception_name(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return "bare except"
    name = dotted_name(node)
    if name in _BROAD_EXCEPTIONS:
        return f"except {name}"
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            element_name = dotted_name(element)
            if element_name in _BROAD_EXCEPTIONS:
                return f"except (... {element_name} ...)"
    return None


def _check_exc001(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_exception_name(node.type)
        if broad is not None:
            findings.append(context.finding(
                "EXC001", node,
                f"{broad} can swallow SimulationError and turn a crash "
                "into a wrong energy figure; narrow it, or waive with "
                "# lint: allow(EXC001): <reason>"))
    return findings


# ----------------------------------------------------------------------
# MUT001 — no mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque",
    "OrderedDict", "Counter",
})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return (name is not None
                and name.split(".")[-1] in _MUTABLE_CTORS)
    return False


def _check_mut001(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
            continue
        defaults = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults
                        if d is not None)
        for default in defaults:
            if _is_mutable_default(default):
                label = getattr(node, "name", "<lambda>")
                findings.append(context.finding(
                    "MUT001", default,
                    f"mutable default argument in {label}() is shared "
                    "across calls; default to None (or a tuple) and "
                    "build inside"))
    return findings


# ----------------------------------------------------------------------
# CFG001 — cache-fingerprinted configs annotated and hash-stable
# ----------------------------------------------------------------------
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator,
                                              ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = dotted_name(target)
    return name is not None and name.split(".")[-1] == "ClassVar"


def _check_cfg001(context: FileContext) -> List[Finding]:
    if context.package not in context.config.cfg001_packages:
        return []
    pattern = re.compile(context.config.cfg001_pattern)
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not pattern.search(node.name):
            continue
        if not _is_dataclass_decorated(node):
            continue
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                names = [dotted_name(t) or "?"
                         for t in statement.targets]
                if all(name.startswith("_") or name.isupper()
                       for name in names):
                    continue  # private helpers / constants, not fields
                findings.append(context.finding(
                    "CFG001", statement,
                    f"{node.name}.{names[0]} is unannotated: every "
                    "field of a cache-fingerprinted config must carry "
                    "a type annotation"))
            elif isinstance(statement, ast.AnnAssign):
                if _is_classvar(statement.annotation):
                    continue
                field_name = dotted_name(statement.target) or "?"
                if _annotation_is_set(statement.annotation):
                    findings.append(context.finding(
                        "CFG001", statement,
                        f"{node.name}.{field_name} is set-typed: sets "
                        "have no canonical order, so the cache "
                        "fingerprint would be unstable; use a sorted "
                        "tuple"))
                if (statement.value is not None
                        and _is_mutable_default(statement.value)
                        and not (isinstance(statement.value, ast.Call)
                                 and (dotted_name(statement.value.func)
                                      or "").endswith("field"))):
                    findings.append(context.finding(
                        "CFG001", statement,
                        f"{node.name}.{field_name} has a mutable "
                        "default: use field(default_factory=...) so "
                        "instances stay independent and the "
                        "fingerprint hash-stable"))
    return findings


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
RULES: Dict[str, Rule] = {
    rule.code: rule for rule in (
        Rule("DET001", "no global/module-level RNG",
             "Draws from the process-global random module (or bare "
             "numpy.random) depend on call order across the whole "
             "process, so adding one node perturbs every other "
             "stream.  Only named, seeded generators — "
             "random.Random(seed), numpy.random.default_rng(seed), "
             "Simulator.rng.stream(purpose) — are legal.",
             _check_det001),
        Rule("DET002", "no wall-clock reads outside the allowlist",
             "time.time/perf_counter/datetime.now make behaviour "
             "depend on host speed.  Profiling instrumentation that "
             "never feeds a simulated quantity is allowlisted per "
             "file in [tool.repro-lint.det002].",
             _check_det002),
        Rule("DET003", "no set iteration in order-sensitive packages",
             "Set iteration order varies across processes (hash "
             "randomisation); in sim/, mac/, net/ and faults/ that "
             "order can reach the event queue and break bit-exact "
             "replay.  Iterate sorted(...) instead.",
             _check_det003),
        Rule("FLT001", "no float equality on energy/time values",
             "Accumulated float energies and durations are never "
             "exactly equal across code paths or machines; ==/!= on "
             "them is a latent nondeterminism.  Compare with a "
             "tolerance.",
             _check_flt001),
        Rule("EXC001", "no bare/overbroad except without a waiver",
             "except Exception can swallow a SimulationError raised "
             "mid-dispatch and turn a crash into a silently wrong "
             "energy figure.  Narrow the clause, or document why the "
             "broad catch is safe with a reasoned waiver.",
             _check_exc001),
        Rule("MUT001", "no mutable default arguments",
             "A mutable default is created once and shared by every "
             "call — state leaks between scenarios and breaks "
             "run-to-run equality.",
             _check_mut001),
        Rule("CFG001", "cache-fingerprinted configs annotated and "
             "hash-stable",
             "BanScenarioConfig and its nested dataclasses are "
             "serialised into the result-cache key.  Unannotated "
             "fields are invisible to dataclasses (silently dropped "
             "from the fingerprint); set-typed fields and shared "
             "mutable defaults make the fingerprint unstable.",
             _check_cfg001),
    )
}


def _no_check(context: FileContext) -> List[Finding]:
    """Placeholder for analysis rules (they run as tree analyses)."""
    return []


#: Codes produced by the flow-sensitive tree analyses and the
#: suppression machinery rather than per-file checks.  They live in
#: the catalog so ``--list-rules``, ``--select`` and the docs cover
#: them, but the engine never calls their (empty) check.
ANALYSIS_RULES: Dict[str, Rule] = {
    rule.code: rule for rule in (
        Rule("UNI001", "no unit-mixing arithmetic",
             "The energy model is E = I*Vdd*t: adding seconds to "
             "joules, or J to mJ, books a number with the wrong "
             "physical meaning.  Units are inferred from name "
             "suffixes (_s, _a, _v, _mj, ...), conversion helpers "
             "and '# unit:' annotations, then propagated through "
             "assignments and arithmetic.",
             _no_check),
        Rule("UNI002", "return unit must match the declared unit",
             "A function named energy_j (or annotated '# unit: j') "
             "returning mJ poisons every caller that trusts the "
             "name.  The declared unit is part of the signature.",
             _no_check),
        Rule("UNI003", "no current*current / voltage*voltage products",
             "Power is I*Vdd.  Multiplying two currents (or two "
             "voltages) is always a misspelling of that formula in "
             "this codebase.",
             _no_check),
        Rule("UNI004", "calibration constants carry their unit",
             "Public float constants in calibration modules seed the "
             "whole energy model; one without a unit suffix or a "
             "'# unit:' annotation is unauditable against the "
             "paper's tables.",
             _no_check),
        Rule("SM001", "no undeclared power-state transitions",
             "Every ledger.transition(...) the code can execute must "
             "be a declared edge in the component's TransitionSpec "
             "(repro/core/states.py) — and only the owning component "
             "may drive its ledger.  The nRF2401 cannot go "
             "POWER_DOWN -> TX; a model that can books TX current "
             "from a state the hardware can't be in.",
             _no_check),
        Rule("SM002", "no declared-but-never-encoded transitions",
             "A table row no code path implements is documentation "
             "rot: the spec stops being the single source of truth "
             "for what the model does.",
             _no_check),
        Rule("SM003", "every accounted state is reachable",
             "A power state with a current draw in the "
             "PowerStateTable but no entry path in the declared "
             "graph can never be booked — its calibration data is "
             "dead and probably misplaced.",
             _no_check),
        Rule("SM004", "spec and code structurally agree",
             "The spec's state set and initial state must match the "
             "encoded PowerStateTable and ledger initial_state, and "
             "every transition target must be statically resolvable "
             "— otherwise the verification is vacuous.",
             _no_check),
        Rule("SM005", "every ledger has a transition spec",
             "A component that books energy through a "
             "PowerStateLedger without declaring its TransitionSpec "
             "is exempt from state-machine verification — exactly "
             "where transition bugs then hide.",
             _no_check),
        Rule("RNG001", "no unseeded RNG construction",
             "random.Random() / default_rng() with no argument (and "
             "SystemRandom anywhere) seed from OS entropy: the run "
             "can never be replayed.",
             _no_check),
        Rule("RNG002", "every RNG seed derives from a seed",
             "A generator seeded from a literal, a counter or an id "
             "replays within a run but collides across components "
             "and bypasses the per-purpose stream split.  Seeds must "
             "flow from a seed parameter/attribute or a "
             "Simulator-owned stream (rng.stream(purpose)).",
             _no_check),
        Rule("OBS001", "hook-guarded statements are sim-pure",
             "Code that only runs when spans/metrics/trace "
             "observability is attached (inside an 'if self.spans is "
             "not None:' guard) must not schedule events, draw RNG, "
             "book energy, advance time or mutate simulation state — "
             "otherwise runs with observability on diverge from runs "
             "with it off, and every recorded energy figure is an "
             "artifact of being watched.",
             _no_check),
        Rule("OBS002", "hook-guarded calls reach only sim-pure code",
             "The interprocedural form of OBS001: a call inside a "
             "hook guard must not *transitively* reach a function "
             "with a forbidden effect.  The effect sets come from a "
             "fixed-point analysis over the whole-tree call graph; "
             "the finding names the offending call chain.",
             _no_check),
        Rule("OBS003", "pull-based metrics hooks only read",
             "observe_metrics(registry, ...) implementations are "
             "polled by the metrics layer; one that mutates "
             "simulation state turns every scrape into a "
             "perturbation.  They may only read state and write the "
             "registry.",
             _no_check),
        Rule("FPC001", "no reads of unfingerprinted config attributes",
             "config_fingerprint encodes exactly the dataclass "
             "fields of the scenario config closure.  Simulation "
             "code reading an attribute that is not a field (nor a "
             "property/method derived from fields) depends on data "
             "the result-cache key cannot see: two different configs "
             "hash identically and the cache serves the wrong "
             "result.",
             _no_check),
        Rule("FPC002", "no unfingerprinted config classes in sim code",
             "A config-shaped dataclass read by simulation code must "
             "either be reachable from the fingerprint closure or be "
             "constructed inside salted simulation code (derived "
             "from fingerprinted fields).  Anything else smuggles "
             "configuration past the cache key — the cache-poisoning "
             "shape.",
             _no_check),
        Rule("LIF001", "acquired resources are released on exit",
             "A resource acquired on every path through a declared "
             "boundary's acquire hook (radio power_up in on_start, a "
             "periodic handle stored in on_start, a span phase "
             "opened) must be released on every path out of its "
             "release hook.  A leak never crashes — it silently "
             "corrupts the energy integral: a radio left in standby "
             "books 0.9 mA forever.  The finding carries the witness "
             "exit path.",
             _no_check),
        Rule("LIF002", "no release without a matching acquire",
             "Releasing a resource that is already released on every "
             "path to the call (a second power_down) is an error for "
             "non-idempotent releases: the nRF2401 model raises "
             "RadioError at runtime; this proves it can't happen "
             "statically.",
             _no_check),
        Rule("LIF003", "no use-after-release",
             "send/start_rx/cca on a radio that every path has "
             "already powered down is the use-after-release the "
             "runtime RadioError guards catch dynamically.  Proving "
             "it statically means the guard can never fire in "
             "committed code.",
             _no_check),
        Rule("LIF004", "every resource has an owner",
             "A discarded periodic handle can never be cancelled; an "
             "unconditionally self-rescheduling one-shot with a "
             "discarded handle is a periodic in disguise; a "
             "constructed sink stored on self that no method ever "
             "closes is never flushed.  Ownerless resources outlive "
             "every stop path.",
             _no_check),
        Rule("LIF005", "acquire and release guards stay correlated",
             "A conditional acquire whose release is guarded by a "
             "*different* condition leaks exactly when the two "
             "conditions disagree — the hardest leak to hit in "
             "testing because both guards usually co-vary.",
             _no_check),
        Rule("SUP002", "no stale waivers",
             "A '# lint: allow(CODE)' comment on a line where CODE "
             "no longer fires documents a constraint that no longer "
             "exists; left in place it will silently swallow the "
             "next, unrelated finding on that line.",
             _no_check),
    )
}


def all_rule_codes() -> Tuple[str, ...]:
    """Every registered rule code (per-file and analysis), sorted."""
    return tuple(sorted(set(RULES) | set(ANALYSIS_RULES)))


def iter_rules() -> Iterable[Rule]:
    """All rules in code order (for docs and --list-rules)."""
    catalog = {**RULES, **ANALYSIS_RULES}
    return tuple(catalog[code] for code in all_rule_codes())


__all__ = ["ANALYSIS_RULES", "RULES", "Rule", "all_rule_codes",
           "dotted_name", "iter_rules"]
