"""Seed replication and summary statistics.

Deterministic scenarios need one run; *stochastic* ones (loss models,
clock skew, contended joins) need replication to report a mean and a
confidence interval instead of a single draw.  This module runs a
scenario across seeds and summarises any numeric metric of the result.

The default metrics cover the quantities the experiments report
(node radio/MCU energy, traffic counters); arbitrary extractors are
accepted for anything else.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.report import NetworkEnergyResult
from ..exec import ScenarioExecutor
from ..net.scenario import BanScenarioConfig

#: An extractor maps a run's result to one number.
Metric = Callable[[NetworkEnergyResult], float]


def node_metric(node_id: str, attribute: str) -> Metric:
    """Extractor for a node attribute (``"radio_mj"``, ``"mcu_mj"``...)."""
    def extract(result: NetworkEnergyResult) -> float:
        return float(getattr(result.node(node_id), attribute))
    return extract


def traffic_metric(node_id: str, field: str) -> Metric:
    """Extractor for a traffic counter (``"data_tx"``...)."""
    def extract(result: NetworkEnergyResult) -> float:
        return float(getattr(result.node(node_id).traffic, field))
    return extract


@dataclass(frozen=True)
class Summary:
    """Replicated statistics of one metric."""

    name: str
    samples: Sequence[float]

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / self.n

    @property
    def stddev(self) -> float:
        """Sample standard deviation (Bessel-corrected)."""
        if self.n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self.samples)
                         / (self.n - 1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n < 2:
            return 0.0
        return self.stddev / math.sqrt(self.n)

    def ci95(self) -> float:
        """~95% confidence half-width (normal approximation)."""
        return 1.96 * self.stderr

    @property
    def minimum(self) -> float:
        """Smallest sample."""
        return min(self.samples)

    @property
    def maximum(self) -> float:
        """Largest sample."""
        return max(self.samples)

    def render(self) -> str:
        """``name: mean ± ci (n=..)`` one-liner."""
        return (f"{self.name}: {self.mean:.3f} ± {self.ci95():.3f} "
                f"(n={self.n}, range {self.minimum:.3f}"
                f"..{self.maximum:.3f})")


def replicate(config: BanScenarioConfig, seeds: Sequence[int],
              metrics: Dict[str, Metric],
              executor: Optional[ScenarioExecutor] = None
              ) -> Dict[str, Summary]:
    """Run ``config`` once per seed; summarise each metric.

    The config's own ``seed`` field is overridden per run.  Seeds are
    independent scenarios, so an executor with ``jobs=N`` replicates
    N-wide; samples stay in seed order regardless.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if not metrics:
        raise ValueError("need at least one metric")
    if executor is None:
        executor = ScenarioExecutor(jobs=1)
    configs = [dataclasses.replace(config, seed=seed) for seed in seeds]
    results = executor.run_configs(configs)
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for result in results:
        for name, metric in metrics.items():
            samples[name].append(metric(result))
    return {name: Summary(name=name, samples=tuple(values))
            for name, values in samples.items()}


def default_metrics(node_id: str = "node1") -> Dict[str, Metric]:
    """The standard metric set for one node."""
    return {
        "radio_mj": node_metric(node_id, "radio_mj"),
        "mcu_mj": node_metric(node_id, "mcu_mj"),
        "data_tx": traffic_metric(node_id, "data_tx"),
        "corrupted": traffic_metric(node_id, "corrupted"),
    }


__all__ = ["Metric", "node_metric", "traffic_metric", "Summary",
           "replicate", "default_metrics"]
