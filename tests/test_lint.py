"""Tests for the determinism & simulation-safety linter (repro.lint).

Every rule is exercised in both directions — it must fire on the
violating fixture and stay silent on the compliant variant — plus the
suppression machinery (including missing-reason rejection), the JSON
reporter schema, configuration handling, the CLI, and the meta-test
that ``src/repro`` itself lints clean under the repository's own
``pyproject.toml`` configuration.
"""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.lint import (
    ANALYSIS_RULES,
    LintConfig,
    RULES,
    all_rule_codes,
    lint_paths,
    lint_source,
    load_config,
    render_json,
    render_text,
)
from repro.lint.cli import main as lint_main
from repro.lint.config import ConfigError, config_from_table
from repro.lint.engine import parse_suppressions
from repro.lint.report import SCHEMA_VERSION, report_to_dict

ROOT = pathlib.Path(__file__).resolve().parent.parent


def rules_fired(source, module_path="x.py", config=None):
    """Rule codes of the unsuppressed findings for a snippet."""
    findings = lint_source(source, "<fixture>", config or LintConfig(),
                           module_path=module_path)
    return [f.rule for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# Per-rule fixtures: each fires on the violation, not on the fix
# ----------------------------------------------------------------------
class TestDet001GlobalRng:
    def test_module_level_draw_fires(self):
        assert rules_fired("import random\nx = random.random()\n") \
            == ["DET001"]

    def test_global_seed_and_shuffle_fire(self):
        source = "import random\nrandom.seed(3)\nrandom.shuffle(xs)\n"
        assert rules_fired(source) == ["DET001", "DET001"]

    def test_import_of_draw_function_fires(self):
        assert rules_fired("from random import randint\n") == ["DET001"]

    def test_numpy_global_draw_fires(self):
        assert rules_fired(
            "import numpy as np\nx = np.random.rand(4)\n") == ["DET001"]

    def test_numpy_random_submodule_alias_fires(self):
        source = "from numpy import random as nr\nx = nr.normal()\n"
        assert rules_fired(source) == ["DET001"]

    def test_seeded_instances_are_legal(self):
        # Seed-derived construction: legal under DET001 *and* the RNG
        # provenance pass (literal seeds are RNG002's business).
        source = (
            "import random\n"
            "import numpy as np\n"
            "def make(seed):\n"
            "    r = random.Random(seed)\n"
            "    x = r.random()\n"
            "    g = np.random.default_rng(seed + 1)\n"
            "    return r, g, x\n"
            "from random import Random\n")
        assert rules_fired(source) == []


class TestDet002WallClock:
    def test_time_module_read_fires(self):
        assert rules_fired("import time\nt = time.time()\n") \
            == ["DET002"]

    def test_perf_counter_import_and_call_fire(self):
        source = "from time import perf_counter\nt = perf_counter()\n"
        assert rules_fired(source) == ["DET002", "DET002"]

    def test_datetime_now_fires(self):
        source = "from datetime import datetime\nx = datetime.now()\n"
        assert rules_fired(source) == ["DET002"]

    def test_time_sleep_is_not_a_clock_read(self):
        assert rules_fired("import time\ntime.sleep(1)\n") == []

    def test_allowlisted_file_is_exempt(self):
        config = LintConfig(det002_allow=("obs/profiler.py",))
        source = "from time import perf_counter\nt = perf_counter()\n"
        assert rules_fired(source, "obs/profiler.py", config) == []
        assert rules_fired(source, "mac/base.py", config) \
            == ["DET002", "DET002"]


class TestDet003SetIteration:
    def test_set_literal_iteration_fires(self):
        assert rules_fired("for x in {1, 2}:\n    pass\n",
                           "sim/kernel.py") == ["DET003"]

    def test_set_call_iteration_fires(self):
        assert rules_fired("for x in set(items):\n    pass\n",
                           "mac/base.py") == ["DET003"]

    def test_known_set_variable_fires(self):
        source = "seen = set()\nout = [x for x in seen]\n"
        assert rules_fired(source, "net/scenario.py") == ["DET003"]

    def test_annotated_set_argument_fires(self):
        source = ("from typing import Set\n"
                  "def f(pending: Set[str]) -> None:\n"
                  "    for item in pending:\n"
                  "        pass\n")
        assert rules_fired(source, "faults/injector.py") == ["DET003"]

    def test_list_of_set_fires(self):
        assert rules_fired("xs = list({1, 2})\n", "sim/events.py") \
            == ["DET003"]

    def test_sorted_set_is_legal(self):
        source = "s = {1, 2}\nfor x in sorted(s):\n    pass\n"
        assert rules_fired(source, "sim/kernel.py") == []

    def test_dict_iteration_is_legal(self):
        # Dict views are insertion-ordered: deterministic.
        source = "d = {'a': 1}\nfor k in d:\n    pass\n"
        assert rules_fired(source, "sim/kernel.py") == []

    def test_outside_ordered_packages_is_silent(self):
        assert rules_fired("for x in {1, 2}:\n    pass\n",
                           "analysis/sweep.py") == []


class TestFlt001FloatEquality:
    def test_energy_name_fires(self):
        assert rules_fired("ok = energy_mj == 0.0\n") == ["FLT001"]

    def test_attribute_name_fires(self):
        assert rules_fired("ok = a.elapsed_s != b.elapsed_s\n") \
            == ["FLT001"]

    def test_fractional_literal_fires(self):
        assert rules_fired("ok = x == 2.5\n") == ["FLT001"]

    def test_zero_sentinel_on_neutral_name_is_legal(self):
        # `per == 0.0` style disabled-feature guards are exact.
        assert rules_fired("ok = magnitude == 0.0\n") == []

    def test_ordering_comparisons_are_legal(self):
        assert rules_fired("ok = energy_mj > 0.0\n") == []


class TestExc001BroadExcept:
    def test_except_exception_fires(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert rules_fired(source) == ["EXC001"]

    def test_bare_except_fires(self):
        source = "try:\n    f()\nexcept:\n    pass\n"
        assert rules_fired(source) == ["EXC001"]

    def test_tuple_with_base_exception_fires(self):
        source = ("try:\n    f()\n"
                  "except (ValueError, BaseException):\n    pass\n")
        assert rules_fired(source) == ["EXC001"]

    def test_narrow_except_is_legal(self):
        source = "try:\n    f()\nexcept (OSError, ValueError):\n    pass\n"
        assert rules_fired(source) == []


class TestMut001MutableDefaults:
    def test_list_default_fires(self):
        assert rules_fired("def f(x=[]):\n    pass\n") == ["MUT001"]

    def test_dict_call_default_fires(self):
        assert rules_fired("def f(*, x=dict()):\n    pass\n") \
            == ["MUT001"]

    def test_none_and_tuple_defaults_are_legal(self):
        assert rules_fired("def f(x=None, y=()):\n    pass\n") == []


class TestCfg001ConfigDataclasses:
    def test_unannotated_field_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class FooConfig:\n"
                  "    x = 3\n")
        assert rules_fired(source, "net/scenario.py") == ["CFG001"]

    def test_set_typed_field_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "from typing import FrozenSet\n"
                  "@dataclass\n"
                  "class FooConfig:\n"
                  "    tags: FrozenSet[str] = frozenset()\n")
        assert rules_fired(source, "net/scenario.py") == ["CFG001"]

    def test_mutable_default_fires(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class FooSpec:\n"
                  "    xs: list = []\n")
        assert rules_fired(source, "mac/recovery.py") == ["CFG001"]

    def test_field_default_factory_is_legal(self):
        source = ("from dataclasses import dataclass, field\n"
                  "@dataclass\n"
                  "class FooConfig:\n"
                  "    xs: tuple = ()\n"
                  "    m: dict = field(default_factory=dict)\n")
        assert rules_fired(source, "net/scenario.py") == []

    def test_non_config_class_is_ignored(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Helper:\n"
                  "    x = 3\n")
        assert rules_fired(source, "net/scenario.py") == []

    def test_outside_fingerprinted_packages_is_silent(self):
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class FooConfig:\n"
                  "    x = 3\n")
        assert rules_fired(source, "analysis/sweep.py") == []


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = "try:\n    f()\nexcept Exception:{comment}\n    pass\n"

    def test_reasoned_same_line_waiver_suppresses(self):
        source = self.SOURCE.format(
            comment="  # lint: allow(EXC001): isolated and re-raised")
        findings = lint_source(source, "<fixture>", LintConfig())
        assert [f.rule for f in findings] == ["EXC001"]
        assert findings[0].suppressed
        assert findings[0].reason == "isolated and re-raised"

    def test_standalone_line_waiver_covers_next_line(self):
        source = ("try:\n    f()\n"
                  "# lint: allow(EXC001): crash containment\n"
                  "except Exception:\n    pass\n")
        findings = lint_source(source, "<fixture>", LintConfig())
        assert [f.suppressed for f in findings] == [True]

    def test_missing_reason_rejected_and_reported(self):
        source = self.SOURCE.format(comment="  # lint: allow(EXC001)")
        findings = lint_source(source, "<fixture>", LintConfig())
        rules = sorted(f.rule for f in findings if not f.suppressed)
        assert rules == ["EXC001", "SUP001"]

    def test_empty_reason_rejected(self):
        source = self.SOURCE.format(comment="  # lint: allow(EXC001):  ")
        rules = sorted(rules_fired(source))
        assert rules == ["EXC001", "SUP001"]

    def test_wrong_code_does_not_suppress(self):
        # The EXC001 finding survives, and the DET001 waiver — wrong
        # rule, so it guards nothing — is itself reported stale.
        source = self.SOURCE.format(
            comment="  # lint: allow(DET001): not the right rule")
        assert sorted(rules_fired(source)) == ["EXC001", "SUP002"]

    def test_multi_code_waiver(self):
        source = ("import time\n"
                  "t = time.time()  "
                  "# lint: allow(DET002, FLT001): bench-only path\n")
        findings = lint_source(source, "<fixture>", LintConfig())
        # DET002 is suppressed; the FLT001 half of the waiver is stale
        # (nothing float-compares on that line) and reported as such.
        assert sorted((f.rule, f.suppressed) for f in findings) \
            == [("DET002", True), ("SUP002", False)]

    def test_parse_suppressions_reports_positions(self):
        suppressions, errors = parse_suppressions([
            "x = 1  # lint: allow(DET001): seeded upstream",
            "# lint: allow(DET002)",
        ])
        assert suppressions[0].codes == ("DET001",)
        assert suppressions[0].applies_to == (1,)
        assert errors == [(2, errors[0][1])]
        assert "missing reason" in errors[0][1]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _report(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n"
                       "try:\n    f()\n"
                       "except Exception:  # lint: allow(EXC001): ok here\n"
                       "    pass\n")
        return lint_paths([tmp_path], LintConfig())

    def test_json_schema(self, tmp_path):
        report = self._report(tmp_path)
        document = json.loads(render_json(report))
        assert document["tool"] == "repro.lint"
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["ok"] is False
        assert document["files_scanned"] == 1
        assert document["summary"]["total"] == 1
        assert document["summary"]["suppressed"] == 1
        assert document["summary"]["by_rule"] == {"DET001": 1}
        finding = document["findings"][0]
        assert set(finding) == {"rule", "path", "line", "col",
                                "message", "suppressed", "reason"}
        waived = [f for f in document["findings"] if f["suppressed"]]
        assert waived[0]["reason"] == "ok here"

    def test_json_roundtrip_is_stable(self, tmp_path):
        report = self._report(tmp_path)
        assert render_json(report) == render_json(report)
        assert report_to_dict(report) == json.loads(render_json(report))

    def test_text_reporter_summarises(self, tmp_path):
        report = self._report(tmp_path)
        text = render_text(report)
        assert "DET001" in text
        assert "1 finding(s)" in text
        assert "1 waived" in text

    def test_text_reporter_clean_summary(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = lint_paths([tmp_path / "ok.py"], LintConfig())
        assert "clean: 1 file(s), 0 findings" in render_text(report)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError):
            config_from_table({"selct": ["DET001"]})
        with pytest.raises(ConfigError):
            config_from_table({"det002": {"alow": []}})

    def test_select_limits_rules(self):
        config = config_from_table({"select": ["EXC001"]})
        source = "import random\nrandom.random()\n"
        assert rules_fired(source, config=config) == []
        assert config.rule_enabled("EXC001")
        assert not config.rule_enabled("DET001")

    def test_repo_pyproject_parses(self):
        config = load_config(pyproject=ROOT / "pyproject.toml")
        assert "sim/kernel.py" in config.det002_allow
        assert "sim" in config.det003_packages

    def test_rule_registry_complete(self):
        assert all_rule_codes() == (
            "CFG001", "DET001", "DET002", "DET003", "EXC001", "FLT001",
            "FPC001", "FPC002", "LIF001", "LIF002", "LIF003", "LIF004",
            "LIF005", "MUT001", "OBS001", "OBS002", "OBS003",
            "RNG001", "RNG002", "SM001", "SM002", "SM003", "SM004",
            "SM005", "SUP002", "UNI001", "UNI002", "UNI003", "UNI004")
        for rule in RULES.values():
            assert rule.title and rule.rationale
        for rule in ANALYSIS_RULES.values():
            assert rule.title and rule.rationale


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(x=[]):\n    pass\n")
        assert lint_main([str(tmp_path)]) == 1
        assert "MUT001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2

    def test_json_output_file(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\ntime.time()\n")
        out = tmp_path / "report.json"
        code = lint_main([str(tmp_path), "--format", "json",
                          "--output", str(out)])
        assert code == 1
        document = json.loads(out.read_text())
        assert document["summary"]["by_rule"] == {"DET002": 1}
        assert str(out) in capsys.readouterr().out

    def test_select_option(self, tmp_path):
        (tmp_path / "bad.py").write_text("import time\ntime.time()\n")
        assert lint_main([str(tmp_path), "--select", "MUT001"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_rule_codes():
            assert code in out

    def test_module_entry_point(self, tmp_path):
        (tmp_path / "bad.py").write_text("import random\n"
                                         "random.random()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 1
        assert "DET001" in proc.stdout


# ----------------------------------------------------------------------
# Meta: the tree itself, and the typing gate
# ----------------------------------------------------------------------
class TestTreeIsClean:
    def test_src_repro_lints_clean(self):
        """The acceptance gate: zero unsuppressed findings over src."""
        config = load_config(pyproject=ROOT / "pyproject.toml")
        report = lint_paths([ROOT / "src"], config)
        assert report.ok, render_text(report)

    def test_every_suppression_has_a_reason(self):
        config = load_config(pyproject=ROOT / "pyproject.toml")
        report = lint_paths([ROOT / "src"], config)
        for finding in report.suppressed:
            assert finding.reason, finding

    def test_waivers_are_few_and_in_expected_files(self):
        # Waivers should stay rare; a jump means rules are being
        # waived instead of followed.
        config = load_config(pyproject=ROOT / "pyproject.toml")
        report = lint_paths([ROOT / "src"], config)
        assert len(report.suppressed) <= 12, [
            (f.path, f.line) for f in report.suppressed]
        waived_files = {pathlib.Path(f.path).name
                        for f in report.suppressed}
        # ecg.py / sources.py waive FLT001 for exact-identity sample
        # memos (pure-function-of-time sources; == is intentional).
        assert waived_files <= {"kernel.py", "executor.py",
                                "ecg.py", "sources.py"}


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed (CI runs it)")
class TestTyping:
    def test_mypy_clean_over_configured_packages(self):
        proc = subprocess.run(
            ["mypy", "--config-file", str(ROOT / "pyproject.toml")],
            capture_output=True, text=True, cwd=ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
