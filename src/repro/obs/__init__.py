"""Unified telemetry: metrics registry, trace sinks, profiler.

``repro.obs`` is the observability layer over the simulation runtime —
the piece that turns the paper's *accounting* (every joule attributed
to a power state and a cause) into numbers you can watch during a run
and export after it:

* :mod:`repro.obs.metrics` — counters, gauges, time-weighted
  histograms, state-residency timers and trajectory series keyed by
  ``component/node/name``, with mergeable snapshots and JSON /
  Prometheus exporters;
* :mod:`repro.obs.sinks` — structured trace sinks (JSONL streaming,
  bounded ring) plus :class:`~repro.obs.sinks.SinkTraceRecorder`, the
  adapter that keeps the in-memory ``TraceRecorder`` API intact;
* :mod:`repro.obs.profiler` — attributes host ``perf_counter`` time to
  event labels and reports sim-seconds-per-wall-second;
* :mod:`repro.obs.instrument` — pull collectors reading the kernel,
  MACs, radios, MCUs and caches into a registry, and periodic
  on-sim-timer snapshots for trajectories;
* :mod:`repro.obs.spans` — causal span tracing: per-packet lifecycle
  phases with sim-time intervals and ledger-exact energy attribution,
  mergeable across workers, exportable as JSONL or Perfetto JSON.

Everything is opt-in: a run without a registry/profiler/sink executes
byte-identical code, and even instrumented runs never perturb event
order, RNG streams or energy figures.
"""

from .instrument import (
    PeriodicSnapshotter,
    attach_periodic_snapshots,
    collect_cache_metrics,
    collect_scenario_metrics,
    collect_simulator_metrics,
)
from .metrics import (
    GLOBAL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    StateTimer,
    metric_key,
    split_key,
)
from .profiler import KERNEL_LABEL, SimulationProfiler, normalize_label
from .sinks import (
    JsonlTraceSink,
    RingTraceSink,
    SinkTraceRecorder,
    TraceSink,
    read_jsonl_trace,
)
from .spans import (
    Span,
    SpanStore,
    SpanTracer,
    attach_span_tracer,
    attribution_report,
    reconcile_spans,
    rollup_spans,
    spans_to_sink,
    to_perfetto,
    write_perfetto,
    write_spans_jsonl,
)

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "StateTimer",
    "Series", "metric_key", "split_key", "GLOBAL",
    "TraceSink", "JsonlTraceSink", "RingTraceSink", "SinkTraceRecorder",
    "read_jsonl_trace",
    "SimulationProfiler", "normalize_label", "KERNEL_LABEL",
    "collect_simulator_metrics", "collect_scenario_metrics",
    "collect_cache_metrics", "attach_periodic_snapshots",
    "PeriodicSnapshotter",
    "Span", "SpanStore", "SpanTracer", "attach_span_tracer",
    "spans_to_sink", "write_spans_jsonl", "to_perfetto",
    "write_perfetto", "rollup_spans", "reconcile_spans",
    "attribution_report",
]
