"""Tests for experiment reproduction, validation, figures and sweeps.

These run the actual table scenarios with shortened windows (the energy
model is time-proportional, which `test_scenario` verifies separately),
keeping the suite fast while still executing every reproduction path.
"""

import pytest

from repro.analysis.experiments import (
    Figure4Result,
    REPORTED_NODE,
    reproduce_figure4,
    reproduce_table1,
    reproduce_table2,
    reproduce_table3,
    reproduce_table4,
)
from repro.analysis.figures import (
    figure4_csv,
    figure4_series,
    render_figure4,
    table_series,
)
from repro.analysis.lifetime import project_lifetime
from repro.analysis.sweep import (
    as_table,
    sweep_cycle_ms,
    sweep_heart_rate,
    sweep_num_nodes,
    sweep_scenarios,
)
from repro.analysis.validation import validate_all, validate_table
from repro.data.paper_tables import ALL_TABLES, TABLE_1, TABLE_3
from repro.hw.battery import CR2477
from repro.net.scenario import BanScenarioConfig

WINDOW_S = 6.0


@pytest.fixture(scope="module")
def table1():
    return reproduce_table1(measure_s=WINDOW_S)


@pytest.fixture(scope="module")
def table3():
    return reproduce_table3(measure_s=WINDOW_S)


class TestPaperTablesData:
    def test_row_counts(self):
        assert len(TABLE_1.rows) == 4
        assert len(TABLE_3.rows) == 4
        assert all(len(t.rows) in (4, 5) for t in ALL_TABLES)

    def test_printed_errors_match_recomputed(self):
        """The embedded data must reproduce the errors the paper prints
        (within rounding of the printed averages).

        Exception: Table 4's printed uC average (3.3%) does not match
        its own rows, which recompute to 1.9% — an inconsistency in the
        paper itself (the other seven printed averages all agree with
        their rows).  EXPERIMENTS.md documents this.
        """
        for table in ALL_TABLES:
            printed_radio, printed_mcu = table.printed_avg_error
            assert table.mean_radio_error() \
                == pytest.approx(printed_radio, abs=0.007)
            if table.table_id == "table4":
                assert table.mean_mcu_error() \
                    == pytest.approx(0.019, abs=0.007)
            else:
                assert table.mean_mcu_error() \
                    == pytest.approx(printed_mcu, abs=0.007)

    def test_monotone_radio_energy_vs_cycle(self):
        """Radio energy decreases with the cycle in every table."""
        for table in ALL_TABLES:
            values = [row.radio_real_mj for row in table.rows]
            ordered = sorted(zip((r.cycle_ms for r in table.rows), values))
            radios = [v for _, v in ordered]
            assert radios == sorted(radios, reverse=True)


class TestTableReproduction:
    def test_table1_static_accuracy(self, table1):
        # Our model was fitted on these rows: ~1-2% against the paper's
        # simulator is expected.
        assert table1.mean_error("paper_sim", "radio") < 0.03
        assert table1.mean_error("paper_sim", "mcu") < 0.03
        # And against hardware, within the paper's own error band.
        assert table1.mean_error("real", "radio") < 0.10
        assert table1.mean_error("real", "mcu") < 0.10

    def test_table3_rpeak_accuracy(self, table3):
        assert table3.mean_error("paper_sim", "radio") < 0.03
        assert table3.mean_error("paper_sim", "mcu") < 0.04
        assert table3.mean_error("real", "radio") < 0.06
        assert table3.mean_error("real", "mcu") < 0.06

    def test_table2_dynamic_shape(self):
        table2 = reproduce_table2(measure_s=WINDOW_S)
        radios = [row.radio_ours_mj for row in table2.rows]
        # Monotonically decreasing with node count, like the paper.
        assert radios == sorted(radios, reverse=True)
        assert table2.mean_error("real", "radio") < 0.12
        assert table2.mean_error("real", "mcu") < 0.15

    def test_table4_dynamic_shape(self):
        table4 = reproduce_table4(measure_s=WINDOW_S)
        radios = [row.radio_ours_mj for row in table4.rows]
        assert radios == sorted(radios, reverse=True)
        assert table4.mean_error("real", "radio") < 0.10
        assert table4.mean_error("real", "mcu") < 0.10

    def test_render_contains_all_rows(self, table1):
        text = table1.render()
        assert "Radio ours" in text
        assert text.count("\n") >= 7
        assert "Avg err vs real" in text

    def test_row_error_helper(self, table1):
        row = table1.rows[0]
        assert row.error_vs("real", "radio") == pytest.approx(
            abs(row.radio_ours_mj - row.radio_real_mj)
            / row.radio_real_mj)
        with pytest.raises(KeyError):
            row.error_vs("imagination", "radio")


class TestFigure4:
    @pytest.fixture(scope="class")
    def figure(self):
        return reproduce_figure4(measure_s=WINDOW_S)

    def test_saving_matches_paper(self, figure):
        # Paper: 65% saved by on-node preprocessing.
        assert figure.saving == pytest.approx(0.65, abs=0.05)

    def test_totals_near_paper(self, figure):
        assert figure.streaming_total_mj == pytest.approx(
            figure.paper_streaming_total_mj, rel=0.12)
        assert figure.rpeak_total_mj == pytest.approx(
            figure.paper_rpeak_total_mj, rel=0.08)

    def test_series_has_six_bars(self, figure):
        records = figure4_series(figure)
        assert len(records) == 6
        assert {r["source"] for r in records} == {"real", "sim", "ours"}

    def test_csv_shape(self, figure):
        csv = figure4_csv(figure)
        lines = csv.splitlines()
        assert lines[0].startswith("application,")
        assert len(lines) == 7

    def test_render(self, figure):
        text = render_figure4(figure)
        assert "Rpeak" in text and "ours" in text and "%" in text

    def test_table_series_helper(self, figure):
        table = reproduce_table3(measure_s=WINDOW_S)
        params, series = table_series(table)
        assert params == [30.0, 60.0, 90.0, 120.0]
        assert len(series["radio_ours_mj"]) == 4


class TestValidationMetrics:
    def test_validate_table(self, table1):
        validation = validate_table(table1, TABLE_1.printed_avg_error)
        assert validation.table_id == "table1"
        assert 0 <= validation.radio_vs_real < 0.15
        assert validation.within_paper_band

    def test_validate_all_and_render(self, table1, table3):
        overall = validate_all({"table1": table1, "table3": table3})
        assert 0 < overall.overall_vs_real < 0.10
        text = overall.render()
        assert "table1" in text and "overall" in text

    def test_overall_vs_paper_sim_small(self, table1, table3):
        overall = validate_all({"table1": table1, "table3": table3})
        assert overall.overall_vs_paper_sim < 0.04


class TestSweeps:
    BASE = BanScenarioConfig(mac="static", app="rpeak", num_nodes=2,
                             cycle_ms=60.0, measure_s=2.0)

    def test_cycle_sweep_monotone(self):
        points = sweep_cycle_ms(self.BASE, [30.0, 60.0, 120.0])
        radios = [p.node.radio_mj for p in points]
        assert radios == sorted(radios, reverse=True)

    def test_node_count_sweep(self):
        base = BanScenarioConfig(mac="dynamic", app="rpeak",
                                 measure_s=2.0)
        points = sweep_num_nodes(base, [1, 3])
        assert points[0].node.radio_mj > points[1].node.radio_mj

    def test_heart_rate_sweep_increases_traffic(self):
        points = sweep_heart_rate(self.BASE, [50.0, 150.0])
        assert points[1].node.traffic.data_tx \
            > points[0].node.traffic.data_tx

    def test_invalid_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_scenarios(self.BASE, "warp_factor", [1.0])

    def test_as_table(self):
        points = sweep_cycle_ms(self.BASE, [60.0])
        records = as_table(points, value_name="cycle_ms")
        assert records[0]["cycle_ms"] == 60.0
        assert records[0]["total_mj"] > 0


class TestLifetime:
    def test_projection_from_result(self):
        table = reproduce_table3(measure_s=2.0)
        # Build a node result through a real run instead:
        from conftest import run_quick
        _, result = run_quick(app="rpeak", cycle_ms=120.0, measure_s=2.0)
        node = result.node(REPORTED_NODE)
        projection = project_lifetime(node, CR2477)
        assert projection.hours > 0
        assert projection.days == pytest.approx(projection.hours / 24.0)
        assert "radio+MCU+ASIC" in projection.render()
        del table

    def test_asic_dominates_lifetime(self):
        from conftest import run_quick
        _, result = run_quick(app="rpeak", cycle_ms=120.0, measure_s=2.0)
        node = result.node(REPORTED_NODE)
        with_asic = project_lifetime(node, CR2477, include_asic=True)
        without = project_lifetime(node, CR2477, include_asic=False)
        assert without.hours > 1.5 * with_asic.hours
