#!/usr/bin/env python3
"""Generate docs/api_reference.md from the package's docstrings.

Walks every module under ``repro``, collects public classes/functions
and their first docstring line, and renders a markdown index.  Run
after API changes:

    python tools/gen_api_reference.py > docs/api_reference.md

The test suite checks the committed file is current
(`tests/test_api_reference.py`), so the reference cannot drift.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import sys
from typing import List

import repro


def first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return "(undocumented)"
    return doc.splitlines()[0].strip()


def public_members(module) -> List[tuple]:
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    members = []
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        # Only members defined in this module (skip re-exports).
        defined_in = getattr(obj, "__module__", None)
        if defined_in != module.__name__:
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            kind = "class" if inspect.isclass(obj) else "def"
            members.append((kind, name, first_line(obj)))
    return members


def iter_modules():
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def generate() -> str:
    lines = [
        "# API reference",
        "",
        "One line per public item, generated from docstrings by",
        "`tools/gen_api_reference.py` — regenerate after API changes.",
    ]
    for module in sorted(iter_modules(), key=lambda m: m.__name__):
        members = public_members(module)
        if not members and not (module.__doc__ or "").strip():
            continue
        lines.append("")
        lines.append(f"## `{module.__name__}`")
        summary = first_line(module)
        if summary != "(undocumented)":
            lines.append("")
            lines.append(summary)
        if members:
            lines.append("")
            for kind, name, doc in members:
                lines.append(f"- **{kind} `{name}`** — {doc}")
    return "\n".join(lines) + "\n"


if __name__ == "__main__":
    sys.stdout.write(generate())
