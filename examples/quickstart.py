#!/usr/bin/env python3
"""Quickstart: simulate the paper's 5-node BAN and read the energy model.

Builds the exact scenario behind Table 1's first row — five sensor
nodes streaming 2-channel ECG over static TDMA (30 ms cycle, 205 Hz per
channel, 18-byte packets) — runs 60 simulated seconds, and prints:

* the ECG node's radio and microcontroller energy (the paper's
  headline numbers: 502.9 mJ and 161.2 mJ),
* the Section 4.2 loss taxonomy (where every radio joule went),
* a battery-lifetime projection.

Run:  python examples/quickstart.py
"""

from repro import run_scenario
from repro.analysis.lifetime import project_lifetime
from repro.core.report import render_loss_breakdown, render_table
from repro.hw.battery import CR2477


def main() -> None:
    print("Simulating 60 s of a 5-node BAN "
          "(ECG streaming, static TDMA, 30 ms cycle)...")
    result = run_scenario(
        mac="static",
        app="ecg_streaming",
        num_nodes=5,
        cycle_ms=30.0,
        sampling_hz=205.0,  # per channel; Table 1, first row
        measure_s=60.0,
    )

    node = result.node("node1")  # the ECG node the paper reports
    print()
    print(render_table(
        ["component", "energy (mJ)", "paper sim (mJ)", "paper real (mJ)"],
        [
            ("radio (nRF2401)", node.radio_mj, 502.9, 540.6),
            ("MCU (MSP430)", node.mcu_mj, 161.2, 170.2),
        ],
        title="ECG node energy over 60 s"))

    print()
    print(render_loss_breakdown(node))

    print()
    projection = project_lifetime(node, CR2477, include_asic=True)
    print(f"Projected lifetime on a CR2477 coin cell: "
          f"{projection.days:.1f} days "
          f"({projection.average_power_mw:.2f} mW average, "
          f"ASIC included)")

    print()
    print(f"Whole network (5 nodes, radio+MCU): "
          f"{result.network_total_mj:.1f} mJ; base station radio: "
          f"{result.base_station.radio_mj:.1f} mJ "
          f"(receiver on almost continuously)")


if __name__ == "__main__":
    main()
