"""Ablation A7: PowerTOSSIM-style basic-block counting vs the paper's
model.

Section 2 criticises PowerTOSSIM on two counts: (1) "it needs an
accurate mapping from the basic blocks to binaries", and (2) "some low
level components and network communication effects are ignored or
significantly simplified".  This ablation quantifies both on Table 1
row 1:

* **Mapping sensitivity**: a perfect block->cycle mapping reproduces
  the MCU figure; ±10/20/30% mapping noise degrades it progressively.
* **Scope blindness**: even a perfect CPU estimate covers only ~24% of
  the node's energy — block counting cannot see the radio at all, and
  that is where the TDMA platform spends its budget.
"""

from conftest import bench_measure_s, run_once
from repro.baselines.powertossim import (
    build_program,
    estimate_mcu_energy,
    mapping_error_sweep,
)
from repro.net.scenario import BanScenarioConfig

MAPPING_ERRORS = (0.0, 0.1, 0.2, 0.3)


def run_study(measure_s: float):
    config = BanScenarioConfig(mac="static", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0, measure_s=measure_s)
    program = build_program(config)
    reference = estimate_mcu_energy(config, program.true_mapping(),
                                    program)
    worst = {}
    for relative_error in MAPPING_ERRORS:
        # Worst observed error over several mapping realisations.
        worst[relative_error] = max(
            mapping_error_sweep(config, [relative_error], reference,
                                seed=seed)[relative_error]
            for seed in range(10))
    return config, reference, worst


def test_ablation_powertossim_mapping(benchmark):
    measure_s = bench_measure_s()
    config, reference, worst = run_once(benchmark, run_study, measure_s)

    scale = measure_s / 60.0
    print(f"\nA7 PowerTOSSIM block counting, Table 1 row 1 "
          f"({measure_s:.0f} s):")
    print(f"  perfect mapping MCU estimate: {reference:.1f} mJ "
          f"(paper sim {161.2 * scale:.1f}, real {170.2 * scale:.1f})")
    for relative_error, observed in sorted(worst.items()):
        print(f"  mapping off by ±{100 * relative_error:.0f}%: "
              f"worst-case estimate error {100 * observed:.1f}%")
        benchmark.extra_info[f"err_at_{relative_error}"] = round(
            observed, 3)

    # (1) Accuracy tracks mapping quality, monotonically in the bound.
    assert worst[0.0] == 0.0
    assert worst[0.1] > 0.005
    assert worst[0.3] > worst[0.1]

    # (2) Scope: the MCU is a minority of the node budget at this
    # operating point (radio real: 540.6 mJ/60 s).
    radio_real = 540.6 * scale
    cpu_share = reference / (reference + radio_real)
    benchmark.extra_info["cpu_share"] = round(cpu_share, 3)
    assert cpu_share < 0.30
