"""Seeded-bug fixture: dimensional errors in an energy summary.

Every bug here is a real shape from energy-model code: adding
millijoules to joules, summing a current into an energy total,
squaring a current where ``I * V`` was meant, and returning seconds
from a function whose contract is joules.  The units analysis must
flag all four (see ``tests/test_lint_units.py``).
"""

#: Radio supply voltage.
SUPPLY_V = 2.8

#: Mains reference used by the comparison table -- no suffix and no
#: annotation, so UNI004 must flag it.
REFERENCE_BUDGET = 710.8


def total_energy_j(radio_j: float, mcu_energy_mj: float) -> float:
    # BUG(UNI001): adds millijoules into a joule total.
    return radio_j + mcu_energy_mj


def drained_charge(sleep_s: float, sleep_ma: float,
                   leak_ma: float) -> float:
    # BUG(UNI003): current * current -- the supply voltage was meant.
    power = sleep_ma * leak_ma
    return power * sleep_s


def report_energy_j(active_s: float) -> float:
    # BUG(UNI002): declared (by suffix) to return joules, returns time.
    return active_s
