"""TinyOS model: FIFO scheduler, tasks, virtual timers, components.

This package plays the role of the embedded OS (Section 3.2.1): it is
the only driver of the MCU power state, implements TinyOS run-to-
completion task semantics, and provides the layered component model of
Figure 1.
"""

from .components import Component, ComponentStack
from .power import DeepSleepPolicy, Lpm0Only, ThresholdDeepSleep
from .scheduler import TaskScheduler
from .tasks import Task
from .timers import VirtualTimer

__all__ = [
    "Component",
    "ComponentStack",
    "DeepSleepPolicy",
    "Lpm0Only",
    "ThresholdDeepSleep",
    "TaskScheduler",
    "Task",
    "VirtualTimer",
]
