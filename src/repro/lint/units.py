"""Dimensional analysis of the energy model (rules UNI001–UNI004).

The paper's estimator is ``E = I · Vdd · t``: every number the
simulator books is an ampere, a volt, a second, a tick, a joule or a
product of those.  The codebase already encodes units in names
(``supply_v``, ``radio_tx_a``, ``airtime_s``, ``energy_mj``) and in a
handful of conversion helpers (``seconds(...)``, ``to_seconds(...)``).
This pass takes those conventions seriously: it seeds units from
suffixes, calibration fields and known conversion calls, propagates
them forward through assignments, arithmetic and intra-module calls,
and reports only when *both* sides of an operation have confidently
known, incompatible units.

Representation
--------------
A :class:`Unit` is a mapping over six base dimensions — ``s`` (time),
``a`` (current), ``v`` (potential), ``tick`` (kernel integer time),
``cyc`` (MCU cycles), ``bit`` — plus a *decade scale* exponent ``e``
such that ``value = SI_value × 10**e`` (so mJ carries ``e=+3``, µs
``e=+6``).  Joules are the derived dimension ``s·a·v``, which is
exactly why ``tx_event_s(n) * radio_tx_a * supply_v`` type-checks as
energy with no annotation at all.  Multiplying by a power-of-ten
literal shifts the scale; multiplying by any other bare number makes
the scale unknown (dims survive, so J + s still gets caught).  A scale
of ``None`` means "dimension known, prefix unknown" and never fires a
scale-mix finding.

Rules
-----
* **UNI001** — adding/subtracting/comparing values with different
  dimensions (seconds + joules) or different known decade scales
  (J + mJ).  Also reports an unparseable ``# unit:`` annotation.
* **UNI002** — a ``return`` whose inferred unit contradicts the unit
  the function declares through its name suffix or ``# unit:`` header
  annotation (returning mJ from ``energy_j``).
* **UNI003** — multiplying two currents or two voltages: on this
  codebase that is always a misspelling of ``I · V``.
* **UNI004** — a public module-level ``float`` constant in a
  calibration module (``[tool.repro-lint] units.const_modules``) whose
  name carries no unit suffix and no ``# unit:`` annotation.

Ambiguity is resolved inline: ``MCU_CLOCK_HZ = 8_000_000  # unit:
cyc/s`` distinguishes "cycles per second" from plain 1/s, which is
what makes ``us * MCU_CLOCK_HZ / 1e6`` come out in cycles.
"""

from __future__ import annotations

import ast
import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import LintConfig
from .dataflow import (TERMINATED, function_header_lines, merge_envs,
                       unit_annotations)
from .engine import FileContext, Finding

# ---------------------------------------------------------------------------
# The unit algebra


@dataclass(frozen=True)
class Unit:
    """A physical dimension with an optional decade-scale exponent.

    ``dims`` is a sorted tuple of ``(base_dimension, exponent)`` pairs
    with zero exponents dropped; ``scale`` is the power of ten relating
    the value to its coherent-SI counterpart (``None`` = unknown).
    """

    dims: Tuple[Tuple[str, int], ...]
    scale: Optional[int]

    def with_scale(self, scale: Optional[int]) -> "Unit":
        return Unit(self.dims, scale)


def make_unit(dims: Dict[str, int],
              scale: Optional[int] = 0) -> Unit:
    """Normalise a dimension mapping into a :class:`Unit`."""
    return Unit(tuple(sorted((base, exp) for base, exp in dims.items()
                             if exp != 0)), scale)


DIMENSIONLESS = make_unit({})
_SECOND = {"s": 1}
_AMPERE = {"a": 1}
_VOLT = {"v": 1}
_WATT = {"a": 1, "v": 1}
_JOULE = {"s": 1, "a": 1, "v": 1}
_COULOMB = {"s": 1, "a": 1}
_HERTZ = {"s": -1}
_TICK = {"tick": 1}
_CYCLE = {"cyc": 1}
_BIT = {"bit": 1}

#: Name → unit, used both for identifier-suffix seeding ("the token
#: after the last underscore") and as the vocabulary of ``# unit:``
#: annotations.  Scale ``None`` marks non-decade units (bytes, mAh)
#: whose prefix arithmetic we refuse to guess.
UNIT_NAMES: Dict[str, Unit] = {
    "s": make_unit(_SECOND, 0),
    "seconds": make_unit(_SECOND, 0),
    "sec": make_unit(_SECOND, 0),
    "ms": make_unit(_SECOND, 3),
    "us": make_unit(_SECOND, 6),
    "ns": make_unit(_SECOND, 9),
    "j": make_unit(_JOULE, 0),
    "joules": make_unit(_JOULE, 0),
    "mj": make_unit(_JOULE, 3),
    "uj": make_unit(_JOULE, 6),
    "nj": make_unit(_JOULE, 9),
    "a": make_unit(_AMPERE, 0),
    "amps": make_unit(_AMPERE, 0),
    "ma": make_unit(_AMPERE, 3),
    "ua": make_unit(_AMPERE, 6),
    "v": make_unit(_VOLT, 0),
    "volts": make_unit(_VOLT, 0),
    "mv": make_unit(_VOLT, 3),
    "w": make_unit(_WATT, 0),
    "watts": make_unit(_WATT, 0),
    "mw": make_unit(_WATT, 3),
    "uw": make_unit(_WATT, 6),
    "c": make_unit(_COULOMB, 0),
    "coulombs": make_unit(_COULOMB, 0),
    "mah": make_unit(_COULOMB, None),
    "hz": make_unit(_HERTZ, 0),
    "khz": make_unit(_HERTZ, -3),
    "mhz": make_unit(_HERTZ, -6),
    "bps": make_unit({"bit": 1, "s": -1}, 0),
    "tick": make_unit(_TICK, 0),
    "ticks": make_unit(_TICK, 0),
    # "cyc" is annotation-only: "_cycles" names in this tree count TDMA
    # cycles (dimensionless), not core clock cycles, so seeding them
    # would mis-type the MAC layer.
    "cyc": make_unit(_CYCLE, 0),
    "bit": make_unit(_BIT, 0),
    "bits": make_unit(_BIT, 0),
    "byte": make_unit(_BIT, None),
    "bytes": make_unit(_BIT, None),
    "ppm": make_unit({}, 6),
    "pct": make_unit({}, 2),
    "ratio": make_unit({}, 0),
}

#: Bare identifiers (no underscore) that still carry a unit.  Suffix
#: seeding otherwise requires at least two name tokens, so a loop
#: variable called ``energy`` stays unknown but ``ticks`` does not.
EXACT_NAMES: Dict[str, Unit] = {
    name: UNIT_NAMES[name]
    for name in ("ticks", "tick", "bits", "bytes", "us",
                 "ms", "ns", "joules", "mah")
}

#: Conversion helpers whose return unit is part of their contract
#: (``repro.sim.simtime``); keyed by the call's last dotted component.
KNOWN_CALLS: Dict[str, Unit] = {
    "seconds": make_unit(_TICK, 0),
    "milliseconds": make_unit(_TICK, 0),
    "microseconds": make_unit(_TICK, 0),
    "nanoseconds": make_unit(_TICK, 0),
    "bits_duration": make_unit(_TICK, 0),
    "bytes_duration": make_unit(_TICK, 0),
    "to_seconds": make_unit(_SECOND, 0),
    "to_milliseconds": make_unit(_SECOND, 3),
    "to_microseconds": make_unit(_SECOND, 6),
}

#: Builtins that return (one of) their argument(s) unchanged — the
#: unit flows through, and for min/max/sum the arguments must agree.
_UNIT_PRESERVING = ("abs", "round", "float", "int", "min", "max",
                    "sum")

_NAMED_FORMS = [
    (make_unit(_JOULE, 0), "J"), (make_unit(_JOULE, 3), "mJ"),
    (make_unit(_JOULE, 6), "uJ"), (make_unit(_SECOND, 0), "s"),
    (make_unit(_SECOND, 3), "ms"), (make_unit(_SECOND, 6), "us"),
    (make_unit(_SECOND, 9), "ns"), (make_unit(_AMPERE, 0), "A"),
    (make_unit(_AMPERE, 3), "mA"), (make_unit(_VOLT, 0), "V"),
    (make_unit(_WATT, 0), "W"), (make_unit(_WATT, 3), "mW"),
    (make_unit(_COULOMB, 0), "C"), (make_unit(_HERTZ, 0), "Hz"),
    (make_unit(_TICK, 0), "tick"), (make_unit(_CYCLE, 0), "cyc"),
    (make_unit(_BIT, 0), "bit"), (DIMENSIONLESS, "1"),
]


def format_unit(unit: Unit) -> str:
    """Human form of a unit: a named unit when one matches."""
    for named, label in _NAMED_FORMS:
        if named == unit:
            return label
    if not unit.dims:
        body = "1"
    else:
        body = "*".join(base if exp == 1 else f"{base}^{exp}"
                        for base, exp in unit.dims)
    if unit.scale not in (0, None):
        body += f" x10^{unit.scale}"
    return body


class UnitParseError(ValueError):
    """An unparseable ``# unit:`` annotation."""


_UNIT_TOKEN_RE = re.compile(r"\s*([a-zA-Z0-9_]+|\^|-?\d+|[*/])")


def parse_unit(text: str) -> Unit:
    """Parse an annotation expression: ``name(^int)? (('*'|'/') ...)*``.

    ``cyc/s``, ``j``, ``tick/s``, ``1`` and ``bit*s^-1`` are all valid.
    """
    dims: Dict[str, int] = {}
    scale: Optional[int] = 0
    sign = 1
    pos = 0
    expect_name = True
    while pos < len(text):
        match = _UNIT_TOKEN_RE.match(text, pos)
        if match is None:
            raise UnitParseError(f"bad unit expression {text!r}")
        token = match.group(1)
        pos = match.end()
        if token in ("*", "/"):
            if expect_name:
                raise UnitParseError(f"bad unit expression {text!r}")
            sign = -1 if token == "/" else 1
            expect_name = True
            continue
        if not expect_name:
            raise UnitParseError(f"bad unit expression {text!r}")
        exponent = 1
        ahead = _UNIT_TOKEN_RE.match(text, pos)
        if ahead is not None and ahead.group(1) == "^":
            pos = ahead.end()
            power = _UNIT_TOKEN_RE.match(text, pos)
            if power is None or not re.fullmatch(r"-?\d+",
                                                 power.group(1)):
                raise UnitParseError(f"bad exponent in {text!r}")
            exponent = int(power.group(1))
            pos = power.end()
        if token == "1":
            expect_name = False
            continue
        named = UNIT_NAMES.get(token.lower())
        if named is None:
            raise UnitParseError(f"unknown unit {token!r} in {text!r}")
        for base, exp in named.dims:
            dims[base] = dims.get(base, 0) + sign * exponent * exp
        if named.scale is None or scale is None:
            scale = None
        else:
            scale += sign * exponent * named.scale
        expect_name = False
    if expect_name:
        raise UnitParseError(f"bad unit expression {text!r}")
    return make_unit(dims, scale)


def _combine_scales(a: Optional[int], b: Optional[int],
                    sign: int) -> Optional[int]:
    if a is None or b is None:
        return None
    return a + sign * b


def mul_units(a: Unit, b: Unit) -> Unit:
    """The unit of ``a * b``: dims add, decade scales add."""
    dims = dict(a.dims)
    for base, exp in b.dims:
        dims[base] = dims.get(base, 0) + exp
    return make_unit(dims, _combine_scales(a.scale, b.scale, 1))


def div_units(a: Unit, b: Unit) -> Unit:
    """The unit of ``a / b``: dims subtract, decade scales subtract."""
    dims = dict(a.dims)
    for base, exp in b.dims:
        dims[base] = dims.get(base, 0) - exp
    return make_unit(dims, _combine_scales(a.scale, b.scale, -1))


def pow_unit(unit: Unit, n: int) -> Unit:
    """The unit of ``value ** n`` for an integer exponent."""
    dims = {base: exp * n for base, exp in unit.dims}
    scale = None if unit.scale is None else unit.scale * n
    return make_unit(dims, scale)


def unit_from_identifier(name: str) -> Optional[Unit]:
    """Seed a unit from a name's trailing ``_<suffix>`` token."""
    lowered = name.lower().lstrip("_")
    exact = EXACT_NAMES.get(lowered)
    if exact is not None:
        return exact
    tokens = lowered.split("_")
    if len(tokens) < 2:
        return None
    return UNIT_NAMES.get(tokens[-1])


def _decade(value: object) -> Optional[int]:
    """The decade exponent of a power-of-ten number, else None."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if value == 0:
        return None
    magnitude = math.log10(abs(value))
    rounded = round(magnitude)
    if math.isclose(magnitude, rounded, abs_tol=1e-9):
        return int(rounded)
    return None


def _is_number(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and not isinstance(node.value, bool)
            and isinstance(node.value, (int, float)))


def _numeric_value(node: ast.AST) -> Optional[float]:
    if _is_number(node):
        return node.value  # type: ignore[union-attr,return-value]
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and _is_number(node.operand):
        return -node.operand.value  # type: ignore[union-attr]
    return None


# ---------------------------------------------------------------------------
# The analysis


def _last_component(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _TreeIndex:
    """Cross-file unit knowledge: annotations and function returns.

    Names are matched case-insensitively by their last component; a
    name annotated (or suffixed) inconsistently in two places is
    dropped back to unknown rather than guessed.
    """

    def __init__(self) -> None:
        self.names: Dict[str, Optional[Unit]] = {}
        self.functions: Dict[str, Optional[Unit]] = {}
        self.annotated_lines: Dict[Tuple[str, int], Unit] = {}

    def _learn(self, table: Dict[str, Optional[Unit]], name: str,
               unit: Unit) -> None:
        key = name.lower()
        if key not in table:
            table[key] = unit
        elif table[key] != unit:
            table[key] = None

    def name_unit(self, name: str) -> Optional[Unit]:
        learned = self.names.get(name.lower())
        if learned is not None:
            return learned
        return unit_from_identifier(name)

    def function_unit(self, name: str) -> Optional[Unit]:
        key = name.lower()
        if key in self.functions:
            return self.functions[key]
        return unit_from_identifier(name)


def _index_file(ctx: FileContext, index: _TreeIndex,
                findings: List[Finding]) -> None:
    annotations = unit_annotations(ctx.lines)
    if not annotations:
        annotations = {}
    parsed: Dict[int, Unit] = {}
    for line, text in annotations.items():
        try:
            parsed[line] = parse_unit(text)
        except UnitParseError as exc:
            findings.append(ctx.finding_at(
                "UNI001", line, 0,
                f"invalid '# unit:' annotation: {exc}"))
    if not parsed:
        return
    consumed: set = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for line in function_header_lines(node):
                unit = parsed.get(line)
                if unit is not None:
                    index._learn(index.functions, node.name, unit)
                    consumed.add(line)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            lines = range(node.lineno, node.end_lineno + 1
                          if node.end_lineno else node.lineno + 1)
            unit = next((parsed[ln] for ln in lines if ln in parsed),
                        None)
            if unit is None:
                continue
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                name = _last_component(target)
                if name is not None:
                    index._learn(index.names, name, unit)
            for ln in lines:
                if ln in parsed:
                    index.annotated_lines[(str(ctx.path), ln)] = \
                        parsed[ln]
                    consumed.add(ln)


class _UnitChecker:
    """Forward unit propagation through one function (or module) body."""

    def __init__(self, ctx: FileContext, index: _TreeIndex,
                 findings: List[Finding]) -> None:
        self.ctx = ctx
        self.index = index
        self.findings = findings

    # -- reporting ---------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(self.ctx.finding_at(
            code, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), message))

    # -- expression evaluation --------------------------------------

    def eval(self, node: ast.AST,
             env: Dict[str, Optional[Unit]]) -> Optional[Unit]:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self.index.name_unit(node.id)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            return self.index.name_unit(node.attr)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            if isinstance(node.op, (ast.UAdd, ast.USub)):
                return inner
            return None
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node, env)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return None
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            first = self.eval(node.body, env)
            second = self.eval(node.orelse, env)
            return first if first == second else None
        if isinstance(node, ast.Subscript):
            self.eval(node.value, env)
            if isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, str):
                return unit_from_identifier(node.slice.value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.eval(element, env)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value, env)
            return None
        if isinstance(node, (ast.GeneratorExp, ast.ListComp,
                             ast.SetComp, ast.DictComp)):
            return None
        return None

    def _check_add(self, node: ast.AST, left: Optional[Unit],
                   right: Optional[Unit], verb: str
                   ) -> Optional[Unit]:
        if left is None or right is None:
            return left if right is None else right
        if left.dims != right.dims:
            self._report(node, "UNI001",
                         f"unit mismatch: cannot {verb} "
                         f"{format_unit(left)} and "
                         f"{format_unit(right)}")
            return None
        if left.scale is not None and right.scale is not None \
                and left.scale != right.scale:
            self._report(node, "UNI001",
                         f"scale mismatch: cannot {verb} "
                         f"{format_unit(left)} and "
                         f"{format_unit(right)} (same dimension, "
                         f"different prefix)")
            return None
        scale = left.scale if left.scale is not None else right.scale
        return left.with_scale(scale)

    def _eval_binop(self, node: ast.BinOp,
                    env: Dict[str, Optional[Unit]]) -> Optional[Unit]:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if _is_number(node.left) or _is_number(node.right):
                return left if right is None else right
            verb = "add" if isinstance(node.op, ast.Add) \
                else "subtract"
            return self._check_add(node, left, right, verb)
        if isinstance(node.op, ast.Mult):
            return self._eval_mult(node, left, right, env)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return self._eval_div(node, left, right)
        if isinstance(node.op, ast.Mod):
            return left
        if isinstance(node.op, ast.Pow):
            exponent = _numeric_value(node.right)
            if left is not None and exponent is not None \
                    and float(exponent).is_integer():
                return pow_unit(left, int(exponent))
            return None
        return None

    def _eval_mult(self, node: ast.BinOp, left: Optional[Unit],
                   right: Optional[Unit],
                   env: Dict[str, Optional[Unit]]) -> Optional[Unit]:
        for constant, other in ((node.left, right),
                                (node.right, left)):
            value = _numeric_value(constant)
            if value is not None:
                if other is None:
                    return None
                decade = _decade(value)
                if decade is None or other.scale is None:
                    return other.with_scale(None)
                return other.with_scale(other.scale + decade)
        if left is None or right is None:
            return None
        if left.dims == right.dims and left.dims:
            if left.dims == make_unit(_AMPERE).dims:
                self._report(node, "UNI003",
                             "multiplying two currents — power is "
                             "I * Vdd, not I * I")
            elif left.dims == make_unit(_VOLT).dims:
                self._report(node, "UNI003",
                             "multiplying two voltages — power is "
                             "I * Vdd, not V * V")
        return mul_units(left, right)

    def _eval_div(self, node: ast.BinOp, left: Optional[Unit],
                  right: Optional[Unit]) -> Optional[Unit]:
        value = _numeric_value(node.right)
        if value is not None:
            if left is None:
                return None
            decade = _decade(value)
            if decade is None or left.scale is None:
                return left.with_scale(None)
            return left.with_scale(left.scale - decade)
        value = _numeric_value(node.left)
        if value is not None:
            if right is None:
                return None
            decade = _decade(value)
            inverted = div_units(DIMENSIONLESS, right)
            if decade is None or inverted.scale is None:
                return inverted.with_scale(None)
            return inverted.with_scale(inverted.scale + decade)
        if left is None or right is None:
            return None
        return div_units(left, right)

    def _eval_compare(self, node: ast.Compare,
                      env: Dict[str, Optional[Unit]]
                      ) -> Optional[Unit]:
        operands = [node.left] + list(node.comparators)
        units = [self.eval(operand, env) for operand in operands]
        for position, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq, ast.Lt,
                                   ast.LtE, ast.Gt, ast.GtE)):
                continue
            left_node = operands[position]
            right_node = operands[position + 1]
            if _is_number(left_node) or _is_number(right_node):
                continue
            self._check_add(node, units[position],
                            units[position + 1], "compare")
        return DIMENSIONLESS

    def _eval_call(self, node: ast.Call,
                   env: Dict[str, Optional[Unit]]) -> Optional[Unit]:
        arg_units = [self.eval(arg, env) for arg in node.args]
        for keyword in node.keywords:
            self.eval(keyword.value, env)
        name = _last_component(node.func)
        if name is None:
            return None
        if name in KNOWN_CALLS:
            return KNOWN_CALLS[name]
        if name in _UNIT_PRESERVING:
            known = [unit for unit in arg_units if unit is not None]
            if name in ("min", "max", "sum") and len(known) > 1:
                folded: Optional[Unit] = known[0]
                for unit in known[1:]:
                    folded = self._check_add(node, folded, unit,
                                             f"{name}() over")
            return known[0] if len(known) == 1 else (
                known[0] if known and all(u.dims == known[0].dims
                                          for u in known) else None)
        return self.index.function_unit(name)

    # -- statement walking ------------------------------------------

    def _line_annotation(self, stmt: ast.stmt) -> Optional[Unit]:
        last = stmt.end_lineno or stmt.lineno
        for line in range(stmt.lineno, last + 1):
            unit = self.index.annotated_lines.get(
                (str(self.ctx.path), line))
            if unit is not None:
                return unit
        return None

    def exec_block(self, stmts: Sequence[ast.stmt],
                   env: Optional[Dict[str, Optional[Unit]]],
                   declared: Optional[Unit]
                   ) -> Optional[Dict[str, Optional[Unit]]]:
        for stmt in stmts:
            if env is TERMINATED:
                return TERMINATED
            env = self._exec_stmt(stmt, env, declared)
        return env

    def _bind(self, env: Dict[str, Optional[Unit]], target: ast.AST,
              unit: Optional[Unit]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = unit
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(env, element, None)

    def _exec_stmt(self, stmt: ast.stmt,
                   env: Dict[str, Optional[Unit]],
                   declared: Optional[Unit]
                   ) -> Optional[Dict[str, Optional[Unit]]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Import,
                             ast.ImportFrom, ast.Global,
                             ast.Nonlocal, ast.Pass)):
            return env
        if isinstance(stmt, ast.Assign):
            unit = self._line_annotation(stmt)
            value = self.eval(stmt.value, env)
            if unit is None:
                unit = value
            for target in stmt.targets:
                self._bind(env, target, unit)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return env
            unit = self._line_annotation(stmt)
            value = self.eval(stmt.value, env)
            self._bind(env, stmt.target,
                       unit if unit is not None else value)
            return env
        if isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target, env)
            value = self.eval(stmt.value, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) \
                    and not _is_number(stmt.value):
                verb = ("add" if isinstance(stmt.op, ast.Add)
                        else "subtract")
                self._check_add(stmt, current, value, verb)
            elif isinstance(stmt.op, ast.Mult) \
                    and isinstance(stmt.target, ast.Name):
                fake = ast.BinOp(left=stmt.target, op=ast.Mult(),
                                 right=stmt.value)
                ast.copy_location(fake, stmt)
                env[stmt.target.id] = self._eval_mult(
                    fake, current, value, env)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                actual = self.eval(stmt.value, env)
                if declared is not None and actual is not None:
                    if declared.dims != actual.dims or (
                            declared.scale is not None
                            and actual.scale is not None
                            and declared.scale != actual.scale):
                        self._report(
                            stmt, "UNI002",
                            f"returns {format_unit(actual)} from a "
                            f"function declared to return "
                            f"{format_unit(declared)}")
            return TERMINATED
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            return TERMINATED
        if isinstance(stmt, (ast.Expr, ast.Assert)):
            value = stmt.value if isinstance(stmt, ast.Expr) \
                else stmt.test
            self.eval(value, env)
            return env
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            branches = [
                self.exec_block(stmt.body, dict(env), declared),
                self.exec_block(stmt.orelse, dict(env), declared),
            ]
            return merge_envs(branches)
        if isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.While):
                self.eval(stmt.test, env)
                entry = dict(env)
            else:
                self.eval(stmt.iter, env)
                entry = dict(env)
                self._bind(entry, stmt.target, None)
            after_body = self.exec_block(stmt.body, entry, declared)
            merged = merge_envs([dict(env), after_body])
            return self.exec_block(stmt.orelse, merged or dict(env),
                                   declared)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_block(stmt.body, dict(env), declared)
            branches = [body_env]
            for handler in stmt.handlers:
                branches.append(self.exec_block(handler.body,
                                                dict(env), declared))
            branches.append(self.exec_block(stmt.orelse,
                                            body_env if body_env
                                            is not TERMINATED
                                            else dict(env), declared))
            merged = merge_envs(branches)
            return self.exec_block(stmt.finalbody,
                                   merged if merged is not TERMINATED
                                   else dict(env), declared)
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(env, item.optional_vars, None)
            return self.exec_block(stmt.body, env, declared)
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env


def _declared_return(node: ast.AST, index: _TreeIndex,
                     ctx: FileContext) -> Optional[Unit]:
    path = str(ctx.path)
    for line in function_header_lines(node):
        unit = index.annotated_lines.get((path, line))
        if unit is not None:
            return unit
    header = index.functions.get(node.name.lower())  # type: ignore
    if header is not None:
        return header
    return unit_from_identifier(node.name)  # type: ignore[attr-defined]


def _check_constants(ctx: FileContext, index: _TreeIndex,
                     findings: List[Finding]) -> None:
    path = str(ctx.path)
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            value: Optional[ast.AST] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) \
                and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            value = stmt.value
        else:
            continue
        if value is None or name.startswith("_"):
            continue
        number = _numeric_value(value)
        if number is None or not isinstance(number, float):
            continue
        if unit_from_identifier(name) is not None:
            continue
        lines = range(stmt.lineno, (stmt.end_lineno or stmt.lineno)
                      + 1)
        if any((path, line) in index.annotated_lines
               for line in lines):
            continue
        findings.append(ctx.finding_at(
            "UNI004", stmt.lineno, stmt.col_offset,
            f"public calibration constant '{name}' carries no unit "
            f"suffix and no '# unit:' annotation"))


def _module_matches(module_path: str,
                    patterns: Iterable[str]) -> bool:
    for pattern in patterns:
        if module_path == pattern or module_path.endswith(
                "/" + pattern) or module_path.startswith(pattern):
            return True
    return False


def _function_params(node: ast.AST) -> Dict[str, Optional[Unit]]:
    env: Dict[str, Optional[Unit]] = {}
    arguments = node.args  # type: ignore[attr-defined]
    for arg in (arguments.posonlyargs + arguments.args
                + arguments.kwonlyargs):
        env[arg.arg] = unit_from_identifier(arg.arg)
    if arguments.vararg is not None:
        env[arguments.vararg.arg] = None
    if arguments.kwarg is not None:
        env[arguments.kwarg.arg] = None
    return env


def analyze_units(contexts: Sequence[FileContext],
                  config: LintConfig) -> List[Finding]:
    """Run the dimensional analysis over every parsed file."""
    findings: List[Finding] = []
    index = _TreeIndex()
    for ctx in contexts:
        _index_file(ctx, index, findings)
    for ctx in contexts:
        checker = _UnitChecker(ctx, index, findings)
        module_body = [stmt for stmt in ctx.tree.body
                       if not isinstance(stmt, (ast.FunctionDef,
                                                ast.AsyncFunctionDef,
                                                ast.ClassDef))]
        checker.exec_block(module_body, {}, None)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            declared = _declared_return(node, index, ctx)
            checker.exec_block(node.body, _function_params(node),
                               declared)
        if _module_matches(ctx.module_path,
                           config.units_const_modules):
            _check_constants(ctx, index, findings)
    return findings


CODES = ("UNI001", "UNI002", "UNI003", "UNI004")

__all__ = [
    "CODES",
    "DIMENSIONLESS",
    "Unit",
    "UnitParseError",
    "analyze_units",
    "format_unit",
    "make_unit",
    "mul_units",
    "div_units",
    "parse_unit",
    "pow_unit",
    "unit_from_identifier",
]
