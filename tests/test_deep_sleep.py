"""Tests for the LPM ladder and the deep-sleep power-policy extension."""

import pytest

from repro.core.calibration import MCU_LPM_LADDER_A
from repro.hw.mcu import ACTIVE, DEEP_SLEEP, SLEEP, Msp430
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.simtime import milliseconds, seconds
from repro.tinyos.power import Lpm0Only, ThresholdDeepSleep


class TestLpmLadder:
    def test_five_modes_defined(self):
        assert set(MCU_LPM_LADDER_A) \
            == {"lpm0", "lpm1", "lpm2", "lpm3", "lpm4"}
        currents = [MCU_LPM_LADDER_A[f"lpm{i}"] for i in range(5)]
        assert currents == sorted(currents, reverse=True)

    def test_lpm0_is_the_measured_value(self, cal):
        assert MCU_LPM_LADDER_A["lpm0"] == cal.mcu_sleep_a == 0.66e-3

    def test_mcu_deep_state(self, sim, cal):
        mcu = Msp430(sim, cal)
        mcu.sleep(deep=True)
        assert mcu.ledger.state == DEEP_SLEEP
        assert mcu.is_sleeping
        sim.run_until(seconds(10.0))
        expected = cal.mcu_deep_sleep_a * cal.supply_v * 10.0 * 1e3
        assert mcu.energy_mj() == pytest.approx(expected)

    def test_wake_from_deep_costs_same_latency(self, sim, cal):
        mcu = Msp430(sim, cal)
        mcu.sleep(deep=True)
        assert mcu.wake() == 6_000  # 6 us
        assert mcu.ledger.state == ACTIVE

    def test_deepen_ongoing_sleep(self, sim, cal):
        mcu = Msp430(sim, cal)
        assert mcu.ledger.state == SLEEP
        mcu.sleep(deep=True)
        assert mcu.ledger.state == DEEP_SLEEP


class TestPolicies:
    def test_lpm0_only_never_deep(self):
        policy = Lpm0Only()
        assert not policy.choose_deep(None)
        assert not policy.choose_deep(10**12)

    def test_threshold_policy(self):
        policy = ThresholdDeepSleep(milliseconds(2))
        assert not policy.choose_deep(None)  # unknown gap: stay safe
        assert not policy.choose_deep(milliseconds(1))
        assert policy.choose_deep(milliseconds(2))
        assert policy.choose_deep(milliseconds(100))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdDeepSleep(0)


class TestScenarioIntegration:
    def run(self, threshold_ms, app="rpeak", cycle_ms=120.0):
        config = BanScenarioConfig(
            mac="static", app=app, num_nodes=1, cycle_ms=cycle_ms,
            measure_s=6.0, deep_sleep_threshold_ms=threshold_ms)
        scenario = BanScenario(config)
        return scenario, scenario.run()

    def test_default_never_enters_deep(self):
        _, result = self.run(None)
        assert "deep_sleep" not in result.node("node1").mcu_by_state_mj

    def test_deep_sleep_reduces_mcu_energy(self):
        _, base = self.run(None)
        _, deep = self.run(2.0)
        assert deep.node("node1").mcu_mj \
            < 0.6 * base.node("node1").mcu_mj
        assert deep.node("node1").mcu_by_state_mj["deep_sleep"] > 0

    def test_radio_energy_unchanged(self):
        """The power policy touches only the MCU."""
        _, base = self.run(None)
        _, deep = self.run(2.0)
        assert deep.node("node1").radio_mj \
            == pytest.approx(base.node("node1").radio_mj, rel=1e-9)

    def test_functionality_preserved(self):
        """Deep sleeping must not lose samples, beats or packets."""
        scenario_base, base = self.run(None)
        scenario_deep, deep = self.run(2.0)
        assert deep.node("node1").traffic.data_tx \
            == base.node("node1").traffic.data_tx
        assert scenario_deep.nodes[0].app.samples_taken \
            == scenario_base.nodes[0].app.samples_taken

    def test_high_rate_app_gets_no_deep_gaps(self):
        """Streaming at 205 Hz wakes every ~4.9 ms; with a 6 ms
        threshold the policy finds no eligible gap."""
        config = BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=1,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=3.0,
            deep_sleep_threshold_ms=6.0)
        result = BanScenario(config).run()
        deep_mj = result.node("node1").mcu_by_state_mj.get(
            "deep_sleep", 0.0)
        assert deep_mj == 0.0

    def test_time_partition_still_exact(self):
        scenario, _ = self.run(2.0)
        node = scenario.nodes[0]
        assert node.mcu.ledger.ticks_in() == seconds(6.0)
