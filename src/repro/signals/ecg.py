"""Synthetic electrocardiogram generator.

The Rpeak case study (Section 5.2) feeds the node "an ECG signal with a
heart rate of 75 beats/min"; we synthesise an equivalent.  Each beat is
a sum of Gaussian bumps for the P, Q, R, S and T waves (the standard
phenomenological ECG model, cf. McSharry's ECGSYN), which gives a clean,
fully deterministic signal whose R-peak times are known exactly — the
detector's ground truth.

Heart-rate variability is modelled as a slow sinusoidal modulation of
the beat-to-beat interval (respiratory sinus arrhythmia at ~0.1 Hz); it
defaults to zero so the case-study rate is exact.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Wave:
    """One Gaussian bump of the PQRST complex.

    Attributes:
        amplitude: peak value in millivolts (sign gives polarity).
        offset_s: centre position relative to the R peak, in seconds.
        width_s: Gaussian sigma in seconds.
    """

    amplitude: float
    offset_s: float
    width_s: float


#: Canonical PQRST morphology (lead-II-like), amplitudes in millivolts.
PQRST: Tuple[Wave, ...] = (
    Wave(amplitude=0.12, offset_s=-0.200, width_s=0.025),   # P
    Wave(amplitude=-0.15, offset_s=-0.025, width_s=0.010),  # Q
    Wave(amplitude=1.00, offset_s=0.000, width_s=0.012),    # R
    Wave(amplitude=-0.25, offset_s=0.025, width_s=0.010),   # S
    Wave(amplitude=0.35, offset_s=0.250, width_s=0.060),    # T
)


class SyntheticEcg:
    """Deterministic ECG signal with exact R-peak ground truth.

    Args:
        heart_rate_bpm: mean heart rate (the paper uses 75).
        amplitude_mv: R-peak amplitude scale (1.0 => the PQRST table's
            millivolt values are used as-is).
        hrv_fraction: peak fractional modulation of the RR interval
            (0 = metronomic).
        hrv_frequency_hz: modulation frequency (respiration, ~0.1 Hz).
        first_beat_s: time of the first R peak.
        morphology: the PQRST waves; override for abnormal beats.
    """

    def __init__(self, heart_rate_bpm: float = 75.0,
                 amplitude_mv: float = 1.0,
                 hrv_fraction: float = 0.0,
                 hrv_frequency_hz: float = 0.1,
                 first_beat_s: float = 0.35,
                 morphology: Sequence[Wave] = PQRST) -> None:
        if heart_rate_bpm <= 0:
            raise ValueError(f"heart rate must be positive: {heart_rate_bpm}")
        if not 0.0 <= hrv_fraction < 0.5:
            raise ValueError(
                f"hrv_fraction must be in [0, 0.5): {hrv_fraction}")
        self.heart_rate_bpm = heart_rate_bpm
        self.amplitude_mv = amplitude_mv
        self.hrv_fraction = hrv_fraction
        self.hrv_frequency_hz = hrv_frequency_hz
        self.morphology = tuple(morphology)
        # Hot path (value_at) iterates the morphology once per sample;
        # plain tuples avoid repeated dataclass attribute lookups.  Each
        # wave carries a cutoff distance beyond which exp() underflows
        # to exactly 0.0 (|dt/width| >= 38.73 => exponent <= -750, well
        # past the ~-745.2 double underflow), so skipping it adds the
        # same +/-0.0 the full evaluation would.
        self._waves: Tuple[Tuple[float, float, float, float], ...] = tuple(
            (w.amplitude, w.offset_s, w.width_s, w.width_s * 38.73)
            for w in self.morphology)
        self._mean_rr_s = 60.0 / heart_rate_bpm
        self._beats: List[float] = [first_beat_s]
        # One-entry memo: sources are pure functions of time, and every
        # ASIC channel wrapping this instance samples the same instants,
        # so consecutive repeats are common (one per extra channel).
        self._memo_t: float = math.nan
        self._memo_v: float = 0.0

    # ------------------------------------------------------------------
    # Beat schedule
    # ------------------------------------------------------------------
    def _ensure_beats_until(self, t_seconds: float) -> None:
        # Generate one beat beyond t so interpolation near t is complete.
        horizon = t_seconds + 2.0 * self._mean_rr_s
        while self._beats[-1] < horizon:
            last = self._beats[-1]
            modulation = 1.0 + self.hrv_fraction * math.sin(
                2.0 * math.pi * self.hrv_frequency_hz * last)
            self._beats.append(last + self._mean_rr_s * modulation)

    def r_peak_times(self, until_s: float) -> List[float]:
        """Ground-truth R-peak times in [0, until_s]."""
        self._ensure_beats_until(until_s)
        return [b for b in self._beats if b <= until_s]

    # ------------------------------------------------------------------
    # Signal value
    # ------------------------------------------------------------------
    def value_at(self, t_seconds: float) -> float:
        """Signal value in millivolts at ``t_seconds``."""
        # lint: allow(FLT001): exact-identity memo hit, not a tolerance
        if t_seconds == self._memo_t:
            return self._memo_v
        self._ensure_beats_until(t_seconds)
        # Only the two beats bracketing t can contribute (waves span
        # well under half an RR interval).
        exp = math.exp
        waves = self._waves
        value = 0.0
        for beat in self._neighbouring_beats(t_seconds):
            for amplitude, offset_s, width_s, cutoff in waves:
                dt = t_seconds - (beat + offset_s)
                if -cutoff < dt < cutoff:
                    value += amplitude * exp(-0.5 * (dt / width_s) ** 2)
        result = self.amplitude_mv * value
        self._memo_t = t_seconds
        self._memo_v = result
        return result

    def _neighbouring_beats(self, t_seconds: float) -> List[float]:
        index = bisect_left(self._beats, t_seconds)
        lo = max(0, index - 1)
        hi = min(len(self._beats), index + 1)
        return self._beats[lo:hi + 1]


__all__ = ["Wave", "PQRST", "SyntheticEcg"]
