"""Calibrated model parameters.

Every number the energy model depends on lives here, together with where
it comes from.  There are two kinds of constants:

**Published values** (Sections 3-4 of the paper):

===========================  =========================================
MCU supply                   2.8 V
MCU active current           2.0 mA
MCU power-saving current     0.66 mA
MCU wake-up latency          6 us
Radio supply                 2.8 V
Radio RX current             24.82 mA
Radio TX current             17.54 mA
Radio standby current        neglected (< 100 uA, below the paper's
                             measurement resolution)
ASIC power                   10.5 mW constant at 3.0 V
MSP430 energy/instruction    0.6 nJ (datasheet figure quoted in paper)
===========================  =========================================

**Fitted values**, reverse-engineered from the paper's *Sim* columns
(Tables 1-4).  The paper does not publish its internal timing parameters,
so we recover them by least squares on the published rows:

* Static TDMA radio energy per cycle is constant: ~0.2515 mJ for the
  streaming application and ~0.2277 mJ for Rpeak.  Their difference is
  the per-cycle TX event (streaming transmits every cycle, Rpeak almost
  never), giving a TX event of ~485 us: 195 us PLL settle (nRF2401
  datasheet), 208 us airtime for a 26-byte ShockBurst frame at 1 Mbit/s
  and an ~82 us shutdown tail.  The remaining ~0.228 mJ/cycle at the RX
  current corresponds to a ~3.28 ms beacon-listen window, realised as a
  3104 us wake-up lead + 144 us beacon airtime + 32 us turn-off tail.
* Dynamic TDMA radio energy per cycle *grows* with the cycle length,
  i.e. the implementation re-arms its guard proportionally to the
  beacon period (crystal-drift guard):
  window ~= 2.2 ms + 0.017 * cycle.
* MCU active time fits a per-cycle + per-sample decomposition exactly
  (residuals < 1% on Tables 1 and 3):
  streaming: 6.43 ms/cycle + 22 us/sample;
  Rpeak: 2.24 ms/cycle + 196.7 us/sample.
  We decompose the per-cycle term into beacon processing (2.24 ms,
  common to both applications) plus packet preparation / FIFO load
  (4.19 ms, paid per transmitted packet), and the Rpeak per-sample term
  into sample acquisition (22 us, common) plus the beat-detection
  algorithm (174.7 us).  All MCU costs are expressed in core clock
  cycles at 8 MHz ("we had to run the microcontroller at the maximum
  speed", Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Published electrical constants
# ---------------------------------------------------------------------------

#: Supply voltage of MCU and radio during the paper's measurements [V].
SUPPLY_V = 2.8

#: MSP430F149 active-mode current at 2.8 V [A] (Section 4.1).
MCU_ACTIVE_A = 2.0e-3

#: MSP430F149 power-saving-mode (LPM0) current at 2.8 V [A] (Section 4.1).
MCU_SLEEP_A = 0.66e-3

#: Deeper low-power modes [A].  The paper's applications "only used the
#: first low power mode", so only LPM0 above is *measured*; these are
#: extension estimates for the what-if study (datasheet core currents
#: plus the same board floor the LPM0 measurement implies), used by the
#: deep-sleep ablation, never by the validated reproduction.
MCU_LPM_LADDER_A = {
    "lpm0": MCU_SLEEP_A,
    "lpm1": 0.50e-3,
    "lpm2": 0.25e-3,
    "lpm3": 0.10e-3,
    "lpm4": 0.05e-3,
}

#: MSP430 wake-up latency from stand-by to active [s] (Section 3.1).
MCU_WAKEUP_S = 6e-6

#: MSP430 core clock used in the case studies [Hz] (max speed, Section 5.1).
MCU_CLOCK_HZ = 8_000_000  # unit: cyc/s

#: nRF2401 receive current at 2.8 V [A] (Section 4.2).
RADIO_RX_A = 24.82e-3

#: nRF2401 transmit current at 2.8 V [A] (Section 4.2).
RADIO_TX_A = 17.54e-3

#: nRF2401 stand-by current [A]; the paper neglects it (< 100 uA was
#: below the measurement resolution).  Modelled as zero by default; the
#: datasheet value (~12 uA) is available for sensitivity studies.
RADIO_STANDBY_A = 0.0

#: nRF2401 stand-by current from the datasheet [A], for ablations.
RADIO_STANDBY_DATASHEET_A = 12e-6

#: nRF2401 power-down current [A] (sub-uA; modelled as zero).
RADIO_POWER_DOWN_A = 0.0

#: 25-channel biopotential ASIC: constant power [W] at its own 3.0 V
#: supply (Section 5).  The paper excludes it from the validation tables.
ASIC_POWER_W = 10.5e-3

#: ASIC supply voltage [V].
ASIC_SUPPLY_V = 3.0


# ---------------------------------------------------------------------------
# Radio frame timing (nRF2401 ShockBurst)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RadioTiming:
    """Timing parameters of the nRF2401 ShockBurst air interface.

    The frame layout (preamble + address + payload + CRC) follows the
    nRF2401 datasheet; the settle/tail overheads are fitted so a TX event
    with the 18-byte case-study payload costs the 23.8 uJ implied by the
    difference between the paper's streaming and Rpeak tables.
    """

    bitrate_bps: float = 1_000_000.0
    preamble_bytes: int = 1
    address_bytes: int = 5
    crc_bytes: int = 2
    #: PLL settle time before a burst, at TX current [s] (datasheet ~195 us).
    tx_settle_s: float = 195e-6
    #: Shutdown tail after a burst, at TX current [s] (fitted).
    tx_tail_s: float = 82e-6
    #: RX chain turn-off tail after a frame [s] (fitted).
    rx_tail_s: float = 32e-6

    def frame_bytes(self, payload_bytes: int) -> int:
        """Total over-the-air frame size for ``payload_bytes`` of payload."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return (self.preamble_bytes + self.address_bytes
                + payload_bytes + self.crc_bytes)

    def airtime_s(self, payload_bytes: int) -> float:
        """Frame airtime in seconds."""
        return 8 * self.frame_bytes(payload_bytes) / self.bitrate_bps

    def tx_event_s(self, payload_bytes: int) -> float:
        """Total radio-on time for one transmission (settle+air+tail)."""
        return self.tx_settle_s + self.airtime_s(payload_bytes) \
            + self.tx_tail_s


#: Default ShockBurst timing used throughout the reproduction.
RADIO_TIMING = RadioTiming()


# ---------------------------------------------------------------------------
# MAC synchronisation calibration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SyncCalibration:
    """Beacon-listen guard parameters.

    A sensor node wakes its radio ``lead`` seconds before the expected
    beacon start and listens until the beacon has been received.  The
    realised RX window is then ``lead + beacon airtime + rx tail``.

    * Static TDMA uses a **fixed** lead (the paper's static tables show a
      cycle-independent window).
    * Dynamic TDMA re-arms its guard proportionally to the cycle length
      (the dynamic tables show the window growing with the cycle), which
      is what a worst-case crystal-drift guard looks like when the sync
      interval equals the TDMA cycle.
    """

    #: Fixed wake-up lead before the expected beacon, static TDMA [s].
    #: Chosen so lead + beacon airtime (9-byte payload => 136 us) +
    #: RX tail (32 us) equals the fitted ~3.28 ms window.
    static_lead_s: float = 3112e-6
    #: Base wake-up lead, dynamic TDMA [s] (window base ~2.2 ms minus
    #: the mid-size beacon airtime and RX tail).
    dynamic_base_lead_s: float = 2048e-6
    #: Cycle-proportional guard component, dynamic TDMA [s per s of cycle].
    dynamic_drift_coeff: float = 0.017

    def static_lead_ticks(self) -> int:
        """Static lead in simulation ticks."""
        from ..sim.simtime import seconds
        return seconds(self.static_lead_s)

    def dynamic_lead_ticks(self, cycle_ticks: int) -> int:
        """Dynamic lead in ticks for a TDMA cycle of ``cycle_ticks``."""
        from ..sim.simtime import seconds
        return seconds(self.dynamic_base_lead_s) \
            + round(self.dynamic_drift_coeff * cycle_ticks)


#: Default synchronisation calibration.
SYNC_CALIBRATION = SyncCalibration()


# ---------------------------------------------------------------------------
# MCU activity costs (clock cycles at MCU_CLOCK_HZ)
# ---------------------------------------------------------------------------

def _us_to_cycles(us: float) -> int:  # unit: cyc
    """Convert microseconds of fitted active time to core clock cycles."""
    return round(us * MCU_CLOCK_HZ / 1e6)


@dataclass(frozen=True)
class McuCosts:
    """Per-activity MCU costs, in core clock cycles.

    The values decompose the fitted per-cycle / per-sample active times
    (module docstring) into TinyOS-level activities.  At 8 MHz one cycle
    is 125 ns; the paper's 0.6 nJ/instruction figure corresponds to the
    active current (2 mA * 2.8 V / 8 MHz = 0.7 nJ per cycle), consistent
    with multi-cycle instructions.
    """

    #: Handling one received beacon: sync bookkeeping, schedule update,
    #: slot timer re-arm (fitted 2.24 ms => 17920 cycles).
    beacon_processing: int = _us_to_cycles(2240.0)
    #: Preparing and loading one data packet into the radio FIFO over SPI
    #: (fitted 4.19 ms => 33520 cycles, paid per transmitted packet).
    packet_preparation: int = _us_to_cycles(4190.0)
    #: Acquiring one ADC sample and packing it to 12 bits
    #: (fitted 22 us => 176 cycles).
    sample_acquisition: int = _us_to_cycles(22.0)
    #: One invocation of the R-peak beat-detection algorithm on one sample
    #: (fitted 196.7 - 22 = 174.7 us => 1398 cycles).
    rpeak_algorithm: int = _us_to_cycles(174.7)
    #: Handling a received data/control packet at the base station or a
    #: slot-request reply at a node (reuse of the beacon figure's order
    #: of magnitude; not observable in the published tables).
    packet_reception: int = _us_to_cycles(500.0)

    def cycles_to_seconds(self, cycles: int) -> float:
        """Convert a cycle count to seconds at the configured core clock."""
        return cycles / MCU_CLOCK_HZ


#: Default MCU activity costs.
MCU_COSTS = McuCosts()


# ---------------------------------------------------------------------------
# Full model configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ModelCalibration:
    """Bundle of every calibrated parameter, for easy overriding.

    All simulator entry points take a ``ModelCalibration``; experiments
    that probe sensitivity (ablations) build modified copies via
    ``dataclasses.replace``.
    """

    supply_v: float = SUPPLY_V
    mcu_active_a: float = MCU_ACTIVE_A
    mcu_sleep_a: float = MCU_SLEEP_A
    #: Deep-mode current used when a deep-sleep policy is installed
    #: (extension estimate; see MCU_LPM_LADDER_A).
    mcu_deep_sleep_a: float = MCU_LPM_LADDER_A["lpm3"]
    mcu_wakeup_s: float = MCU_WAKEUP_S
    mcu_clock_hz: float = MCU_CLOCK_HZ
    radio_rx_a: float = RADIO_RX_A
    radio_tx_a: float = RADIO_TX_A
    radio_standby_a: float = RADIO_STANDBY_A
    radio_power_down_a: float = RADIO_POWER_DOWN_A
    asic_power_w: float = ASIC_POWER_W
    asic_supply_v: float = ASIC_SUPPLY_V
    radio_timing: RadioTiming = field(default_factory=RadioTiming)
    sync: SyncCalibration = field(default_factory=SyncCalibration)
    mcu_costs: McuCosts = field(default_factory=McuCosts)


#: Default calibration reproducing the paper.
DEFAULT_CALIBRATION = ModelCalibration()


__all__ = [
    "SUPPLY_V",
    "MCU_ACTIVE_A",
    "MCU_SLEEP_A",
    "MCU_LPM_LADDER_A",
    "MCU_WAKEUP_S",
    "MCU_CLOCK_HZ",
    "RADIO_RX_A",
    "RADIO_TX_A",
    "RADIO_STANDBY_A",
    "RADIO_STANDBY_DATASHEET_A",
    "RADIO_POWER_DOWN_A",
    "ASIC_POWER_W",
    "ASIC_SUPPLY_V",
    "RadioTiming",
    "RADIO_TIMING",
    "SyncCalibration",
    "SYNC_CALIBRATION",
    "McuCosts",
    "MCU_COSTS",
    "ModelCalibration",
    "DEFAULT_CALIBRATION",
]
