"""Unit tests for signal sources and the synthetic ECG/EEG generators."""

import math

import pytest

from repro.signals.ecg import PQRST, SyntheticEcg, Wave
from repro.signals.eeg import SyntheticEeg
from repro.signals.sources import (
    ConstantSource,
    HashNoiseSource,
    MixSource,
    ScaledSource,
    SineSource,
)


class TestSources:
    def test_constant(self):
        assert ConstantSource(1.5).value_at(123.0) == 1.5

    def test_sine(self):
        source = SineSource(2.0, amplitude=3.0, offset=1.0)
        assert source.value_at(0.0) == pytest.approx(1.0)
        assert source.value_at(0.125) == pytest.approx(4.0)

    def test_sine_validation(self):
        with pytest.raises(ValueError):
            SineSource(0.0)

    def test_hash_noise_deterministic(self):
        a = HashNoiseSource(1.0, seed=7)
        b = HashNoiseSource(1.0, seed=7)
        times = [0.001 * k for k in range(100)]
        assert [a.value_at(t) for t in times] == \
            [b.value_at(t) for t in times]

    def test_hash_noise_bounded_and_varied(self):
        source = HashNoiseSource(0.5, seed=1)
        values = [source.value_at(0.001 * k) for k in range(500)]
        assert all(-0.5 <= v <= 0.5 for v in values)
        assert len(set(values)) > 400

    def test_hash_noise_seed_changes_sequence(self):
        a = HashNoiseSource(1.0, seed=1).value_at(0.5)
        b = HashNoiseSource(1.0, seed=2).value_at(0.5)
        assert a != b

    def test_hash_noise_zero_amplitude(self):
        assert HashNoiseSource(0.0).value_at(1.0) == 0.0

    def test_hash_noise_validation(self):
        with pytest.raises(ValueError):
            HashNoiseSource(-1.0)

    def test_mix_weighted_sum(self):
        mix = MixSource([ConstantSource(1.0), ConstantSource(2.0)],
                        weights=[2.0, 0.5])
        assert mix.value_at(0.0) == pytest.approx(3.0)

    def test_mix_validation(self):
        with pytest.raises(ValueError):
            MixSource([])
        with pytest.raises(ValueError):
            MixSource([ConstantSource()], weights=[1.0, 2.0])

    def test_scaled(self):
        scaled = ScaledSource(ConstantSource(2.0), gain=0.8, offset=1.25)
        assert scaled.value_at(0.0) == pytest.approx(2.85)


class TestSyntheticEcg:
    def test_r_peaks_at_75_bpm(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        peaks = ecg.r_peak_times(60.0)
        # 75 bpm for 60 s starting at 0.35 s -> 75 peaks.
        assert len(peaks) == 75
        intervals = [b - a for a, b in zip(peaks, peaks[1:])]
        assert all(i == pytest.approx(0.8) for i in intervals)

    def test_signal_peaks_at_beat_times(self):
        ecg = SyntheticEcg(heart_rate_bpm=75.0)
        beat = ecg.r_peak_times(5.0)[2]
        at_peak = ecg.value_at(beat)
        off_peak = ecg.value_at(beat + 0.4)
        assert at_peak > 0.9  # R amplitude ~1 mV
        assert at_peak > 3 * abs(off_peak)

    def test_deterministic(self):
        a = SyntheticEcg()
        b = SyntheticEcg()
        times = [0.01 * k for k in range(300)]
        assert [a.value_at(t) for t in times] == \
            [b.value_at(t) for t in times]

    def test_query_order_does_not_matter(self):
        forward = SyntheticEcg()
        backward = SyntheticEcg()
        times = [0.05 * k for k in range(200)]
        values_fwd = [forward.value_at(t) for t in times]
        values_bwd = list(reversed(
            [backward.value_at(t) for t in reversed(times)]))
        assert values_fwd == values_bwd

    def test_hrv_modulates_intervals(self):
        ecg = SyntheticEcg(heart_rate_bpm=60.0, hrv_fraction=0.1)
        peaks = ecg.r_peak_times(30.0)
        intervals = [b - a for a, b in zip(peaks, peaks[1:])]
        assert max(intervals) > 1.01
        assert min(intervals) < 0.99

    def test_amplitude_scale(self):
        quiet = SyntheticEcg(amplitude_mv=0.5)
        loud = SyntheticEcg(amplitude_mv=2.0)
        beat = quiet.r_peak_times(2.0)[0]
        assert loud.value_at(beat) == pytest.approx(
            4 * quiet.value_at(beat))

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticEcg(heart_rate_bpm=0.0)
        with pytest.raises(ValueError):
            SyntheticEcg(hrv_fraction=0.7)

    def test_morphology_has_five_waves(self):
        assert len(PQRST) == 5
        r_wave = max(PQRST, key=lambda w: w.amplitude)
        assert r_wave.offset_s == 0.0  # R defines the beat time

    def test_custom_morphology(self):
        mono = SyntheticEcg(morphology=[Wave(1.0, 0.0, 0.01)])
        beat = mono.r_peak_times(2.0)[0]
        assert mono.value_at(beat) == pytest.approx(1.0, abs=0.01)


class TestSyntheticEeg:
    def test_deterministic_per_seed(self):
        a = SyntheticEeg(seed=3)
        b = SyntheticEeg(seed=3)
        assert a.value_at(1.234) == b.value_at(1.234)

    def test_seed_changes_waveform(self):
        assert SyntheticEeg(seed=1).value_at(0.5) \
            != SyntheticEeg(seed=2).value_at(0.5)

    def test_band_rms_matches_spec(self):
        eeg = SyntheticEeg(seed=0)
        rms = eeg.band_rms()
        assert rms["alpha"] == pytest.approx(20.0, rel=1e-6)
        assert rms["beta"] == pytest.approx(6.0, rel=1e-6)

    def test_amplitude_plausible(self):
        eeg = SyntheticEeg(seed=0)
        values = [eeg.value_at(0.01 * k) for k in range(1000)]
        rms = math.sqrt(sum(v * v for v in values) / len(values))
        total = math.sqrt(sum(r * r for r in eeg.band_rms().values()))
        assert rms == pytest.approx(total, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticEeg(tones_per_band=0)
