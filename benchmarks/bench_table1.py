"""Benchmark: Table 1 — ECG streaming, static TDMA, sampling sweep.

Regenerates the paper's Table 1 (sampling frequencies 205/105/70/55 Hz
with TDMA cycles 30/60/90/120 ms, 5-node BAN, 18-byte payload per
cycle, 60 s) and asserts the reproduction quality:

* against the paper's simulator: < 3% average error (we fitted the
  calibration on these rows);
* against the paper's hardware measurements: within the paper's own
  error band (the paper reports 5.6% radio / 6.0% MCU).
"""

from conftest import record_table, run_once
from repro.analysis.experiments import reproduce_table1


def test_table1_ecg_streaming_static_tdma(benchmark, measure_s):
    result = run_once(benchmark, reproduce_table1, measure_s=measure_s)
    record_table(benchmark, result)

    assert result.mean_error("paper_sim", "radio") < 0.03
    assert result.mean_error("paper_sim", "mcu") < 0.03
    assert result.mean_error("real", "radio") < 0.10
    assert result.mean_error("real", "mcu") < 0.10

    # Shape: radio energy rises with sampling frequency (shorter cycle),
    # exactly as the paper argues.
    radios = [row.radio_ours_mj for row in result.rows]
    assert radios == sorted(radios, reverse=True)
    # ~4x radio energy between 205 Hz and 55 Hz (paper: 502.9 / 126.2).
    assert 3.5 < radios[0] / radios[-1] < 4.5
