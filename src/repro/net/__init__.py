"""Network roles and scenario assembly: nodes, base station, the BAN
runner, multi-BAN coexistence and battery monitoring."""

from .basestation import BaseStation
from .monitor import BatteryMonitor
from .multi import MultiBanScenario
from .node import SensorNode
from .scenario import APPS, MACS, BanScenario, BanScenarioConfig, \
    NodeSpec, run_scenario

__all__ = [
    "BaseStation",
    "BatteryMonitor",
    "MultiBanScenario",
    "SensorNode",
    "APPS",
    "MACS",
    "BanScenario",
    "BanScenarioConfig",
    "NodeSpec",
    "run_scenario",
]
