"""Lint engine: file walking, suppression handling, finding plumbing.

The engine is rule-agnostic: it parses each file once, builds a
:class:`FileContext`, asks every enabled rule for findings, then
resolves per-line suppressions.  Suppressions are *reasoned waivers*::

    risky_line()  # lint: allow(EXC001): re-raised annotated below

A waiver may sit on the flagged line or alone on the line above (for
statements too long to share a line).  ``allow(...)`` takes one or more
comma-separated rule codes.  The reason — the text after the closing
``):`` — is mandatory: a reasonless waiver suppresses nothing and is
itself reported as SUP001, so every exception to a rule is documented
at the point of use.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .config import LintConfig

#: Matches one suppression comment.  Group 1: the rule-code list;
#: group 2: the reason (possibly empty).
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"\s*\)\s*(?::\s*(.*?))?\s*$")

#: Reserved code for engine-level findings about suppressions.
SUPPRESSION_RULE = "SUP001"
#: Reserved code for files the parser rejects.
PARSE_RULE = "PARSE"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or engine diagnostic) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: True once a reasoned waiver claimed this finding.
    suppressed: bool = False
    #: The waiver's reason string (suppressed findings only).
    reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lint: allow(...)`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    #: Line numbers this waiver covers (its own, plus the next line
    #: when the comment stands alone).
    applies_to: Tuple[int, ...]


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    #: Display path (as passed on the command line / relative to root).
    path: str
    #: Module path inside the package, e.g. ``sim/kernel.py`` — what
    #: allowlists and package filters match against.
    module_path: str
    #: Top-level package name (``sim``, ``mac``, ...), "" at the root.
    package: str
    tree: ast.AST
    lines: List[str]
    config: LintConfig

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(rule=rule, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """True when the run gates green (no unsuppressed findings)."""
        return not self.unsuppressed

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self.unsuppressed:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return dict(sorted(counts.items()))


def parse_suppressions(lines: Sequence[str]
                       ) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Extract waivers from source lines.

    Returns ``(suppressions, errors)`` where each error is a
    ``(line, message)`` for a waiver missing its reason string.
    """
    suppressions: List[Suppression] = []
    errors: List[Tuple[int, str]] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = tuple(code.strip()
                      for code in match.group(1).split(","))
        reason = (match.group(2) or "").strip()
        if not reason:
            errors.append((
                number,
                "suppression missing reason: write "
                "# lint: allow(%s): <why this is safe>"
                % ", ".join(codes)))
            continue
        standalone = text[:match.start()].strip() == ""
        applies = (number, number + 1) if standalone else (number,)
        suppressions.append(Suppression(line=number, codes=codes,
                                        reason=reason,
                                        applies_to=applies))
    return suppressions, errors


def _apply_suppressions(findings: List[Finding],
                        suppressions: Sequence[Suppression]
                        ) -> List[Finding]:
    """Mark findings claimed by a reasoned waiver as suppressed."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        for line in suppression.applies_to:
            by_line.setdefault(line, []).append(suppression)
    resolved: List[Finding] = []
    for item in findings:
        waiver = next(
            (s for s in by_line.get(item.line, ())
             if item.rule in s.codes),
            None)
        if waiver is not None and item.rule != SUPPRESSION_RULE:
            item = replace(item, suppressed=True, reason=waiver.reason)
        resolved.append(item)
    return resolved


def _module_path(path: Path, package_root_name: str = "repro") -> str:
    """Path inside the package: parts after the last ``repro`` dir.

    Falls back to the file name for paths outside any ``repro`` tree,
    so allowlist suffix matching still has something to bite on.
    """
    parts = path.as_posix().split("/")
    if package_root_name in parts:
        index = len(parts) - 1 - parts[::-1].index(package_root_name)
        inner = parts[index + 1:]
        if inner:
            return "/".join(inner)
    return parts[-1]


def lint_source(source: str, path: str, config: Optional[LintConfig] = None,
                module_path: Optional[str] = None) -> List[Finding]:
    """Lint one file's text; the core single-file entry point."""
    from .rules import RULES  # late: rules import engine types
    config = config or LintConfig()
    if module_path is None:
        module_path = _module_path(Path(path))
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(rule=PARSE_RULE, path=path,
                        line=exc.lineno or 1, col=(exc.offset or 0) + 1,
                        message=f"file does not parse: {exc.msg}")]
    package = module_path.split("/")[0] if "/" in module_path else ""
    context = FileContext(path=path, module_path=module_path,
                          package=package, tree=tree,
                          lines=lines, config=config)
    findings: List[Finding] = []
    for code, rule in RULES.items():
        if config.rule_enabled(code):
            findings.extend(rule(context))
    suppressions, errors = parse_suppressions(lines)
    for line, message in errors:
        findings.append(Finding(rule=SUPPRESSION_RULE, path=path,
                                line=line, col=1, message=message))
    findings = _apply_suppressions(findings, suppressions)
    findings.sort(key=Finding.sort_key)
    return findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in sorted order."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Path],
               config: Optional[LintConfig] = None) -> LintReport:
    """Lint every Python file under ``paths`` into one report."""
    config = config or LintConfig()
    report = LintReport()
    for file_path in iter_python_files([Path(p) for p in paths]):
        module_path = _module_path(file_path)
        if any(module_path.endswith(suffix) or file_path.match(suffix)
               for suffix in config.exclude):
            continue
        source = file_path.read_text(encoding="utf-8")
        report.findings.extend(
            lint_source(source, str(file_path), config,
                        module_path=module_path))
        report.files_scanned += 1
    report.findings.sort(key=Finding.sort_key)
    return report


__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "PARSE_RULE",
    "SUPPRESSION_RULE",
    "Suppression",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]
