"""The committed API reference must match the generated one, and every
public item must carry a docstring."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestApiReference:
    def test_reference_is_current(self):
        generated = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_api_reference.py")],
            capture_output=True, text=True, check=True).stdout
        committed = (ROOT / "docs" / "api_reference.md").read_text()
        assert generated == committed, (
            "docs/api_reference.md is stale; regenerate with "
            "python tools/gen_api_reference.py > docs/api_reference.md")

    def test_no_undocumented_public_items(self):
        text = (ROOT / "docs" / "api_reference.md").read_text()
        assert "(undocumented)" not in text

    def test_reference_covers_every_package(self):
        text = (ROOT / "docs" / "api_reference.md").read_text()
        for package in ("repro.sim", "repro.core", "repro.tinyos",
                        "repro.hw", "repro.phy", "repro.mac",
                        "repro.apps", "repro.signals", "repro.net",
                        "repro.analysis", "repro.baselines",
                        "repro.data", "repro.exec"):
            assert f"`{package}" in text, package
