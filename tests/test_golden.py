"""Golden-value regression: the canonical scenarios must reproduce
their pinned outputs exactly (the simulator is deterministic)."""

from repro.analysis.golden import (
    CANONICAL,
    GOLDENS,
    check_goldens,
    compute_goldens,
    format_goldens,
)


class TestGoldens:
    def test_canonical_set_covers_the_feature_matrix(self):
        configs = CANONICAL
        assert {"static", "dynamic"} \
            == {config.mac for config in configs.values()}
        apps = {config.app for config in configs.values()}
        assert {"ecg_streaming", "rpeak", "eeg_streaming"} <= apps
        assert any(config.join_protocol for config in configs.values())

    def test_every_canonical_scenario_has_a_golden(self):
        assert set(GOLDENS) == set(CANONICAL)

    def test_goldens_hold(self):
        deviations = check_goldens()
        assert deviations == [], "\n".join(
            ["Golden values drifted — a model change moved pinned "
             "outputs.  If intentional, regenerate with "
             "compute_goldens() and review:"] + deviations)

    def test_format_goldens_is_paste_ready(self):
        text = format_goldens(compute_goldens(("rpeak_static_120ms",)))
        assert text.startswith("GOLDENS: Dict[str, GoldenValue] = {")
        assert "rpeak_static_120ms" in text
        assert text.rstrip().endswith("}")
