"""Lint engine: file walking, suppression handling, finding plumbing.

The engine is rule-agnostic: it parses each file once, builds a
:class:`FileContext`, asks every enabled rule for findings, then
resolves per-line suppressions.  Suppressions are *reasoned waivers*::

    risky_line()  # lint: allow(EXC001): re-raised annotated below

A waiver may sit on the flagged line or alone on the line above (for
statements too long to share a line).  ``allow(...)`` takes one or more
comma-separated rule codes.  The reason — the text after the closing
``):`` — is mandatory: a reasonless waiver suppresses nothing and is
itself reported as SUP001, so every exception to a rule is documented
at the point of use.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .config import LintConfig

#: Matches one suppression comment.  Group 1: the rule-code list;
#: group 2: the reason (possibly empty).
_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)"
    r"\s*\)\s*(?::\s*(.*?))?\s*$")

#: Reserved code for engine-level findings about suppressions.
SUPPRESSION_RULE = "SUP001"
#: Reserved code for waivers whose rule no longer fires on their line.
STALE_RULE = "SUP002"
#: Reserved code for files the parser rejects.
PARSE_RULE = "PARSE"


@dataclass(frozen=True)
class Finding:
    """One rule violation (or engine diagnostic) at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: True once a reasoned waiver claimed this finding.
    suppressed: bool = False
    #: The waiver's reason string (suppressed findings only).
    reason: Optional[str] = None

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# lint: allow(...)`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    #: Line numbers this waiver covers (its own, plus the next line
    #: when the comment stands alone).
    applies_to: Tuple[int, ...]


@dataclass
class FileContext:
    """Everything a rule needs to check one file."""

    #: Display path (as passed on the command line / relative to root).
    path: str
    #: Module path inside the package, e.g. ``sim/kernel.py`` — what
    #: allowlists and package filters match against.
    module_path: str
    #: Top-level package name (``sim``, ``mac``, ...), "" at the root.
    package: str
    tree: ast.AST
    lines: List[str]
    config: LintConfig

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(rule=rule, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)

    def finding_at(self, rule: str, line: int, col: int,
                   message: str) -> Finding:
        """Build a finding at an explicit location (tree analyses)."""
        return Finding(rule=rule, path=self.path, line=line,
                       col=col + 1, message=message)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Structured per-analysis payloads (e.g. the extracted state
    #: machine graphs), keyed by analysis name; serialised into the
    #: JSON report's ``analyses`` section.
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def unsuppressed(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        """True when the run gates green (no unsuppressed findings)."""
        return not self.unsuppressed

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for item in self.unsuppressed:
            counts[item.rule] = counts.get(item.rule, 0) + 1
        return dict(sorted(counts.items()))


def parse_suppressions(lines: Sequence[str]
                       ) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Extract waivers from source lines.

    Returns ``(suppressions, errors)`` where each error is a
    ``(line, message)`` for a waiver missing its reason string.
    """
    suppressions: List[Suppression] = []
    errors: List[Tuple[int, str]] = []
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = tuple(code.strip()
                      for code in match.group(1).split(","))
        reason = (match.group(2) or "").strip()
        if not reason:
            errors.append((
                number,
                "suppression missing reason: write "
                "# lint: allow(%s): <why this is safe>"
                % ", ".join(codes)))
            continue
        standalone = text[:match.start()].strip() == ""
        applies = (number, number + 1) if standalone else (number,)
        suppressions.append(Suppression(line=number, codes=codes,
                                        reason=reason,
                                        applies_to=applies))
    return suppressions, errors


def _apply_suppressions(findings: List[Finding],
                        suppressions: Sequence[Suppression]
                        ) -> List[Finding]:
    """Mark findings claimed by a reasoned waiver as suppressed."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in suppressions:
        for line in suppression.applies_to:
            by_line.setdefault(line, []).append(suppression)
    resolved: List[Finding] = []
    for item in findings:
        waiver = next(
            (s for s in by_line.get(item.line, ())
             if item.rule in s.codes),
            None)
        if waiver is not None and item.rule != SUPPRESSION_RULE:
            item = replace(item, suppressed=True, reason=waiver.reason)
        resolved.append(item)
    return resolved


def _module_path(path: Path, package_root_name: str = "repro") -> str:
    """Path inside the package: parts after the last ``repro`` dir.

    Falls back to the file name for paths outside any ``repro`` tree,
    so allowlist suffix matching still has something to bite on.
    """
    parts = path.as_posix().split("/")
    if package_root_name in parts:
        index = len(parts) - 1 - parts[::-1].index(package_root_name)
        inner = parts[index + 1:]
        if inner:
            return "/".join(inner)
    return parts[-1]


def _collect_context(source: str, path: str, config: LintConfig,
                     module_path: Optional[str] = None
                     ) -> Tuple[Optional[FileContext], List[Finding]]:
    """Parse one file into a context, or a PARSE finding."""
    if module_path is None:
        module_path = _module_path(Path(path))
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, [Finding(rule=PARSE_RULE, path=path,
                              line=exc.lineno or 1,
                              col=(exc.offset or 0) + 1,
                              message=f"file does not parse: "
                                      f"{exc.msg}")]
    package = module_path.split("/")[0] if "/" in module_path else ""
    return FileContext(path=path, module_path=module_path,
                       package=package, tree=tree, lines=lines,
                       config=config), []


def _rule_findings(ctx: FileContext) -> List[Finding]:
    """Run every enabled per-file rule over one context."""
    from .rules import RULES  # late: rules import engine types
    findings: List[Finding] = []
    for code, rule in RULES.items():
        if ctx.config.rule_enabled(code):
            findings.extend(rule(ctx))
    return findings


def _run_interprocedural(contexts: Sequence[FileContext],
                         config: LintConfig
                         ) -> Tuple[List[Finding], Dict[str, object]]:
    """Build the call graph once, then run the graph-based passes."""
    from . import effects, fingerprint, lifecycle
    from .callgraph import build_call_graph
    timings: Dict[str, float] = {}
    started = time.perf_counter()
    graph = build_call_graph(contexts)
    timings["callgraph"] = round(time.perf_counter() - started, 6)
    started = time.perf_counter()
    findings, extras = effects.analyze_effects(contexts, config,
                                               graph=graph)
    timings["effects"] = round(time.perf_counter() - started, 6)
    started = time.perf_counter()
    fpc_findings, fpc_extras = fingerprint.analyze_fingerprint(
        contexts, config, graph=graph)
    timings["fingerprint"] = round(time.perf_counter() - started, 6)
    findings.extend(fpc_findings)
    extras.update(fpc_extras)
    started = time.perf_counter()
    lif_findings, lif_extras = lifecycle.analyze_lifecycles(
        contexts, config, graph=graph)
    timings["lifecycle"] = round(time.perf_counter() - started, 6)
    findings.extend(lif_findings)
    extras.update(lif_extras)
    extras["timings"] = timings
    return findings, extras


def _run_tree_analyses(contexts: Sequence[FileContext],
                       config: LintConfig
                       ) -> Tuple[List[Finding], Dict[str, object]]:
    """Run the flow-sensitive analyses over the whole context set.

    Unlike per-file rules, a tree analysis sees every parsed file at
    once: the units pass learns annotations tree-wide, the
    state-machine pass matches specs in ``core/states.py`` against
    classes in ``hw/``, and the interprocedural effect/fingerprint
    passes share one whole-tree call graph.  An analysis runs when any
    of its codes is enabled, and its findings are filtered per code
    afterwards.  Wall-clock timings per analysis land in the report
    extras (``analyses.timings``) so CI can watch lint cost.
    """
    from . import effects, fingerprint, lifecycle, rngprov, \
        statemachine, units
    analyses: Tuple[Tuple[str, Tuple[str, ...], object], ...] = (
        ("units", units.CODES, units.analyze_units),
        ("statemachine", statemachine.CODES,
         statemachine.analyze_statemachines),
        ("rngprov", rngprov.CODES, rngprov.analyze_rng),
        ("interproc",
         effects.CODES + fingerprint.CODES + lifecycle.CODES,
         _run_interprocedural),
    )
    findings: List[Finding] = []
    extras: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    for name, codes, run in analyses:
        if not any(config.rule_enabled(code) for code in codes):
            continue
        started = time.perf_counter()
        result = run(contexts, config)  # type: ignore[operator]
        elapsed = round(time.perf_counter() - started, 6)
        if isinstance(result, tuple):
            produced, extra = result
        else:
            produced, extra = result, None
        findings.extend(item for item in produced
                        if config.rule_enabled(item.rule))
        if extra:
            sub = extra.pop("timings", None)
            if isinstance(sub, dict):
                timings.update(sub)
            extras.update(extra)
        timings[name] = elapsed
    extras["timings"] = timings
    return findings, extras


#: Fixed execution order of the tree analyses in parallel mode.  The
#: interprocedural trio stays one task sharing one call graph (as in
#: the sequential path — graph construction dominates its cost), while
#: the other analyses and the per-file rule chunks fill the remaining
#: workers.
_TREE_ANALYSIS_ORDER = ("interproc", "units", "statemachine",
                        "rngprov")


def _analysis_spec(name: str) -> Tuple[Tuple[str, ...], object]:
    """``(codes, runner)`` for one named tree analysis."""
    from . import (effects, fingerprint, lifecycle, rngprov,
                   statemachine, units)
    table: Dict[str, Tuple[Tuple[str, ...], object]] = {
        "units": (units.CODES, units.analyze_units),
        "statemachine": (statemachine.CODES,
                         statemachine.analyze_statemachines),
        "rngprov": (rngprov.CODES, rngprov.analyze_rng),
        "interproc": (effects.CODES + fingerprint.CODES
                      + lifecycle.CODES, _run_interprocedural),
    }
    return table[name]


#: ``(path, source, module_path)`` — what a pool worker needs to
#: rebuild a FileContext (re-parsing beats pickling AST trees).
_FileJob = Tuple[str, str, str]


def _pool_contexts(files: Sequence[_FileJob],
                   config: LintConfig) -> List[FileContext]:
    contexts: List[FileContext] = []
    for path, source, module_path in files:
        ctx, _ = _collect_context(source, path, config,
                                  module_path=module_path)
        if ctx is not None:  # parse errors were reported by the parent
            contexts.append(ctx)
    return contexts


def _pool_tree_task(name: str, files: Sequence[_FileJob],
                    config: LintConfig
                    ) -> Tuple[str, List[Finding], Dict[str, object],
                               float]:
    """Pool worker: one whole-tree analysis over every file."""
    codes, run = _analysis_spec(name)
    contexts = _pool_contexts(files, config)
    started = time.perf_counter()
    result = run(contexts, config)  # type: ignore[operator]
    elapsed = round(time.perf_counter() - started, 6)
    if isinstance(result, tuple):
        produced, extra = result
    else:
        produced, extra = result, None
    produced = [item for item in produced
                if config.rule_enabled(item.rule)]
    return name, produced, dict(extra or {}), elapsed


def _lint_parallel(pending: Sequence[FileContext],
                   all_files: Sequence[_FileJob],
                   config: LintConfig, jobs: int, run_tree: bool
                   ) -> Tuple[Dict[str, List[Finding]], List[Finding],
                              Dict[str, object]]:
    """Fan the tree analyses across a process pool.

    Findings are byte-identical to the sequential path: each tree
    analysis is deterministic over the same (re-parsed) contexts, and
    the caller's per-file and global sorts fix any arrival-order
    differences.  Only the timing extras differ between the two modes.

    The per-file rules run here in the parent while the pool churns —
    the parent already holds parsed contexts, so shipping rule work to
    workers would only add re-parse and pickle cost for the cheapest
    stage of the run.
    """
    from concurrent.futures import ProcessPoolExecutor
    names = [name for name in _TREE_ANALYSIS_ORDER
             if any(config.rule_enabled(code)
                    for code in _analysis_spec(name)[0])] \
        if run_tree else []
    by_name: Dict[str, Tuple[List[Finding], Dict[str, object], float]] \
        = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        tree_futures = [pool.submit(_pool_tree_task, name,
                                    list(all_files), config)
                        for name in names]
        rule_out = {ctx.path: _rule_findings(ctx) for ctx in pending}
        for future in tree_futures:
            name, produced, extra, elapsed = future.result()
            by_name[name] = (produced, extra, elapsed)
    tree_findings: List[Finding] = []
    extras: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    for name in names:
        produced, extra, elapsed = by_name[name]
        tree_findings.extend(produced)
        sub = extra.pop("timings", None)
        if isinstance(sub, dict):
            timings.update(sub)
        extras.update(extra)
        timings[name] = elapsed
    extras["timings"] = timings
    return rule_out, tree_findings, extras


def _string_spans(tree: ast.AST) -> set:
    """Line numbers inside multi-line string constants (docstrings).

    A ``# lint: allow(...)`` shown as an *example* inside a docstring
    is text, not a waiver; stale-waiver detection must not flag it.
    """
    spans: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, str):
            end = node.end_lineno or node.lineno
            if end > node.lineno:
                spans.update(range(node.lineno, end + 1))
    return spans


def _known_codes() -> set:
    from .rules import all_rule_codes
    return set(all_rule_codes()) | {SUPPRESSION_RULE, STALE_RULE,
                                    PARSE_RULE}


def _finalize_file(ctx: FileContext,
                   findings: List[Finding]) -> List[Finding]:
    """Resolve suppressions for one file: SUP001, SUP002, waivers."""
    suppressions, errors = parse_suppressions(ctx.lines)
    for line, message in errors:
        findings.append(Finding(rule=SUPPRESSION_RULE, path=ctx.path,
                                line=line, col=1, message=message))
    if ctx.config.rule_enabled(STALE_RULE):
        doc_lines = _string_spans(ctx.tree)
        fired = {(item.rule, item.line) for item in findings}
        known = _known_codes()
        for suppression in suppressions:
            if suppression.line in doc_lines:
                continue
            for code in suppression.codes:
                if code in (SUPPRESSION_RULE, STALE_RULE):
                    continue
                if not ctx.config.rule_enabled(code):
                    continue  # rule deselected: the waiver is dormant
                if any((code, line) in fired
                       for line in suppression.applies_to):
                    continue
                qualifier = ("" if code in known
                             else " (unknown rule code)")
                findings.append(Finding(
                    rule=STALE_RULE, path=ctx.path,
                    line=suppression.line, col=1,
                    message=f"stale waiver: {code} does not fire on "
                            f"the line this comment covers"
                            f"{qualifier} — delete the waiver or fix "
                            f"the code drift it hides"))
    findings = _apply_suppressions(findings, suppressions)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_source(source: str, path: str, config: Optional[LintConfig] = None,
                module_path: Optional[str] = None) -> List[Finding]:
    """Lint one file's text; the core single-file entry point.

    Tree analyses run too, over the single-file context set — which is
    what lets a fixture co-locate a ``TransitionSpec`` with the class
    it describes and still be checked end to end.
    """
    config = config or LintConfig()
    ctx, parse_findings = _collect_context(source, path, config,
                                           module_path)
    if ctx is None:
        return parse_findings
    findings = _rule_findings(ctx)
    tree_findings, _ = _run_tree_analyses([ctx], config)
    findings.extend(tree_findings)
    return _finalize_file(ctx, findings)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths`` in sorted order."""
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    yield candidate
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Path],
               config: Optional[LintConfig] = None,
               cache: Optional[object] = None,
               changed_only: bool = False,
               jobs: int = 1) -> LintReport:
    """Lint every Python file under ``paths`` into one report.

    Parses everything first, then runs per-file rules and the
    cross-file tree analyses over the full context set, and finally
    resolves suppressions file by file (stale-waiver detection needs
    the complete finding list for a file, including findings a tree
    analysis reported into it from another module's spec).

    ``cache`` (a :class:`repro.lint.cache.LintCache`) replays per-file
    rule results for content-unchanged files and the whole tree
    analysis for a fully unchanged tree.  ``changed_only`` additionally
    filters the report to findings in files whose content changed
    since the cached run (parse errors and cache-less runs count as
    changed).

    ``jobs > 1`` fans the tree analyses across a process pool while
    the per-file rules run in this process.  Findings are
    byte-identical to ``jobs=1``; only the timing extras differ.
    Cache I/O stays in this process.
    """
    from .cache import source_digest  # late: cache imports our types
    config = config or LintConfig()
    report = LintReport()
    contexts: List[FileContext] = []
    digests: Dict[str, str] = {}
    sources: Dict[str, Tuple[str, str]] = {}
    changed: set = set()
    rule_results: Dict[str, List[Finding]] = {}
    for file_path in iter_python_files([Path(p) for p in paths]):
        module_path = _module_path(file_path)
        if any(module_path.endswith(suffix) or file_path.match(suffix)
               for suffix in config.exclude):
            continue
        source = file_path.read_text(encoding="utf-8")
        path = str(file_path)
        ctx, parse_findings = _collect_context(
            source, path, config, module_path=module_path)
        report.files_scanned += 1
        if ctx is None:
            changed.add(path)
            report.findings.extend(parse_findings)
            continue
        digests[path] = source_digest(source)
        sources[path] = (source, module_path)
        contexts.append(ctx)
    pending: List[FileContext] = []
    for ctx in contexts:
        cached = cache.get_file(ctx.path, digests[ctx.path]) \
            if cache is not None else None
        if cached is None:
            changed.add(ctx.path)
            pending.append(ctx)
        else:
            rule_results[ctx.path] = cached
    tree_findings: Optional[List[Finding]] = None
    extras: Dict[str, object] = {}
    if cache is not None:
        key = cache.tree_key(sorted(digests.items()))
        hit = cache.get_tree(key)
        if hit is not None:
            tree_findings, extras = hit
    if jobs > 1 and (pending or tree_findings is None):
        pool_started = time.perf_counter()
        all_of = [(ctx.path,) + sources[ctx.path] for ctx in contexts]
        rule_out, pool_tree, pool_extras = _lint_parallel(
            pending, all_of, config, jobs,
            run_tree=tree_findings is None)
        for ctx in pending:
            found = rule_out.get(ctx.path, [])
            rule_results[ctx.path] = found
            if cache is not None:
                cache.put_file(ctx.path, digests[ctx.path], found)
        if tree_findings is None:
            tree_findings, extras = pool_tree, pool_extras
            timings = extras.setdefault("timings", {})
            if isinstance(timings, dict):
                timings["pool_wall"] = round(
                    time.perf_counter() - pool_started, 6)
                timings["jobs"] = jobs
            if cache is not None:
                cache.put_tree(key, tree_findings, extras)
    else:
        for ctx in pending:
            found = _rule_findings(ctx)
            if cache is not None:
                cache.put_file(ctx.path, digests[ctx.path], found)
            rule_results[ctx.path] = found
        if tree_findings is None:
            tree_findings, extras = _run_tree_analyses(contexts, config)
            if cache is not None:
                cache.put_tree(key, tree_findings, extras)
    if cache is not None:
        extras = dict(extras)
        extras["cache"] = cache.stats()
        cache.save()
    report.extras.update(extras)
    by_path: Dict[str, List[Finding]] = {}
    for item in tree_findings:
        by_path.setdefault(item.path, []).append(item)
    for ctx in contexts:
        findings = rule_results[ctx.path] + by_path.get(ctx.path, [])
        report.findings.extend(_finalize_file(ctx, findings))
    if changed_only:
        report.findings = [item for item in report.findings
                           if item.path in changed]
    report.findings.sort(key=Finding.sort_key)
    return report


__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "PARSE_RULE",
    "STALE_RULE",
    "SUPPRESSION_RULE",
    "Suppression",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]
