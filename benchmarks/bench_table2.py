"""Benchmark: Table 2 — ECG streaming, dynamic TDMA, node-count sweep.

Regenerates Table 2 (10 ms slots, 1-5 nodes so the cycle spans
20-60 ms, sampling derived to fill one 18-byte packet per cycle, 60 s).

Accuracy note: the paper's own dynamic-TDMA numbers are internally
noisier than the static ones (its Tables 2 and 4 imply different guard
windows at the same cycle lengths), so the acceptance band here is
wider than Table 1's: our estimate must stay within ~8% of the
hardware column on average and reproduce the monotone shape.
"""

from conftest import record_table, run_once
from repro.analysis.experiments import reproduce_table2


def test_table2_ecg_streaming_dynamic_tdma(benchmark, measure_s):
    result = run_once(benchmark, reproduce_table2, measure_s=measure_s)
    record_table(benchmark, result)

    assert result.mean_error("real", "radio") < 0.08
    assert result.mean_error("real", "mcu") < 0.15
    assert result.mean_error("paper_sim", "radio") < 0.12
    assert result.mean_error("paper_sim", "mcu") < 0.08

    # Shape: more nodes -> longer cycle -> lower per-node radio energy.
    radios = [row.radio_ours_mj for row in result.rows]
    assert radios == sorted(radios, reverse=True)
    # Factor between 1 and 5 nodes ~ 2.4-2.7x (paper real: 628.5/263.9).
    assert 2.0 < radios[0] / radios[-1] < 3.0
