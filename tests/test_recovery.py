"""Tests for the MAC degradation/recovery machinery under beacon loss.

Uses :class:`~repro.phy.lossmodels.DeterministicLoss` to drop *exact*
beacons, pinning the missed-beacon paths without RNG coupling:

* widening guard windows across consecutive misses (each sync policy),
  with the extra RX time booked into the energy ledger;
* demotion to a duty-cycled reacquisition scan after ``max_missed``
  misses, and the subsequent resync;
* the lost-grant-beacon path of the join protocol (no double
  allocation, the node still joins);
* node-side slot revocation when a beacon stops listing the owner;
* capped-exponential SSR backoff in dynamic TDMA under request loss;
* the ``sync_anomalies`` trap replacing the old silent clamp.
"""

import pytest

from repro.mac import RecoveryConfig
from repro.mac.sync import CycleProportionalLead, DriftTrackingLead, \
    FixedLead
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.lossmodels import DeterministicLoss
from repro.sim.simtime import milliseconds, seconds

BS = "base_station"


def _config(**overrides) -> BanScenarioConfig:
    defaults = dict(mac="static", app="ecg_streaming", num_nodes=1,
                    cycle_ms=30.0, measure_s=2.0, seed=3,
                    recovery=RecoveryConfig())
    defaults.update(overrides)
    return BanScenarioConfig(**defaults)


def _beacon_drops(*occurrences) -> DeterministicLoss:
    """Drop exact base-station frames (all beacons here) at node1."""
    return DeterministicLoss({(BS, "node1"): occurrences})


#: One factory per sync policy; each must survive beacon loss.
POLICIES = {
    "fixed": lambda cal: FixedLead(milliseconds(1.0)),
    "proportional": lambda cal: CycleProportionalLead(
        milliseconds(0.5), 0.01),
    "drift": lambda cal: DriftTrackingLead(tolerance_ppm=50.0),
}


class TestWidenedWindows:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_two_misses_widen_and_resync(self, policy):
        factory = POLICIES[policy]
        clean = BanScenario(_config(sync_policy_factory=factory))
        clean_result = clean.run()
        lossy = BanScenario(_config(
            sync_policy_factory=factory,
            loss_model=_beacon_drops(20, 21)))
        lossy_result = lossy.run()
        mac = lossy.nodes[0].mac
        # Two consecutive misses stay under max_missed (3): the node
        # free-runs with widened windows and never demotes.
        assert mac.counters.beacons_missed == 2
        assert mac.counters.windows_widened >= 2
        assert mac.counters.resyncs == 0
        assert mac.counters.recoveries == 0
        assert mac.is_synced
        # The widened RX windows (and full miss timeouts) are real
        # energy, booked into the node's radio ledger.
        assert lossy_result.nodes["node1"].radio_mj \
            > clean_result.nodes["node1"].radio_mj

    def test_without_recovery_no_widening(self):
        lossy = BanScenario(_config(
            recovery=None, loss_model=_beacon_drops(20, 21)))
        lossy.run()
        mac = lossy.nodes[0].mac
        assert mac.counters.beacons_missed == 2
        assert mac.counters.windows_widened == 0
        assert mac.is_synced


class TestReacquisition:
    def test_demotes_after_max_missed_and_recovers(self):
        scenario = BanScenario(_config(
            loss_model=_beacon_drops(20, 21, 22, 23)))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert mac.counters.resyncs >= 1   # demoted to ACQUIRING
        assert mac.counters.recoveries >= 1  # ... and re-synced
        assert mac.is_synced

    def test_long_outage_duty_cycles_the_scan(self):
        # 10 dropped beacons: demotion after 3 misses, then ~7 more
        # silent cycles in ACQUIRING — past scan_on_cycles (2), so the
        # receiver pauses at least once instead of burning RX for the
        # whole outage.
        drops = tuple(range(20, 30))
        scenario = BanScenario(_config(loss_model=_beacon_drops(*drops)))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert mac.counters.scan_pauses >= 1
        assert mac.is_synced

    def test_scan_saves_energy_versus_continuous_listen(self):
        drops = tuple(range(20, 30))
        with_scan = BanScenario(_config(loss_model=_beacon_drops(*drops)))
        with_scan_result = with_scan.run()
        no_recovery = BanScenario(_config(
            recovery=None, loss_model=_beacon_drops(*drops)))
        no_recovery_result = no_recovery.run()
        assert with_scan.nodes[0].mac.is_synced
        assert no_recovery.nodes[0].mac.is_synced
        assert with_scan_result.nodes["node1"].radio_mj \
            < no_recovery_result.nodes["node1"].radio_mj


class TestGrantBeaconLoss:
    @pytest.mark.parametrize("mac_kind", ["static", "dynamic"])
    def test_lost_grant_beacon_no_double_allocation(self, mac_kind):
        # Occurrence 0 is the first beacon (triggers the SSR); the
        # grant rides in occurrence 1 — drop exactly that one.
        scenario = BanScenario(_config(
            mac=mac_kind, join_protocol=True, measure_s=1.0,
            loss_model=_beacon_drops(1)))
        scenario.run()
        mac = scenario.nodes[0].mac
        schedule = scenario.base_station.mac.schedule
        assert mac.is_synced
        assert mac.slot is not None
        assert schedule.slot_of("node1") == mac.slot
        # Exactly one slot owned — the kept grant, never a second one.
        owners = list(schedule.as_map().values())
        assert owners.count("node1") == 1


class TestSlotRevocation:
    def test_node_surrenders_revoked_slot_and_rejoins(self):
        scenario = BanScenario(_config(num_nodes=1, num_slots=2,
                                       measure_s=3.0))
        bs_schedule = scenario.base_station.mac.schedule
        # Base-station-side release mid-run (what an inactivity reclaim
        # does): the next beacon no longer lists node1.
        scenario.sim.at(seconds(1.0),
                        lambda: bs_schedule.release("node1"))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert mac.counters.slot_revocations == 1
        assert mac.is_synced
        assert mac.slot is not None
        assert bs_schedule.slot_of("node1") == mac.slot
        assert list(bs_schedule.as_map().values()).count("node1") == 1


class TestSsrBackoff:
    def test_lost_requests_back_off(self):
        # Drop the node's first three slot requests (its only uplink
        # frames while joining); with recovery on, dynamic TDMA skips
        # beacons between retries on the capped exponential schedule.
        loss = DeterministicLoss({("node1", BS): (0, 1, 2)})
        scenario = BanScenario(_config(
            mac="dynamic", join_protocol=True, measure_s=1.0,
            loss_model=loss))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert mac.counters.slot_requests_sent >= 4
        assert mac.counters.ssr_backoffs >= 1
        assert mac.is_synced

    def test_static_never_backs_off(self):
        loss = DeterministicLoss({("node1", BS): (0, 1, 2)})
        scenario = BanScenario(_config(
            mac="static", join_protocol=True, measure_s=1.0,
            loss_model=loss))
        scenario.run()
        mac = scenario.nodes[0].mac
        assert mac.counters.ssr_backoffs == 0
        assert mac.is_synced


class TestRecoveryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryConfig(widen_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryConfig(max_widen_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryConfig(scan_on_cycles=0.0)
        with pytest.raises(ValueError):
            RecoveryConfig(scan_off_cycles=-1.0)
        with pytest.raises(ValueError):
            RecoveryConfig(ssr_backoff_cap_cycles=-1)

    def test_widened_lead_is_capped(self):
        recovery = RecoveryConfig(widen_factor=2.0, max_widen_factor=4.0)
        lead = 1000
        assert recovery.widened_lead(lead, 1) == 2000
        assert recovery.widened_lead(lead, 2) == 4000
        assert recovery.widened_lead(lead, 10) == 4000  # capped

    def test_ssr_skip_schedule(self):
        recovery = RecoveryConfig(ssr_backoff_cap_cycles=8)
        skips = [recovery.ssr_skip_cycles(n) for n in range(1, 7)]
        assert skips == [0, 1, 3, 7, 8, 8]  # 2^(n-1)-1, capped at 8
        assert RecoveryConfig(
            ssr_backoff_cap_cycles=0).ssr_skip_cycles(5) == 0


class TestSyncAnomalyTrap:
    def test_backwards_bookkeeping_is_counted(self):
        scenario = BanScenario(_config(trace_capacity=512))
        scenario.start_all()
        scenario.sim.run_until(seconds(0.5))
        mac = scenario.nodes[0].mac
        assert mac.counters.sync_anomalies == 0
        # Force the impossible state the old code clamped in silence:
        # an expectation before the last sync point.
        mac._last_sync = scenario.sim.now + seconds(1.0)
        mac._arm_beacon_window(scenario.sim.now + milliseconds(1.0))
        assert mac.counters.sync_anomalies == 1
        assert len(scenario.trace.filter(kind="sync_anomaly")) == 1
