"""Ablation A10: the unused four power-save modes.

Section 4.1: the TinyOS scheduler can choose among "the 5 available
power save modes", but "because of the relative complexity of the
applications considered here, the scheduler only used the first low
power mode."  The sleep floor that choice implies — 0.66 mA whenever
idle — is the *majority* of the Rpeak node's MCU budget (110.88 of
132.8 mJ per 60 s).

This ablation installs the threshold deep-sleep policy (idle gaps
>= 2 ms spent in the LPM3-class state, an extension estimate of
0.10 mA) and measures what the platform leaves on the table, per
application:

* Rpeak samples at 200 Hz (5 ms gaps): most idle time is eligible and
  the MCU energy collapses;
* streaming at 205 Hz (4.9 ms gaps) still benefits, slightly less;
* functionality is bit-identical (same packets, same samples).
"""

from conftest import bench_measure_s, run_once
from repro.net.scenario import BanScenario, BanScenarioConfig


def run_study(measure_s: float):
    workloads = {
        "rpeak@120ms": dict(app="rpeak", cycle_ms=120.0),
        "streaming@30ms": dict(app="ecg_streaming", cycle_ms=30.0,
                               sampling_hz=205.0),
    }
    out = {}
    for label, params in workloads.items():
        runs = {}
        for threshold in (None, 2.0):
            config = BanScenarioConfig(
                mac="static", num_nodes=5, measure_s=measure_s,
                deep_sleep_threshold_ms=threshold, **params)
            runs[threshold] = BanScenario(config).run().node("node1")
        out[label] = runs
    return out


def test_ablation_deep_sleep_modes(benchmark):
    measure_s = bench_measure_s()
    study = run_once(benchmark, run_study, measure_s)

    print(f"\nA10 deep-sleep ablation ({measure_s:.0f} s):")
    for label, runs in study.items():
        base = runs[None]
        deep = runs[2.0]
        saving = 1.0 - deep.mcu_mj / base.mcu_mj
        print(f"  {label:<16} uC {base.mcu_mj:6.1f} mJ (LPM0 only) -> "
              f"{deep.mcu_mj:6.1f} mJ (LPM3 gaps)  "
              f"saves {100 * saving:.0f}%")
        benchmark.extra_info[f"saving_{label}"] = round(saving, 3)

        # Functionality unchanged.
        assert deep.traffic.data_tx == base.traffic.data_tx
        # Radio untouched.
        assert abs(deep.radio_mj - base.radio_mj) < 1e-6
        # The saving is real for both workloads...
        assert saving > 0.3

    # ...and larger for Rpeak (slower grid, longer eligible gaps).
    rpeak_saving = 1.0 - (study["rpeak@120ms"][2.0].mcu_mj
                          / study["rpeak@120ms"][None].mcu_mj)
    streaming_saving = 1.0 - (study["streaming@30ms"][2.0].mcu_mj
                              / study["streaming@30ms"][None].mcu_mj)
    assert rpeak_saving > streaming_saving
