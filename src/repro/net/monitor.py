"""On-line battery monitoring during a simulation.

BANs "operate on very limited resources such as batteries or energy
scavengers" (Section 1); beyond end-of-run lifetime projections, a
deployment wants to *watch* the charge drain and react at thresholds
(reduce duty cycle, raise an alert).  :class:`BatteryMonitor` samples a
node's cumulative energy on a simulation timer, maintains the battery
state of charge, and invokes callbacks the first time the SoC crosses
each configured threshold.

The monitor is observational: it adds no energy of its own (a real
implementation's fuel-gauge cost would fold into the MCU budget; it is
negligible at the paper's scale).
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Callable, Deque, Dict, List, Optional,
                    Tuple)

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

from ..hw.battery import Battery
from ..sim.simtime import seconds, to_seconds
from ..tinyos.timers import VirtualTimer
from .node import SensorNode

#: Callback signature: (node_id, threshold, state_of_charge).
ThresholdCallback = Callable[[str, float, float], None]


class BatteryMonitor:
    """Tracks one node's battery state of charge over a run.

    Args:
        node: the monitored sensor node.
        battery: the cell powering it.
        include_asic: whether the sensing front-end drains the same cell.
        sample_period_s: how often to integrate consumption.
        thresholds: SoC levels (descending or not) at which to fire
            callbacks once each, e.g. ``(0.5, 0.2, 0.05)``.
        history_capacity: optional bound on retained (time, SoC)
            samples; the oldest are dropped past it, so a multi-day
            lifetime run no longer grows memory without limit.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            each sample then also sets the ``battery/<node>/soc`` gauge
            and appends to the ``battery/<node>/soc`` series.
    """

    def __init__(self, node: SensorNode, battery: Battery,
                 include_asic: bool = True,
                 sample_period_s: float = 1.0,
                 thresholds: Tuple[float, ...] = (0.5, 0.2, 0.05),
                 history_capacity: Optional[int] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if sample_period_s <= 0:
            raise ValueError(
                f"sample period must be positive: {sample_period_s}")
        for threshold in thresholds:
            if not 0.0 < threshold < 1.0:
                raise ValueError(f"threshold out of (0,1): {threshold}")
        self.node = node
        self.battery = battery
        self.include_asic = include_asic
        self._sample_period = seconds(sample_period_s)
        self._pending = sorted(thresholds, reverse=True)
        self._fired: List[float] = []
        self._callbacks: Dict[float, List[ThresholdCallback]] = {}
        self._history: Deque[Tuple[int, float]] = \
            deque(maxlen=history_capacity)
        self._history_capacity = history_capacity
        self._metrics = metrics
        self._timer = VirtualTimer(node.sim, self._sample,
                                   name=f"{node.node_id}.battmon")
        self._started = False

    # ------------------------------------------------------------------
    def on_threshold(self, threshold: float,
                     callback: ThresholdCallback) -> None:
        """Register ``callback`` for one configured threshold."""
        if threshold not in self._pending and threshold not in self._fired:
            raise ValueError(
                f"{threshold} is not a configured threshold "
                f"({self._pending})")
        self._callbacks.setdefault(threshold, []).append(callback)

    def start(self) -> None:
        """Begin periodic sampling."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        self._timer.start_periodic(self._sample_period)

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    # ------------------------------------------------------------------
    def consumed_j(self) -> float:
        """Energy drawn from the cell so far, in joules."""
        energy = self.node.mcu.ledger.energy_j() \
            + self.node.radio.ledger.energy_j()
        if self.include_asic:
            energy += self.node.asic.ledger.energy_j()
        return energy

    @property
    def state_of_charge(self) -> float:
        """Remaining usable fraction (clamped at 0)."""
        fraction = self.battery.fraction_used(self.consumed_j())
        return max(0.0, 1.0 - fraction)

    @property
    def is_depleted(self) -> bool:
        """Whether the usable capacity is exhausted."""
        return self.state_of_charge <= 0.0

    @property
    def history(self) -> List[Tuple[int, float]]:
        """Retained (time, SoC) samples (oldest first)."""
        return list(self._history)

    @property
    def history_capacity(self) -> Optional[int]:
        """Configured bound on retained samples (None = unbounded)."""
        return self._history_capacity

    @property
    def thresholds_fired(self) -> List[float]:
        """Thresholds already crossed, in firing order."""
        return list(self._fired)

    def estimated_remaining_s(self) -> Optional[float]:
        """Linear time-to-empty estimate from the last two samples."""
        if len(self._history) < 2:
            return None
        (t0, soc0), (t1, soc1) = self._history[-2], self._history[-1]
        drain = (soc0 - soc1) / ((t1 - t0) / seconds(1.0))
        if drain <= 0:
            return None
        return self._history[-1][1] / drain

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        soc = self.state_of_charge
        self._history.append((self.node.sim.now, soc))
        if self._metrics is not None:
            node_id = self.node.node_id
            self._metrics.gauge("battery", node_id, "soc").set(soc)
            self._metrics.series(
                "battery", node_id, "soc",
                self._history_capacity).append(
                    to_seconds(self.node.sim.now), soc)
        while self._pending and soc <= self._pending[0]:
            threshold = self._pending.pop(0)
            self._fired.append(threshold)
            for callback in self._callbacks.get(threshold, []):
                callback(self.node.node_id, threshold, soc)


__all__ = ["BatteryMonitor", "ThresholdCallback"]
