"""Whole-tree call graph with receiver-type inference.

The flow-sensitive passes of PR 5 stop at function boundaries; the
effect analysis (:mod:`repro.lint.effects`) and fingerprint-coverage
analysis (:mod:`repro.lint.fingerprint`) need to know *who calls whom*
across the entire tree.  This module builds that graph statically,
without importing any code:

* **Indexing** — every module-level function and every class (with its
  methods, base classes, and best-effort attribute types) across all
  parsed files.  Classes are indexed by *name*; a name collision
  resolves to every candidate (conservative union).
* **Receiver-type inference** — the receiver of ``x.m(...)`` is typed
  from, in order: ``self`` (the enclosing class and its MRO),
  parameter annotations, local-variable annotations and simple
  assignment chains (``spans = self.spans``), class attribute types
  (``self.spans: Optional["SpanTracer"] = None`` in ``__init__`` or a
  class-body ``AnnAssign``), and constructor calls
  (``x = SpanStore()``).  ``Optional[...]``/string annotations are
  unwrapped; container annotations deliberately resolve to nothing
  (an element type is not the receiver's type).
* **Callback bindings** — ``obj.on_frame = self._handler`` records
  ``on_frame -> _handler``; a later ``self.on_frame(...)`` call edges
  to every handler ever bound to that attribute name tree-wide.  This
  is how the span/metrics hook indirections stay visible to the
  effect analysis.
* **CHA fallback** — a method call whose receiver cannot be typed
  edges to *every* class method of that name in the tree (classic
  class-hierarchy analysis), except for names on the builtin-container
  blocklist (``append``, ``get``, ``items``...), which would drown the
  graph in false edges.

The graph is deliberately *may-call* and conservative: extra edges can
only make the effect analysis report a function as more effectful than
it is, never less — the sound direction for proving hooks pure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .engine import FileContext

#: Method names too generic to resolve by name alone: edges from an
#: untyped receiver to same-named methods of unrelated classes would
#: swamp the graph (and ``.add(...)`` on a set must not edge into
#: ``SpanStore.add``).  Typed receivers still resolve these precisely.
CHA_BLOCKLIST = frozenset({
    "add", "append", "appendleft", "clear", "close", "copy", "count",
    "discard", "extend", "get", "index", "insert", "items", "join",
    "keys", "pop", "popitem", "popleft", "remove", "reverse", "run",
    "set", "setdefault", "sort", "split", "update", "values", "write",
})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_class_names(annotation: Optional[ast.AST]
                           ) -> Tuple[str, ...]:
    """Class names an annotation resolves an *instance* to.

    ``Optional["SpanTracer"]`` -> ``("SpanTracer",)``;
    ``Union[A, B]`` -> ``("A", "B")``; containers, ``Callable`` and
    ``None`` resolve to nothing.  String annotations are re-parsed.
    """
    if annotation is None:
        return ()
    if isinstance(annotation, ast.Constant):
        if not isinstance(annotation.value, str):
            return ()
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return ()
    if isinstance(annotation, ast.Subscript):
        head = _dotted(annotation.value)
        tail = (head or "").split(".")[-1]
        if tail in ("Optional", "Union"):
            inner = annotation.slice
            elements = (inner.elts if isinstance(inner, ast.Tuple)
                        else [inner])
            names: List[str] = []
            for element in elements:
                names.extend(annotation_class_names(element))
            return tuple(names)
        return ()  # containers / generics: element type is not the value
    if isinstance(annotation, ast.BinOp) \
            and isinstance(annotation.op, ast.BitOr):  # X | None
        return (annotation_class_names(annotation.left)
                + annotation_class_names(annotation.right))
    name = _dotted(annotation)
    if name is None:
        return ()
    tail = name.split(".")[-1]
    if tail in ("None", "Any", "object", "Callable", "Sequence", "List",
                "Dict", "Tuple", "Set", "FrozenSet", "Iterable",
                "Iterator", "Mapping", "MutableMapping", "Type",
                "str", "int", "float", "bool", "bytes"):
        return ()
    return (tail,)


@dataclass
class FunctionNode:
    """One function or method definition in the tree."""

    qualname: str  #: ``module_path::Class.method`` / ``module_path::f``
    module_path: str
    class_name: Optional[str]
    name: str
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    ctx: FileContext

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassNode:
    """One class definition with its statically harvested shape."""

    name: str
    module_path: str
    node: ast.ClassDef
    ctx: FileContext
    #: Base-class names (last dotted component), in declaration order.
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionNode] = field(default_factory=dict)
    #: Property-decorated method names.
    properties: Set[str] = field(default_factory=set)
    #: ``attr -> candidate class names`` from annotations/constructors.
    attr_types: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Class-body ``AnnAssign`` fields (dataclass field candidates),
    #: excluding ``ClassVar``.
    ann_fields: Dict[str, ast.AnnAssign] = field(default_factory=dict)
    #: ``ClassVar``-annotated names.
    classvars: Set[str] = field(default_factory=set)
    #: Every attribute name assigned anywhere (class body or self.x=).
    assigned_attrs: Set[str] = field(default_factory=set)
    is_dataclass: bool = False


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    call: ast.Call
    #: Resolved callee qualnames (possibly several: MRO ambiguity,
    #: CHA fallback, callback fan-out).  Empty when unresolved.
    targets: Tuple[str, ...]
    #: Last dotted component of the callee expression (for seeding
    #: name-based effect heuristics on unresolved calls).
    callee_name: Optional[str]
    #: Dotted receiver text (``self._sim`` for ``self._sim.at``), or
    #: None for plain-name calls.
    receiver: Optional[str]


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    name = _dotted(target)
    return name is not None and name.split(".")[-1] == "ClassVar"


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        name = _dotted(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _is_property(node: ast.AST) -> bool:
    for decorator in getattr(node, "decorator_list", ()):
        name = _dotted(decorator)
        if name is not None and name.split(".")[-1] in (
                "property", "cached_property"):
            return True
    return False


class CallGraph:
    """The whole-tree index plus the resolved call edges."""

    def __init__(self) -> None:
        #: ``qualname -> FunctionNode`` for every function in the tree.
        self.functions: Dict[str, FunctionNode] = {}
        #: ``class name -> [ClassNode, ...]`` (collisions keep all).
        self.classes: Dict[str, List[ClassNode]] = {}
        #: ``method name -> [qualname, ...]`` for CHA fallback.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: ``module-level function name -> [qualname, ...]``.
        self.module_functions: Dict[str, List[str]] = {}
        #: ``attribute name -> {qualname, ...}`` of callables ever
        #: bound to it (``obj.on_frame = self._handler``).
        self.callback_bindings: Dict[str, Set[str]] = {}
        #: ``caller qualname -> [CallSite, ...]``.
        self.calls: Dict[str, List[CallSite]] = {}
        self._env_cache: Dict[str, Dict[str, Tuple[str, ...]]] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "CallGraph":
        graph = cls()
        for ctx in contexts:
            graph._index_file(ctx)
        for ctx in contexts:
            graph._collect_callbacks(ctx)
        for qualname, function in list(graph.functions.items()):
            graph.calls[qualname] = graph._resolve_calls(function)
        return graph

    def _index_file(self, ctx: FileContext) -> None:
        for stmt in ctx.tree.body:  # type: ignore[attr-defined]
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, stmt, class_node=None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(ctx, stmt)

    def _index_function(self, ctx: FileContext, node: ast.AST,
                        class_node: Optional[ClassNode]) -> None:
        name = node.name  # type: ignore[attr-defined]
        if class_node is None:
            qualname = f"{ctx.module_path}::{name}"
        else:
            qualname = f"{ctx.module_path}::{class_node.name}.{name}"
        function = FunctionNode(
            qualname=qualname, module_path=ctx.module_path,
            class_name=class_node.name if class_node else None,
            name=name, node=node, ctx=ctx)
        self.functions[qualname] = function
        if class_node is None:
            self.module_functions.setdefault(name, []).append(qualname)
        else:
            class_node.methods[name] = function
            self.methods_by_name.setdefault(name, []).append(qualname)
            if _is_property(node):
                class_node.properties.add(name)

    def _index_class(self, ctx: FileContext, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            base_name = _dotted(base)
            if base_name is not None:
                bases.append(base_name.split(".")[-1])
        info = ClassNode(name=node.name, module_path=ctx.module_path,
                         node=node, ctx=ctx, bases=tuple(bases),
                         is_dataclass=_is_dataclass_decorated(node))
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, stmt, class_node=info)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                if _is_classvar(stmt.annotation):
                    info.classvars.add(stmt.target.id)
                else:
                    info.ann_fields[stmt.target.id] = stmt
                    info.attr_types[stmt.target.id] = \
                        annotation_class_names(stmt.annotation)
                info.assigned_attrs.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.assigned_attrs.add(target.id)
        # Harvest ``self.x: T = ...`` / ``self.x = Ctor()`` /
        # ``self.x = annotated_param`` from every method body (not just
        # __init__ — lazy attributes count too).
        for method in info.methods.values():
            params: Dict[str, Tuple[str, ...]] = {}
            arguments = method.node.args  # type: ignore[attr-defined]
            for arg in (arguments.posonlyargs + arguments.args
                        + arguments.kwonlyargs):
                names = annotation_class_names(arg.annotation)
                if names:
                    params[arg.arg] = names
            for sub in ast.walk(method.node):
                if isinstance(sub, ast.AnnAssign) \
                        and isinstance(sub.target, ast.Attribute) \
                        and isinstance(sub.target.value, ast.Name) \
                        and sub.target.value.id == "self":
                    info.assigned_attrs.add(sub.target.attr)
                    names = annotation_class_names(sub.annotation)
                    if names:
                        info.attr_types.setdefault(sub.target.attr,
                                                   names)
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            info.assigned_attrs.add(target.attr)
                            names = self._infer_ctor(sub.value)
                            if not names \
                                    and isinstance(sub.value, ast.Name):
                                names = params.get(sub.value.id, ())
                            if names:
                                info.attr_types.setdefault(target.attr,
                                                           names)
        self.classes.setdefault(node.name, []).append(info)

    def _infer_ctor(self, value: ast.AST) -> Tuple[str, ...]:
        """Class names when ``value`` is evidently a constructor call."""
        if isinstance(value, ast.BoolOp):  # ``store or SpanStore()``
            names: List[str] = []
            for operand in value.values:
                names.extend(self._infer_ctor(operand))
            return tuple(names)
        if isinstance(value, ast.IfExp):
            return self._infer_ctor(value.body) \
                + self._infer_ctor(value.orelse)
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None:
                tail = name.split(".")[-1]
                if tail in self.classes:
                    return (tail,)
        return ()

    def _collect_callbacks(self, ctx: FileContext) -> None:
        """Record ``obj.attr = <method/function>`` bindings tree-wide."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            bound = self._callable_targets(node.value, ctx)
            if not bound:
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    self.callback_bindings.setdefault(
                        target.attr, set()).update(bound)

    def _callable_targets(self, value: ast.AST,
                          ctx: FileContext) -> Set[str]:
        """Qualnames ``value`` may denote as a bare callable."""
        name = _dotted(value)
        if name is None:
            return set()
        parts = name.split(".")
        found: Set[str] = set()
        if parts[0] == "self" and len(parts) == 2:
            for info in self._classes_in(ctx.module_path):
                method = self._lookup_method(info, parts[1])
                if method is not None:
                    found.add(method.qualname)
        elif len(parts) == 1:
            found.update(self.module_functions.get(parts[0], ()))
        elif len(parts) == 2 and parts[0] in self.classes:
            for info in self.classes[parts[0]]:
                if parts[1] in info.methods:
                    found.add(info.methods[parts[1]].qualname)
        return found

    def _classes_in(self, module_path: str) -> Iterable[ClassNode]:
        for candidates in self.classes.values():
            for info in candidates:
                if info.module_path == module_path:
                    yield info

    # -- lookup ---------------------------------------------------------

    def mro(self, class_name: str) -> List[ClassNode]:
        """Best-effort linearisation: the class, then bases, by name."""
        ordered: List[ClassNode] = []
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            for info in self.classes.get(current, ()):
                ordered.append(info)
                queue.extend(info.bases)
        return ordered

    def _lookup_method(self, info: ClassNode,
                       method: str) -> Optional[FunctionNode]:
        for candidate in self.mro(info.name):
            if method in candidate.methods:
                return candidate.methods[method]
        return None

    def lookup_attr_types(self, class_name: str,
                          attr: str) -> Tuple[str, ...]:
        """Candidate types of ``attr`` on ``class_name`` (MRO walk)."""
        for info in self.mro(class_name):
            if attr in info.attr_types:
                return info.attr_types[attr]
        return ()

    def class_attr_names(self, class_name: str
                         ) -> Tuple[Set[str], Set[str], Set[str], Set[str]]:
        """``(fields, methods+properties, classvars, assigned)`` over
        the MRO of ``class_name``."""
        fields: Set[str] = set()
        callables: Set[str] = set()
        classvars: Set[str] = set()
        assigned: Set[str] = set()
        for info in self.mro(class_name):
            fields.update(info.ann_fields)
            callables.update(info.methods)
            callables.update(info.properties)
            classvars.update(info.classvars)
            assigned.update(info.assigned_attrs)
        return fields, callables, classvars, assigned

    # -- receiver typing ------------------------------------------------

    def _local_env(self, function: FunctionNode
                   ) -> Dict[str, Tuple[str, ...]]:
        """``local name -> candidate class names`` for one function.

        Parameters come from annotations; locals from ``AnnAssign``,
        constructor calls, and one-step aliasing of typed attributes
        (``spans = self.spans``).  Flow-insensitive: the union over the
        whole body (conservative for a may-call graph).
        """
        cached = self._env_cache.get(function.qualname)
        if cached is not None:
            return cached
        env: Dict[str, Tuple[str, ...]] = {}
        node = function.node
        arguments = node.args  # type: ignore[attr-defined]
        for arg in (arguments.posonlyargs + arguments.args
                    + arguments.kwonlyargs):
            if arg.arg == "self" and function.class_name is not None:
                env["self"] = (function.class_name,)
            elif arg.annotation is not None:
                names = annotation_class_names(arg.annotation)
                if names:
                    env[arg.arg] = names
        changed = True
        passes = 0
        while changed and passes < 4:  # alias chains settle quickly
            changed = False
            passes += 1
            for sub in ast.walk(node):
                target_name: Optional[str] = None
                value: Optional[ast.AST] = None
                if isinstance(sub, ast.AnnAssign) \
                        and isinstance(sub.target, ast.Name):
                    target_name = sub.target.id
                    names = annotation_class_names(sub.annotation)
                    if names and env.get(target_name) != names:
                        env[target_name] = names
                        changed = True
                    continue
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                        and isinstance(sub.targets[0], ast.Name):
                    target_name = sub.targets[0].id
                    value = sub.value
                if target_name is None or value is None:
                    continue
                names = self._expr_types(value, env)
                if names and env.get(target_name) != names:
                    env[target_name] = names
                    changed = True
        self._env_cache[function.qualname] = env
        return env

    def _expr_types(self, value: ast.AST,
                    env: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        """Candidate class names of an expression under ``env``."""
        if isinstance(value, ast.Name):
            return env.get(value.id, ())
        if isinstance(value, ast.Attribute):
            base_types = self._expr_types(value.value, env)
            found: List[str] = []
            for base in base_types:
                found.extend(self.lookup_attr_types(base, value.attr))
            return tuple(dict.fromkeys(found))
        if isinstance(value, (ast.BoolOp, ast.IfExp)):
            operands = value.values if isinstance(value, ast.BoolOp) \
                else [value.body, value.orelse]
            found = []
            for operand in operands:
                found.extend(self._expr_types(operand, env))
            return tuple(dict.fromkeys(found))
        if isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name is not None and name.split(".")[-1] in self.classes:
                return (name.split(".")[-1],)
            # Return-annotation propagation: the type of
            # ``registry.state_timer(...)`` is state_timer's declared
            # return type.
            found = []
            if isinstance(value.func, ast.Attribute):
                for base in self._expr_types(value.func.value, env):
                    for info in self.classes.get(base, ()):
                        method = self._lookup_method(info,
                                                     value.func.attr)
                        if method is not None:
                            found.extend(annotation_class_names(
                                method.node.returns))  # type: ignore
            elif isinstance(value.func, ast.Name):
                for qualname in self.module_functions.get(
                        value.func.id, ()):
                    target = self.functions[qualname]
                    found.extend(annotation_class_names(
                        target.node.returns))  # type: ignore
            return tuple(dict.fromkeys(found))
        return ()

    def receiver_types(self, function: FunctionNode, node: ast.AST,
                       env: Optional[Dict[str, Tuple[str, ...]]] = None
                       ) -> Tuple[str, ...]:
        """Candidate class names for an arbitrary receiver expression."""
        if env is None:
            env = self._local_env(function)
        return self._expr_types(node, env)

    # -- call resolution ------------------------------------------------

    def _resolve_calls(self, function: FunctionNode) -> List[CallSite]:
        env = self._local_env(function)
        sites: List[CallSite] = []
        for sub in ast.walk(function.node):
            if not isinstance(sub, ast.Call):
                continue
            sites.append(self._resolve_call(function, sub, env))
        return sites

    def _resolve_call(self, function: FunctionNode, call: ast.Call,
                      env: Dict[str, Tuple[str, ...]]) -> CallSite:
        func = call.func
        targets: List[str] = []
        callee_name: Optional[str] = None
        receiver: Optional[str] = None
        if isinstance(func, ast.Name):
            callee_name = func.id
            if func.id in self.classes:  # constructor
                for info in self.classes[func.id]:
                    init = self._lookup_method(info, "__init__")
                    if init is not None:
                        targets.append(init.qualname)
                    post = self._lookup_method(info, "__post_init__")
                    if post is not None:
                        targets.append(post.qualname)
            elif func.id in self.module_functions:
                targets.extend(self.module_functions[func.id])
            elif func.id in env:  # callable local? not resolvable
                pass
        elif isinstance(func, ast.Attribute):
            callee_name = func.attr
            receiver = _dotted(func.value)
            targets.extend(self._resolve_method(function, func, env))
        return CallSite(call=call, targets=tuple(dict.fromkeys(targets)),
                        callee_name=callee_name, receiver=receiver)

    def _resolve_method(self, function: FunctionNode,
                        func: ast.Attribute,
                        env: Dict[str, Tuple[str, ...]]) -> List[str]:
        method = func.attr
        targets: List[str] = []
        # super().m(...)
        if isinstance(func.value, ast.Call) \
                and _dotted(func.value.func) == "super" \
                and function.class_name is not None:
            for info in self.classes.get(function.class_name, ()):
                for base in info.bases:
                    for base_info in self.classes.get(base, ()):
                        found = self._lookup_method(base_info, method)
                        if found is not None:
                            targets.append(found.qualname)
            return targets
        # ClassName.m(...) — explicit class reference.
        name = _dotted(func.value)
        if name is not None and name in self.classes:
            for info in self.classes[name]:
                found = self._lookup_method(info, method)
                if found is not None:
                    targets.append(found.qualname)
            if targets:
                return targets
        # Typed receiver (self, annotated param/local, typed attribute).
        receiver_types = self._expr_types(func.value, env)
        for class_name in receiver_types:
            found = None
            for info in self.classes.get(class_name, ()):
                found = self._lookup_method(info, method)
                if found is not None:
                    targets.append(found.qualname)
            # Subclass dispatch: a call through a base-typed receiver
            # may land in any override of the method below it.
            for override in self.methods_by_name.get(method, ()):
                override_cls = self.functions[override].class_name
                if override_cls is None or override_cls == class_name:
                    continue
                for info in self.mro(override_cls):
                    if info.name == class_name:
                        targets.append(override)
                        break
        if targets:
            return targets
        # Callback indirection: ``self.on_frame(...)`` resolves to every
        # callable ever bound to ``on_frame``.
        if method in self.callback_bindings:
            targets.extend(sorted(self.callback_bindings[method]))
            return targets
        # CHA fallback: untyped receiver, distinctive method name.
        if receiver_types == () and method not in CHA_BLOCKLIST:
            targets.extend(self.methods_by_name.get(method, ()))
        return targets

    # -- reporting ------------------------------------------------------

    def edges(self) -> List[Tuple[str, str]]:
        """Sorted unique ``(caller, callee)`` pairs."""
        pairs: Set[Tuple[str, str]] = set()
        for caller, sites in self.calls.items():
            for site in sites:
                for target in site.targets:
                    pairs.add((caller, target))
        return sorted(pairs)

    def to_summary(self) -> Dict[str, object]:
        """JSON-ready structural summary for the lint report."""
        edges = self.edges()
        resolved_sites = sum(
            1 for sites in self.calls.values()
            for site in sites if site.targets)
        total_sites = sum(len(sites) for sites in self.calls.values())
        return {
            "functions": len(self.functions),
            "classes": sum(len(v) for v in self.classes.values()),
            "call_sites": total_sites,
            "resolved_call_sites": resolved_sites,
            "edges": [list(pair) for pair in edges],
        }


def build_call_graph(contexts: Sequence[FileContext]) -> CallGraph:
    """Build the whole-tree call graph over the parsed context set."""
    return CallGraph.build(contexts)


__all__ = [
    "CHA_BLOCKLIST",
    "CallGraph",
    "CallSite",
    "ClassNode",
    "FunctionNode",
    "annotation_class_names",
    "build_call_graph",
]
