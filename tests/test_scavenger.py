"""Tests for the energy-scavenging models and neutrality budgets."""

import pytest

from conftest import run_quick
from repro.hw.scavenger import (
    ConstantHarvest,
    DiurnalSolarHarvest,
    HarvestingBudget,
    MotionHarvest,
    harvesting_budget,
)


class TestConstantHarvest:
    def test_power_is_flat(self):
        source = ConstantHarvest(2e-3)
        assert source.power_at(0.0) == source.power_at(12345.6) == 2e-3

    def test_energy_integrates_exactly(self):
        source = ConstantHarvest(2e-3)
        assert source.energy_between(0.0, 100.0) \
            == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantHarvest(-1.0)
        with pytest.raises(ValueError):
            ConstantHarvest(1.0).energy_between(10.0, 5.0)


class TestDiurnalSolar:
    def test_zero_at_night(self):
        source = DiurnalSolarHarvest(peak_power_w=5e-3, day_fraction=0.5,
                                     period_s=100.0)
        assert source.power_at(60.0) == 0.0
        assert source.power_at(99.0) == 0.0

    def test_peak_at_midday(self):
        source = DiurnalSolarHarvest(peak_power_w=5e-3, day_fraction=0.5,
                                     period_s=100.0)
        assert source.power_at(25.0) == pytest.approx(5e-3)

    def test_daily_average(self):
        # Mean of a half-sine over the day fraction: 2/pi * peak * frac.
        source = DiurnalSolarHarvest(peak_power_w=5e-3, day_fraction=0.5,
                                     period_s=100.0)
        energy = source.energy_between(0.0, 100.0, resolution_s=0.01)
        expected = 5e-3 * (2.0 / 3.141592653589793) * 50.0
        assert energy == pytest.approx(expected, rel=0.001)

    def test_periodicity(self):
        source = DiurnalSolarHarvest(peak_power_w=1.0, period_s=100.0)
        assert source.power_at(10.0) == pytest.approx(
            source.power_at(110.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalSolarHarvest(peak_power_w=-1.0)
        with pytest.raises(ValueError):
            DiurnalSolarHarvest(peak_power_w=1.0, day_fraction=0.0)


class TestMotionHarvest:
    def test_duty_cycle_schedule(self):
        source = MotionHarvest(active_power_w=4e-3, rest_power_w=1e-4,
                               activity_period_s=100.0,
                               activity_fraction=0.25)
        assert source.power_at(10.0) == 4e-3   # active phase
        assert source.power_at(30.0) == 1e-4   # resting
        assert source.power_at(110.0) == 4e-3  # periodic

    def test_average(self):
        source = MotionHarvest(active_power_w=4e-3, rest_power_w=0.0,
                               activity_period_s=100.0,
                               activity_fraction=0.25)
        energy = source.energy_between(0.0, 100.0, resolution_s=0.1)
        assert energy == pytest.approx(4e-3 * 25.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            MotionHarvest(active_power_w=-1.0)
        with pytest.raises(ValueError):
            MotionHarvest(active_power_w=1.0, activity_fraction=2.0)


class TestBudget:
    def test_neutrality_verdicts(self):
        surplus = HarvestingBudget("n", consumed_mw=2.0, harvested_mw=3.0)
        deficit = HarvestingBudget("n", consumed_mw=3.0, harvested_mw=2.0)
        assert surplus.is_energy_neutral
        assert surplus.margin_mw == pytest.approx(1.0)
        assert not deficit.is_energy_neutral
        assert deficit.coverage == pytest.approx(2.0 / 3.0)

    def test_render(self):
        budget = HarvestingBudget("node1", 2.0, 1.0)
        text = budget.render()
        assert "net-negative" in text and "50%" in text

    def test_budget_from_simulated_node(self):
        _, result = run_quick(app="rpeak", cycle_ms=120.0, measure_s=4.0)
        node = result.node("node1")
        # A large constant source covers radio+MCU easily...
        rich = harvesting_budget(node, ConstantHarvest(20e-3),
                                 include_asic=False)
        assert rich.is_energy_neutral
        # ...but not once the 10.5 mW sensing ASIC joins the budget.
        with_asic = harvesting_budget(node, ConstantHarvest(10e-3),
                                      include_asic=True)
        assert not with_asic.is_energy_neutral
        assert with_asic.consumed_mw > 10.5
