"""Lint configuration, loaded from ``pyproject.toml``.

All knobs live under ``[tool.repro-lint]`` so the rules are versioned
with the code they police::

    [tool.repro-lint]
    select = ["DET001", "DET002", ...]      # default: every rule

    [tool.repro-lint.det002]
    # Files (matched by module-path suffix) allowed to read the wall
    # clock: profiling instrumentation whose readings never feed a
    # simulated quantity.
    allow = ["obs/profiler.py", "sim/kernel.py", "exec/executor.py"]

    [tool.repro-lint.det003]
    # Packages where iteration order can reach the event queue.
    packages = ["sim", "mac", "net", "faults"]

    [tool.repro-lint.flt001]
    # Identifier fragments marking energy/time-like values.
    name_pattern = "(energy|joule|...)"

    [tool.repro-lint.cfg001]
    pattern = "(Config|Spec)$"
    packages = ["core", "sim", ...]          # the cache-salted set

Unknown keys raise: a typo in lint configuration must not silently
relax a rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.9/3.10
    tomllib = None  # type: ignore[assignment]

#: Wall-clock allowlist applied when pyproject carries no det002 table.
DEFAULT_DET002_ALLOW: Tuple[str, ...] = ()

#: Order-sensitive packages checked by DET003 by default: anywhere a
#: set-iteration order could reach the event queue or a ledger.
DEFAULT_DET003_PACKAGES: Tuple[str, ...] = ("sim", "mac", "net", "faults")

#: Default identifier fragments FLT001 treats as energy/time-like.
DEFAULT_FLT001_PATTERN = (
    "energy|joule|charge|_mj|_uj|_nj|_mah|wall|elapsed|duration"
    "|_seconds|seconds_|lifetime"
)

#: Default class-name pattern and package set for CFG001: the config
#: dataclasses reachable from the result-cache fingerprint (the
#: ``_SALTED_PACKAGES`` of :mod:`repro.exec.cache`, plus ``exec``).
DEFAULT_CFG001_PATTERN = "(Config|Spec)$"
DEFAULT_CFG001_PACKAGES: Tuple[str, ...] = (
    "core", "sim", "tinyos", "hw", "phy", "mac", "apps", "signals",
    "net", "faults", "exec",
)

#: Modules whose public float constants UNI004 requires to carry a
#: unit suffix or ``# unit:`` annotation: the calibration tables the
#: whole energy model is seeded from.
DEFAULT_UNITS_CONST_MODULES: Tuple[str, ...] = (
    "core/calibration.py", "data/paper_tables.py", "hw/",
)

#: Top-level packages the state-machine pass patrols for ledgers
#: without a TransitionSpec and out-of-component transition calls.
DEFAULT_SM_PACKAGES: Tuple[str, ...] = ("hw", "mac")

#: Modules (path prefixes/suffixes) holding *observability* state: the
#: effect pass treats mutations of objects defined here as benign —
#: spans, metrics and traces may mutate themselves, never the
#: simulation.
DEFAULT_EFFECTS_OBS_MODULES: Tuple[str, ...] = ("obs/", "sim/trace.py")

#: Attribute names whose ``is not None`` guards mark observability
#: hook sites (``if self.spans is not None: ...``).
DEFAULT_EFFECTS_HOOK_ATTRS: Tuple[str, ...] = ("spans", "_trace")

#: Method names implementing the pull-based metrics hook protocol.
DEFAULT_EFFECTS_HOOK_METHODS: Tuple[str, ...] = ("observe_metrics",)

#: Root classes of the cache-fingerprint closure (FPC001/FPC002).
DEFAULT_FPC_ROOTS: Tuple[str, ...] = ("BanScenarioConfig",
                                      "MultiBanScenario")

#: Class-name pattern selecting config-shaped dataclasses for FPC002.
DEFAULT_FPC_PATTERN = "(Config|Spec|Plan)$"

#: Packages whose code counts as "simulation code" for FPC reads and
#: derived-config construction: the cache code salt's package set.
DEFAULT_FPC_PACKAGES: Tuple[str, ...] = (
    "core", "sim", "tinyos", "hw", "phy", "mac", "apps", "signals",
    "net", "faults",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (defaults merged with pyproject)."""

    #: Rule codes to run; ``None`` means every registered rule.
    select: Optional[Tuple[str, ...]] = None
    #: Module-path suffixes exempt from DET002 (wall-clock reads).
    det002_allow: Tuple[str, ...] = DEFAULT_DET002_ALLOW
    #: Top-level ``repro`` packages DET003 patrols.
    det003_packages: Tuple[str, ...] = DEFAULT_DET003_PACKAGES
    #: Regex fragment matched (case-insensitively, ``re.search``)
    #: against identifier text by FLT001.
    flt001_name_pattern: str = DEFAULT_FLT001_PATTERN
    #: Class-name regex (``re.search``) selecting CFG001 targets.
    cfg001_pattern: str = DEFAULT_CFG001_PATTERN
    #: Packages whose matching dataclasses feed the cache fingerprint.
    cfg001_packages: Tuple[str, ...] = DEFAULT_CFG001_PACKAGES
    #: Modules (path prefixes/suffixes) UNI004 holds to the
    #: unit-suffix-or-annotation standard for public float constants.
    units_const_modules: Tuple[str, ...] = DEFAULT_UNITS_CONST_MODULES
    #: Top-level packages the state-machine pass patrols.
    sm_packages: Tuple[str, ...] = DEFAULT_SM_PACKAGES
    #: Observability modules whose state mutations are benign.
    effects_obs_modules: Tuple[str, ...] = DEFAULT_EFFECTS_OBS_MODULES
    #: Attribute names marking spans/trace hook guards.
    effects_hook_attrs: Tuple[str, ...] = DEFAULT_EFFECTS_HOOK_ATTRS
    #: Pull-based metrics hook method names (OBS003).
    effects_hook_methods: Tuple[str, ...] = DEFAULT_EFFECTS_HOOK_METHODS
    #: Root classes of the cache-fingerprint closure.
    fpc_roots: Tuple[str, ...] = DEFAULT_FPC_ROOTS
    #: Class-name regex (``re.search``) selecting FPC002 candidates.
    fpc_pattern: str = DEFAULT_FPC_PATTERN
    #: Packages treated as simulation code by the FPC rules.
    fpc_packages: Tuple[str, ...] = DEFAULT_FPC_PACKAGES
    #: Module-path suffixes the lifecycle pass (LIF rules) skips.
    lifecycle_exclude_modules: Tuple[str, ...] = field(
        default_factory=tuple)
    #: Module-path suffixes skipped entirely (fixtures, vendored code).
    exclude: Tuple[str, ...] = field(default_factory=tuple)

    def rule_enabled(self, code: str) -> bool:
        """Whether ``code`` is selected for this run."""
        return self.select is None or code in self.select


class ConfigError(ValueError):
    """Raised for malformed ``[tool.repro-lint]`` tables."""


def _str_tuple(table: Dict[str, Any], key: str, where: str
               ) -> Optional[Tuple[str, ...]]:
    value = table.pop(key, None)
    if value is None:
        return None
    if (not isinstance(value, (list, tuple))
            or not all(isinstance(item, str) for item in value)):
        raise ConfigError(f"{where}.{key} must be a list of strings")
    return tuple(value)


def _str_value(table: Dict[str, Any], key: str, where: str
               ) -> Optional[str]:
    value = table.pop(key, None)
    if value is None:
        return None
    if not isinstance(value, str):
        raise ConfigError(f"{where}.{key} must be a string")
    return value


def _reject_unknown(table: Dict[str, Any], where: str) -> None:
    if table:
        unknown = ", ".join(sorted(table))
        raise ConfigError(f"unknown {where} key(s): {unknown}")


def config_from_table(table: Dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.repro-lint]`` dict."""
    table = dict(table)
    defaults = LintConfig()
    select = _str_tuple(table, "select", "tool.repro-lint")
    exclude = _str_tuple(table, "exclude", "tool.repro-lint")

    det002 = dict(table.pop("det002", {}))
    det002_allow = _str_tuple(det002, "allow", "tool.repro-lint.det002")
    _reject_unknown(det002, "tool.repro-lint.det002")

    det003 = dict(table.pop("det003", {}))
    det003_packages = _str_tuple(det003, "packages",
                                 "tool.repro-lint.det003")
    _reject_unknown(det003, "tool.repro-lint.det003")

    flt001 = dict(table.pop("flt001", {}))
    flt001_pattern = _str_value(flt001, "name_pattern",
                                "tool.repro-lint.flt001")
    _reject_unknown(flt001, "tool.repro-lint.flt001")

    cfg001 = dict(table.pop("cfg001", {}))
    cfg001_pattern = _str_value(cfg001, "pattern",
                                "tool.repro-lint.cfg001")
    cfg001_packages = _str_tuple(cfg001, "packages",
                                 "tool.repro-lint.cfg001")
    _reject_unknown(cfg001, "tool.repro-lint.cfg001")

    units = dict(table.pop("units", {}))
    units_const_modules = _str_tuple(units, "const_modules",
                                     "tool.repro-lint.units")
    _reject_unknown(units, "tool.repro-lint.units")

    statemachine = dict(table.pop("statemachine", {}))
    sm_packages = _str_tuple(statemachine, "packages",
                             "tool.repro-lint.statemachine")
    _reject_unknown(statemachine, "tool.repro-lint.statemachine")

    effects = dict(table.pop("effects", {}))
    effects_obs_modules = _str_tuple(effects, "obs_modules",
                                     "tool.repro-lint.effects")
    effects_hook_attrs = _str_tuple(effects, "hook_attrs",
                                    "tool.repro-lint.effects")
    effects_hook_methods = _str_tuple(effects, "hook_methods",
                                      "tool.repro-lint.effects")
    _reject_unknown(effects, "tool.repro-lint.effects")

    fpc = dict(table.pop("fpc", {}))
    fpc_roots = _str_tuple(fpc, "roots", "tool.repro-lint.fpc")
    fpc_pattern = _str_value(fpc, "pattern", "tool.repro-lint.fpc")
    fpc_packages = _str_tuple(fpc, "packages", "tool.repro-lint.fpc")
    _reject_unknown(fpc, "tool.repro-lint.fpc")

    lifecycle = dict(table.pop("lifecycle", {}))
    lifecycle_exclude = _str_tuple(lifecycle, "exclude_modules",
                                   "tool.repro-lint.lifecycle")
    _reject_unknown(lifecycle, "tool.repro-lint.lifecycle")

    _reject_unknown(table, "tool.repro-lint")
    return LintConfig(
        select=select,
        det002_allow=(defaults.det002_allow if det002_allow is None
                      else det002_allow),
        det003_packages=(defaults.det003_packages
                         if det003_packages is None else det003_packages),
        flt001_name_pattern=(defaults.flt001_name_pattern
                             if flt001_pattern is None else flt001_pattern),
        cfg001_pattern=(defaults.cfg001_pattern
                        if cfg001_pattern is None else cfg001_pattern),
        cfg001_packages=(defaults.cfg001_packages
                         if cfg001_packages is None else cfg001_packages),
        units_const_modules=(defaults.units_const_modules
                             if units_const_modules is None
                             else units_const_modules),
        sm_packages=(defaults.sm_packages if sm_packages is None
                     else sm_packages),
        effects_obs_modules=(defaults.effects_obs_modules
                             if effects_obs_modules is None
                             else effects_obs_modules),
        effects_hook_attrs=(defaults.effects_hook_attrs
                            if effects_hook_attrs is None
                            else effects_hook_attrs),
        effects_hook_methods=(defaults.effects_hook_methods
                              if effects_hook_methods is None
                              else effects_hook_methods),
        fpc_roots=(defaults.fpc_roots if fpc_roots is None
                   else fpc_roots),
        fpc_pattern=(defaults.fpc_pattern if fpc_pattern is None
                     else fpc_pattern),
        fpc_packages=(defaults.fpc_packages if fpc_packages is None
                      else fpc_packages),
        lifecycle_exclude_modules=(
            defaults.lifecycle_exclude_modules
            if lifecycle_exclude is None else lifecycle_exclude),
        exclude=() if exclude is None else exclude,
    )


def find_pyproject(start: Path) -> Optional[Path]:
    """Locate ``pyproject.toml`` at ``start`` or any parent directory."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(paths: Sequence[Path] = (),
                pyproject: Optional[Path] = None) -> LintConfig:
    """Resolve the lint configuration for a run over ``paths``.

    ``pyproject`` pins the file explicitly; otherwise the nearest
    ``pyproject.toml`` above the first scanned path (falling back to the
    current directory) is used.  No file, no ``tomllib`` or no
    ``[tool.repro-lint]`` table all mean built-in defaults.
    """
    if pyproject is None:
        anchor = Path(paths[0]) if paths else Path.cwd()
        pyproject = find_pyproject(anchor)
    if pyproject is None or tomllib is None:
        return LintConfig()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return LintConfig()
    if not isinstance(table, dict):
        raise ConfigError("[tool.repro-lint] must be a table")
    return config_from_table(table)


__all__ = [
    "ConfigError",
    "LintConfig",
    "config_from_table",
    "find_pyproject",
    "load_config",
]
