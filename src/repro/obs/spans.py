"""Causal span tracing: per-packet latency and per-joule attribution.

Metrics (:mod:`repro.obs.metrics`) and trace sinks
(:mod:`repro.obs.sinks`) answer *how much* — total joules, total
frames — but not *because of what*: there is no causal link from an
application sample through MAC queueing and PHY airtime to delivery
(or loss) at the base station.  This module adds that link.  Each data
packet (and each control frame) gets a **root span** covering its whole
lifetime; **child spans** cover every lifecycle phase:

========================  ====================================================
phase                      interval
========================  ====================================================
``app.buffer``             first pending sample tick -> MAC accepts a payload
``mac.slot_wait``          beacon processed -> owned TDMA slot fires
``mac.ssr_wait``           SSR scheduled -> SSR transmitted (join protocol)
``mac.tx_jitter``          ALOHA poll -> randomised transmit instant
``mac.backoff_wait``       CSMA backoff draw -> CCA start (radio off)
``mac.cca``                CSMA clear-channel assessment window (RX
                           current), with ``busy``/``idle`` as status
``tinyos.queue``           task posted -> task dispatched (FIFO wait)
``mcu.prepare``            packet-preparation task executing on the MCU
``radio.settle``           ShockBurst PLL settle (TX state, tag ``settle``)
``phy.air``                first bit on air -> last bit off air
``radio.tail``             TX shutdown tail (TX state, tag ``tail``)
``phy.rx``                 the frame's airtime at one receiver, with the
                           receive outcome (``delivered`` / ``corrupted`` /
                           ``overheard`` / ``fault_dropped``) as its status
========================  ====================================================

Determinism argument
--------------------

Spans-enabled runs are byte-identical to spans-off runs in event order,
energies and fingerprints because every hook is a plain method call on
the tracer — no events are scheduled, no RNG is consumed, no simulator
state is touched.  Span IDs come from a **store-local serial counter**
(deterministic: hooks fire in dispatch order, which is itself
deterministic), *not* from ``Simulator.next_serial()`` — consuming the
simulator's serial would shift every ``Frame.frame_id`` and change the
trace text of a spans-on run.  No wall clock and no module-global
counters are involved, so ``repro.lint`` stays clean and repeat runs
produce bit-identical span sets.  Cross-worker, :class:`SpanStore`
snapshots merge with deterministic ID rebasing in submission order, so
``--jobs N`` output equals sequential.

Energy attribution
------------------

Every span energy is ``ledger.iv_coeff(state) * to_seconds(span_ticks)``
— the *exact* expression :class:`~repro.core.ledger.PowerStateLedger`
uses — so summed per-span energies for a node equal that node's ledger
totals for the attributed states up to float addition order (the
ledger multiplies the coefficient by the *summed* integer ticks; spans
multiply per phase and then sum).  TX coverage is exact: the settle,
air and tail phases partition the ledger's TX interval tick for tick.
RX and MCU-active coverage is partial by design (idle listening and
non-packet tasks are not packet-attributable); the reconciliation
report states the coverage ratio instead of hiding it.
"""

from __future__ import annotations

import json
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from ..hw.frames import Frame, FrameKind
from ..sim.simtime import TICKS_PER_SECOND, to_seconds

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..hw.radio import TxOutcome
    from ..net.basestation import BaseStation
    from ..net.node import SensorNode
    from ..net.scenario import BanScenario
    from .metrics import MetricsRegistry
    from .sinks import TraceSink

#: Root span name (one per packet / control frame).
ROOT = "packet"

#: Histogram bucket bounds for the latency rollup [ms].
LATENCY_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                      500.0, 1000.0)

#: Histogram bucket bounds for the per-packet energy rollup [uJ].
ENERGY_BUCKETS_UJ = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                     500.0, 1000.0)

#: Perfetto track (tid) per phase name; phases that may overlap in time
#: on one node render on separate tracks.
_PERFETTO_TIDS = {ROOT: 0, "app.buffer": 1, "mac.slot_wait": 2,
                  "mac.ssr_wait": 2, "mac.tx_jitter": 2,
                  "mac.backoff_wait": 2,
                  "tinyos.queue": 3, "mcu.prepare": 3,
                  "radio.settle": 4, "phy.air": 4, "radio.tail": 4,
                  "mac.cca": 4, "phy.rx": 5}

#: A span as a plain JSON-able record (the snapshot/merge wire format):
#: ``[span_id, parent_id, trace_id, name, node, kind, frame_id, start,
#: end, energy_j, status]``.
SpanRecord = List[Any]


class Span:
    """One closed interval in a packet's life, with energy attribution.

    Attributes:
        span_id: store-local serial (deterministic; see module docs).
        parent_id: enclosing span's id (None for roots and orphans).
        trace_id: the root span's id (== span_id for roots).
        name: phase name (:data:`ROOT` or a child phase).
        node: the node whose hardware the time/energy belongs to.
        kind: the frame kind value (``data``/``beacon``/...).
        frame_id: the frame's simulator-serial id (correlates spans
            with trace records; 0 if never transmitted).
        start: interval start [ticks].
        end: interval end [ticks].
        energy_j: attributed energy [J] (ledger-coefficient exact).
        status: outcome tag (root: ``delivered``/``lost``/``broadcast``;
            ``phy.rx``: receive outcome; else free-form).
    """

    __slots__ = ("span_id", "parent_id", "trace_id", "name", "node",
                 "kind", "frame_id", "start", "end", "energy_j",
                 "status")

    def __init__(self, span_id: int, parent_id: Optional[int],
                 trace_id: int, name: str, node: str, kind: str,
                 frame_id: int, start: int, end: int,
                 energy_j: float, status: str = "") -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.node = node
        self.kind = kind
        self.frame_id = frame_id
        self.start = start
        self.end = end
        self.energy_j = energy_j
        self.status = status

    @property
    def duration_ticks(self) -> int:
        """The interval length in ticks."""
        return self.end - self.start

    @property
    def duration_s(self) -> float:
        """The interval length in seconds."""
        return to_seconds(self.end - self.start)

    def to_record(self) -> SpanRecord:
        """The plain-data wire form (see :data:`SpanRecord`)."""
        return [self.span_id, self.parent_id, self.trace_id, self.name,
                self.node, self.kind, self.frame_id, self.start,
                self.end, self.energy_j, self.status]

    @staticmethod
    def from_record(record: SpanRecord) -> "Span":
        """Inverse of :meth:`to_record`."""
        return Span(record[0], record[1], record[2], record[3],
                    record[4], record[5], record[6], record[7],
                    record[8], record[9], record[10])

    def __repr__(self) -> str:
        return (f"Span(#{self.span_id} {self.name} node={self.node} "
                f"[{self.start}..{self.end}] {self.energy_j:.3e} J "
                f"{self.status})")


class SpanStore:
    """Finished spans plus the deterministic ID allocator.

    Mirrors :class:`~repro.obs.metrics.MetricsRegistry`'s
    snapshot/merge contract: workers fill private stores, ship
    :meth:`snapshot` dicts back, and the parent folds them in with
    :meth:`merge_snapshot` — span IDs are rebased past the IDs already
    present, so merging per-config snapshots in submission order
    reproduces the sequential store bit for bit.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Next span ID (store-local serial; see the module docs)."""
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def add(self, span: Span) -> None:
        """Append a finished span."""
        self.spans.append(span)

    def clear(self) -> None:
        """Drop all spans and restart the ID serial (measurement reset)."""
        self.spans.clear()
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> List[Span]:
        """The root spans, in finalisation order."""
        return [span for span in self.spans if span.parent_id is None
                and span.name == ROOT]

    def children_of(self, trace_id: int) -> List[Span]:
        """Child spans of one trace, in recorded order."""
        return [span for span in self.spans
                if span.trace_id == trace_id and span.parent_id
                is not None]

    # ------------------------------------------------------------------
    # Snapshot / merge (the cross-worker contract)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, List[SpanRecord]]:
        """A plain-data view, sorted by span ID (canonical order)."""
        records = sorted((span.to_record() for span in self.spans),
                         key=lambda record: record[0])
        return {"spans": records}

    def merge_snapshot(self, snapshot: Dict[str, List[SpanRecord]]
                       ) -> None:
        """Fold a worker's snapshot in, rebasing span IDs past ours."""
        base = self._next_id - 1
        highest = 0
        for record in snapshot.get("spans", []):
            span = Span.from_record(record)
            highest = max(highest, span.span_id)
            span.span_id += base
            span.trace_id += base
            if span.parent_id is not None:
                span.parent_id += base
            self.spans.append(span)
        self._next_id = base + highest + 1

    def fingerprint(self) -> str:
        """SHA-256 over the canonical snapshot JSON (bit-exact)."""
        import hashlib
        text = json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()


class _NodeBinding:
    """Per-node energy coefficients, pulled from the node's ledgers."""

    __slots__ = ("mcu_active_w", "radio_tx_w", "radio_rx_w",
                 "mcu_clock_hz", "_ticks_memo")

    def __init__(self, mcu_active_w: float, radio_tx_w: float,
                 radio_rx_w: float, mcu_clock_hz: float) -> None:
        self.mcu_active_w = mcu_active_w
        self.radio_tx_w = radio_tx_w
        self.radio_rx_w = radio_rx_w
        self.mcu_clock_hz = mcu_clock_hz
        self._ticks_memo: Dict[int, int] = {}

    def cycles_to_ticks(self, cycles: int) -> int:
        """MCU cycles -> ticks, replicating ``Msp430.cycles_to_ticks``
        (own memo: the tracer never touches model state)."""
        ticks = self._ticks_memo.get(cycles)
        if ticks is None:
            ticks = round(cycles * TICKS_PER_SECOND / self.mcu_clock_hz)
            self._ticks_memo[cycles] = ticks
        return ticks


class _PacketTrace:
    """In-flight bookkeeping for one frame's trace (pre-finalisation).

    Phases are recorded as raw tuples and only become :class:`Span`
    objects at finalisation, when the frame's simulator-serial
    ``frame_id`` is known (it is stamped at first transmit).
    """

    __slots__ = ("frame", "node", "start", "phases", "open_name",
                 "open_start")

    def __init__(self, frame: Frame, node: str, start: int) -> None:
        self.frame = frame
        self.node = node
        self.start = start
        #: (name, node, start, end, energy_j, status) per closed phase.
        self.phases: List[Tuple[str, str, int, int, float, str]] = []
        self.open_name: Optional[str] = None
        self.open_start = 0


class SpanTracer:
    """The hook target every instrumented component points at.

    Components hold ``spans = None`` by default; the disabled path is a
    single ``is None`` test.  :func:`attach_span_tracer` wires one
    tracer through a scenario.  All hooks are pure tracer-state
    mutations — see the module docstring's determinism argument.
    """

    def __init__(self, store: Optional[SpanStore] = None) -> None:
        self.store = store if store is not None else SpanStore()
        self._bindings: Dict[str, _NodeBinding] = {}
        # id(frame) -> trace; the trace holds the frame reference, so
        # the id cannot be recycled while the entry is pending.
        self._by_frame: Dict[int, _PacketTrace] = {}
        # task label -> traces awaiting that label's dispatch (FIFO).
        self._awaiting_task: Dict[str, List[_PacketTrace]] = {}
        # node -> (first sample tick, active MCU ticks, sample count).
        self._pending_samples: Dict[str, Tuple[int, int, int]] = {}
        # node -> (wait phase name, start, end).
        self._pending_wait: Dict[str, Tuple[str, int, int]] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_node(self, node: str, mcu_active_w: float,
                  radio_tx_w: float, radio_rx_w: float,
                  mcu_clock_hz: float) -> None:
        """Register one node's energy coefficients (ledger-exact)."""
        self._bindings[node] = _NodeBinding(
            mcu_active_w, radio_tx_w, radio_rx_w, mcu_clock_hz)

    def reset(self) -> None:
        """Drop warm-up spans and pending state (measurement start).

        Bindings survive.  A transmission straddling the reset loses
        its trace entirely (its later hooks no-op), mirroring how the
        ledgers drop the pre-reset part of their open interval.
        """
        self.store.clear()
        self._by_frame.clear()
        self._awaiting_task.clear()
        self._pending_samples.clear()
        self._pending_wait.clear()

    # ------------------------------------------------------------------
    # Application hooks
    # ------------------------------------------------------------------
    def note_sample(self, node: str, now: int, cycles: int) -> None:
        """One sample vector acquired; accumulates toward the next
        packet's ``app.buffer`` phase."""
        binding = self._bindings.get(node)
        ticks = binding.cycles_to_ticks(cycles) if binding is not None \
            else 0
        entry = self._pending_samples.get(node)
        if entry is None:
            self._pending_samples[node] = (now, ticks, 1)
        else:
            first, total, count = entry
            self._pending_samples[node] = (first, total + ticks,
                                           count + 1)

    # ------------------------------------------------------------------
    # MAC hooks
    # ------------------------------------------------------------------
    def note_wait(self, node: str, name: str, start: int,
                  end: int) -> None:
        """A MAC-level wait (slot wait, ES-window draw, ALOHA jitter)
        ending at the next packet this node queues."""
        self._pending_wait[node] = (name, start, end)

    def mac_phase(self, frame: Frame, name: str, start: int, end: int,
                  status: str = "") -> None:
        """A closed contention phase on an already-queued packet.

        CSMA uses it for every backoff wait and CCA window of a frame
        (repeatable phases, unlike the single-slot ``note_wait``).
        ``mac.cca`` is attributed at the sender's RX coefficient — the
        receive chain dwells for the window — which is exactly the
        ledger's ``cca``-state expression; waits are radio-off and
        carry no energy.
        """
        trace = self._by_frame.get(id(frame))
        if trace is None:
            return
        energy = 0.0
        if name == "mac.cca":
            binding = self._bindings.get(trace.node)
            if binding is not None:
                energy = binding.radio_rx_w * to_seconds(end - start)
        trace.phases.append((name, trace.node, start, end, energy,
                             status))

    def packet_abandoned(self, frame: Frame, now: int) -> None:
        """The MAC dropped the frame without transmitting it (CSMA
        channel-access failure): finalise its trace as ``abandoned``."""
        trace = self._by_frame.pop(id(frame), None)
        if trace is None:
            return
        self._finalize(trace, now, "abandoned")

    def packet_queued(self, frame: Frame, now: int,
                      task_label: str) -> None:
        """The MAC accepted a payload and posted its preparation task."""
        node = frame.src
        trace = _PacketTrace(frame, node, now)
        samples = self._pending_samples.pop(node, None)
        if samples is not None and frame.kind is FrameKind.DATA:
            first, ticks, count = samples
            binding = self._bindings.get(node)
            energy = (binding.mcu_active_w * to_seconds(ticks)
                      if binding is not None else 0.0)
            trace.phases.append(("app.buffer", node, first, now,
                                 energy, f"samples={count}"))
            trace.start = min(trace.start, first)
        wait = self._pending_wait.pop(node, None)
        if wait is not None:
            wait_name, wait_start, wait_end = wait
            trace.phases.append((wait_name, node, wait_start, wait_end,
                                 0.0, ""))
            trace.start = min(trace.start, wait_start)
        trace.open_name = "tinyos.queue"
        trace.open_start = now
        self._by_frame[id(frame)] = trace
        self._awaiting_task.setdefault(task_label, []).append(trace)

    # ------------------------------------------------------------------
    # TinyOS scheduler hook
    # ------------------------------------------------------------------
    def task_started(self, label: str, now: int,
                     duration_ticks: int) -> None:
        """A task was dispatched; if a trace awaits this label, close
        its queue phase and book the preparation task."""
        waiting = self._awaiting_task.get(label)
        if not waiting:
            return
        trace = waiting.pop(0)
        if not waiting:
            del self._awaiting_task[label]
        node = trace.node
        if trace.open_name == "tinyos.queue":
            # Queue-wait energy is the MCU wake transition plus idle —
            # not packet work; attributed 0 by design.
            trace.phases.append(("tinyos.queue", node,
                                 trace.open_start, now, 0.0, ""))
            trace.open_name = None
        binding = self._bindings.get(node)
        energy = (binding.mcu_active_w * to_seconds(duration_ticks)
                  if binding is not None else 0.0)
        trace.phases.append(("mcu.prepare", node, now,
                             now + duration_ticks, energy, ""))

    # ------------------------------------------------------------------
    # Radio / channel hooks (sender side)
    # ------------------------------------------------------------------
    def tx_start(self, frame: Frame, now: int) -> None:
        """ShockBurst event begins (TX settle)."""
        trace = self._by_frame.get(id(frame))
        if trace is None:
            # Control frame or retransmission with no registered queue
            # phase: auto-root at transmit start.
            trace = _PacketTrace(frame, frame.src, now)
            self._by_frame[id(frame)] = trace
            wait = self._pending_wait.pop(frame.src, None)
            if wait is not None:
                wait_name, wait_start, wait_end = wait
                trace.phases.append((wait_name, frame.src, wait_start,
                                     wait_end, 0.0, ""))
                trace.start = min(trace.start, wait_start)
        trace.open_name = "radio.settle"
        trace.open_start = now

    def air_begin(self, frame: Frame, now: int) -> None:
        """First bit on air: close the settle phase, open the airtime."""
        trace = self._by_frame.get(id(frame))
        if trace is None:
            return
        self._close_tx_phase(trace, "radio.settle", now)
        trace.open_name = "phy.air"
        trace.open_start = now

    def air_end(self, frame: Frame, now: int) -> None:
        """Last bit off air: close the airtime, open the TX tail."""
        trace = self._by_frame.get(id(frame))
        if trace is None:
            return
        self._close_tx_phase(trace, "phy.air", now)
        trace.open_name = "radio.tail"
        trace.open_start = now

    def _close_tx_phase(self, trace: _PacketTrace, expected: str,
                        now: int) -> None:
        if trace.open_name != expected:
            return
        binding = self._bindings.get(trace.node)
        ticks = now - trace.open_start
        energy = (binding.radio_tx_w * to_seconds(ticks)
                  if binding is not None else 0.0)
        trace.phases.append((expected, trace.node, trace.open_start,
                             now, energy, ""))
        trace.open_name = None

    def tx_finish(self, outcome: "TxOutcome", now: int) -> None:
        """Radio back in stand-by: close the tail and finalise."""
        frame = outcome.frame
        trace = self._by_frame.pop(id(frame), None)
        if trace is None:
            return
        self._close_tx_phase(trace, "radio.tail", now)
        if frame.is_broadcast:
            status = "broadcast"
        elif frame.dest in outcome.delivered_to:
            status = "delivered"
        else:
            status = "lost"
        self._finalize(trace, now, status)

    # ------------------------------------------------------------------
    # Receiver-side hook
    # ------------------------------------------------------------------
    def rx_outcome(self, frame: Frame, receiver: str, start: int,
                   end: int, status: str) -> None:
        """A frame's airtime ended at one listening receiver."""
        binding = self._bindings.get(receiver)
        energy = (binding.radio_rx_w * to_seconds(end - start)
                  if binding is not None else 0.0)
        trace = self._by_frame.get(id(frame))
        if trace is not None:
            trace.phases.append(("phy.rx", receiver, start, end,
                                 energy, status))
            return
        # Foreign frame (e.g. another BAN with its own tracer): record
        # a standalone rx span so the receiver's energy is attributed.
        store = self.store
        span_id = store.allocate()
        store.add(Span(span_id, None, span_id, "phy.rx", receiver,
                       frame.kind.value, frame.frame_id, start, end,
                       energy, status))

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def _finalize(self, trace: _PacketTrace, end: int,
                  status: str) -> None:
        store = self.store
        frame = trace.frame
        kind = frame.kind.value
        frame_id = frame.frame_id
        root_id = store.allocate()
        total = 0.0
        children: List[Span] = []
        for name, node, start, stop, energy, child_status \
                in trace.phases:
            children.append(Span(store.allocate(), root_id, root_id,
                                 name, node, kind, frame_id, start,
                                 stop, energy, child_status))
            total += energy
        store.add(Span(root_id, None, root_id, ROOT, trace.node, kind,
                       frame_id, trace.start, end, total, status))
        for child in children:
            store.add(child)


# ----------------------------------------------------------------------
# Scenario wiring
# ----------------------------------------------------------------------
def attach_span_tracer(scenario: "BanScenario",
                       tracer: Optional[SpanTracer] = None
                       ) -> SpanTracer:
    """Wire a :class:`SpanTracer` through every layer of a scenario.

    Sets the ``spans`` hook attribute on the apps, schedulers, MACs,
    radios and the channel, binds each station's ledger coefficients,
    and installs the tracer as ``scenario.span_tracer`` so the
    measurement-window reset also drops warm-up spans.  Pass an
    existing ``tracer`` to share one across scenarios (multi-BAN runs
    on a shared channel).
    """
    if tracer is None:
        tracer = SpanTracer()
    for node in scenario.nodes:
        node.attach_spans(tracer)
    scenario.base_station.attach_spans(tracer)
    scenario.channel.spans = tracer
    scenario.span_tracer = tracer
    return tracer


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def spans_to_sink(store: SpanStore, sink: "TraceSink") -> int:
    """Emit every span through the existing trace-sink protocol.

    Each span becomes one record: ``t`` = span start, ``source`` = the
    span's node, ``kind`` = ``"span"``, ``detail`` = the remaining
    fields as compact JSON.  Returns the number of records emitted.
    """
    emitted = 0
    for span in store.spans:
        detail = json.dumps(
            {"span_id": span.span_id, "parent_id": span.parent_id,
             "trace_id": span.trace_id, "name": span.name,
             "kind": span.kind, "frame_id": span.frame_id,
             "end": span.end, "energy_j": span.energy_j,
             "status": span.status}, sort_keys=True,
            separators=(",", ":"))
        sink.emit(span.start, span.node, "span", detail)
        emitted += 1
    return emitted


def write_spans_jsonl(store: SpanStore, path: str) -> int:
    """Write the store as JSON lines via :class:`JsonlTraceSink`."""
    from .sinks import JsonlTraceSink
    with JsonlTraceSink(path) as sink:
        return spans_to_sink(store, sink)


def to_perfetto(store: SpanStore) -> Dict[str, Any]:
    """The store as Chrome/Perfetto ``trace_event`` JSON (dict form).

    Complete events (``ph="X"``), one process per node, one track per
    phase family; timestamps in microseconds (ticks are nanoseconds).
    Load the dumped JSON in https://ui.perfetto.dev for a
    flamegraph-style view; ``args`` carry span id, frame id, energy
    [uJ] and status.
    """
    nodes = sorted({span.node for span in store.spans})
    pids = {node: index + 1 for index, node in enumerate(nodes)}
    events: List[Dict[str, Any]] = []
    for node in nodes:
        events.append({"name": "process_name", "ph": "M",
                       "pid": pids[node], "tid": 0,
                       "args": {"name": node}})
    for span in store.spans:
        events.append({
            "name": span.name, "cat": span.kind, "ph": "X",
            "pid": pids[span.node],
            "tid": _PERFETTO_TIDS.get(span.name, 6),
            "ts": span.start / 1e3,
            "dur": (span.end - span.start) / 1e3,
            "args": {"span_id": span.span_id,
                     "trace_id": span.trace_id,
                     "frame_id": span.frame_id,
                     "energy_uj": span.energy_j * 1e6,
                     "status": span.status},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(store: SpanStore, path: str) -> int:
    """Dump :func:`to_perfetto` to ``path``; returns the event count."""
    payload = to_perfetto(store)
    with open(path, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


# ----------------------------------------------------------------------
# Rollups into the metrics registry
# ----------------------------------------------------------------------
def rollup_spans(store: SpanStore, registry: "MetricsRegistry") -> None:
    """Derive per-node metrics from the span set.

    Per sender node: ``spans/<node>/latency_ms`` (end-to-end data
    packet latency) and ``spans/<node>/packet_energy_uj`` histograms,
    plus ``packets_<status>`` counters.  Per owning node:
    ``spans/<node>/energy_by_phase_uj`` and ``time_by_phase_ms`` state
    timers, and a ``spans_recorded`` counter.
    """
    for span in store.spans:
        registry.counter("spans", span.node, "spans_recorded").inc()
        if span.parent_id is None and span.name == ROOT:
            registry.counter("spans", span.node,
                             f"packets_{span.status}").inc()
            if span.kind == "data":
                registry.histogram(
                    "spans", span.node, "latency_ms",
                    bounds=LATENCY_BUCKETS_MS).observe(
                        span.duration_s * 1e3)
                registry.histogram(
                    "spans", span.node, "packet_energy_uj",
                    bounds=ENERGY_BUCKETS_UJ).observe(
                        span.energy_j * 1e6)
        else:
            timer = registry.state_timer("spans", span.node,
                                         "energy_by_phase_uj")
            timer.add(span.name, span.energy_j * 1e6)
            clock = registry.state_timer("spans", span.node,
                                         "time_by_phase_ms")
            clock.add(span.name, span.duration_s * 1e3)


# ----------------------------------------------------------------------
# Reconciliation and the text report
# ----------------------------------------------------------------------
#: phase names booked against the radio's TX state.
_TX_PHASES = ("radio.settle", "phy.air", "radio.tail")
#: phase names booked against the MCU's active state.
_MCU_PHASES = ("app.buffer", "mcu.prepare")


def _span_energy_by_state(store: SpanStore
                          ) -> Dict[Tuple[str, str], float]:
    """Summed span energies per (node, ledger state)."""
    sums: Dict[Tuple[str, str], float] = {}
    for span in store.spans:
        if span.parent_id is None and span.name != "phy.rx":
            continue  # roots duplicate their children's energy
        if span.name in _TX_PHASES:
            key = (span.node, "tx")
        elif span.name == "phy.rx":
            key = (span.node, "rx")
        elif span.name == "mac.cca":
            key = (span.node, "cca")
        elif span.name in _MCU_PHASES:
            key = (span.node, "active")
        else:
            continue  # wait/queue phases carry no energy
        sums[key] = sums.get(key, 0.0) + span.energy_j
    return sums


def reconcile_spans(store: SpanStore, scenario: "BanScenario"
                    ) -> List[Dict[str, Any]]:
    """Span sums vs ledger totals, per node and attributed state.

    Rows: ``{"node", "state", "ledger", "span_j", "ledger_j",
    "coverage"}``.  TX coverage is ~1.0 (exact up to float addition
    order); RX and MCU-active are partial by design (idle listening,
    beacon windows and non-packet tasks are not packet-attributable).
    """
    sums = _span_energy_by_state(store)
    stations: List[Tuple[str, Any, Any]] = [
        (node.node_id, node.radio.ledger, node.mcu.ledger)
        for node in scenario.nodes]
    bs = scenario.base_station
    stations.append((bs.address, bs.radio.ledger, bs.mcu.ledger))
    rows: List[Dict[str, Any]] = []
    for node_id, radio_ledger, mcu_ledger in stations:
        radio_by_state = radio_ledger.energy_by_state()
        mcu_by_state = mcu_ledger.energy_by_state()
        for state, ledger_name, ledger_j in (
                ("tx", "radio", radio_by_state.get("tx", 0.0)),
                ("rx", "radio", radio_by_state.get("rx", 0.0)),
                ("cca", "radio", radio_by_state.get("cca", 0.0)),
                ("active", "mcu", mcu_by_state.get("active", 0.0))):
            span_j = sums.get((node_id, state), 0.0)
            if span_j == 0.0 and ledger_j == 0.0:
                continue
            rows.append({
                "node": node_id, "state": state, "ledger": ledger_name,
                "span_j": span_j, "ledger_j": ledger_j,
                "coverage": span_j / ledger_j if ledger_j else 0.0,
            })
    return rows


def _percentile(values: List[float], q: float) -> float:
    """Deterministic nearest-rank percentile over sorted ``values``."""
    if not values:
        return 0.0
    rank = max(0, min(len(values) - 1,
                      -(-int(q * len(values)) // 1) - 1))
    return values[rank]


def attribution_report(store: SpanStore,
                       scenario: Optional["BanScenario"] = None
                       ) -> str:
    """The text attribution report ("where did the 31 uJ go").

    Phase table, per-node latency/energy percentiles and — when the
    scenario is given — the span-vs-ledger reconciliation.  Span sums
    use the ledger's exact I*V coefficients, so they match ledger
    totals up to float addition order: the ledger computes
    ``coeff * sum(ticks)``, spans compute ``sum(coeff * ticks_i)``.
    """
    lines: List[str] = []
    roots = store.roots()
    lines.append(f"Causal span attribution: {len(roots)} traces, "
                 f"{len(store)} spans")
    lines.append("")

    # Phase table --------------------------------------------------------
    phase_count: Dict[str, int] = {}
    phase_ms: Dict[str, float] = {}
    phase_uj: Dict[str, float] = {}
    order: List[str] = []
    for span in store.spans:
        if span.parent_id is None and span.name == ROOT:
            continue
        if span.name not in phase_count:
            order.append(span.name)
        phase_count[span.name] = phase_count.get(span.name, 0) + 1
        phase_ms[span.name] = (phase_ms.get(span.name, 0.0)
                               + span.duration_s * 1e3)
        phase_uj[span.name] = (phase_uj.get(span.name, 0.0)
                               + span.energy_j * 1e6)
    total_uj = sum(phase_uj.values())
    lines.append(f"{'phase':<14} {'spans':>7} {'time [ms]':>11} "
                 f"{'energy [uJ]':>12} {'share':>7}")
    for name in sorted(order):
        share = (phase_uj[name] / total_uj * 100.0) if total_uj else 0.0
        lines.append(f"{name:<14} {phase_count[name]:>7} "
                     f"{phase_ms[name]:>11.3f} {phase_uj[name]:>12.3f} "
                     f"{share:>6.1f}%")
    lines.append(f"{'total':<14} "
                 f"{sum(phase_count.values()):>7} "
                 f"{sum(phase_ms.values()):>11.3f} {total_uj:>12.3f} "
                 f"{'100.0%' if total_uj else '-':>7}")
    lines.append("")

    # Per-node latency / packet energy ----------------------------------
    by_node: Dict[str, List[Span]] = {}
    for root in roots:
        if root.kind == "data":
            by_node.setdefault(root.node, []).append(root)
    if by_node:
        lines.append("end-to-end data-packet latency "
                     "(first sample -> TX outcome) and per-packet "
                     "energy:")
        for node in sorted(by_node):
            packets = by_node[node]
            lat = sorted(p.duration_s * 1e3 for p in packets)
            uj = sorted(p.energy_j * 1e6 for p in packets)
            delivered = sum(1 for p in packets
                            if p.status == "delivered")
            lines.append(
                f"  {node}: n={len(packets)} delivered={delivered} "
                f"p50={_percentile(lat, 0.50):.3f} ms "
                f"p99={_percentile(lat, 0.99):.3f} ms "
                f"max={lat[-1]:.3f} ms | "
                f"mean={sum(uj) / len(uj):.3f} uJ "
                f"p99={_percentile(uj, 0.99):.3f} uJ")
        lines.append("")

    # Reconciliation -----------------------------------------------------
    if scenario is not None:
        lines.append("reconciliation vs power-state ledgers "
                     "(span sums use the ledgers' exact I*V "
                     "coefficients; they equal ledger totals up to "
                     "float addition order -- the ledger multiplies "
                     "the coefficient by summed ticks, spans multiply "
                     "per phase and sum):")
        lines.append(f"  {'node':<16} {'state':<7} {'spans [uJ]':>12} "
                     f"{'ledger [uJ]':>12} {'coverage':>9}")
        for row in reconcile_spans(store, scenario):
            lines.append(
                f"  {row['node']:<16} {row['state']:<7} "
                f"{row['span_j'] * 1e6:>12.4f} "
                f"{row['ledger_j'] * 1e6:>12.4f} "
                f"{row['coverage'] * 100.0:>8.2f}%")
        lines.append("")
        lines.append("  tx coverage is exact (settle/air/tail "
                     "partition the ledger's TX ticks); rx/active are "
                     "partial by design (idle listening, beacon "
                     "windows and non-packet tasks are not "
                     "packet-attributable).")
    return "\n".join(lines)


__all__ = ["Span", "SpanStore", "SpanTracer", "SpanRecord",
           "attach_span_tracer", "spans_to_sink", "write_spans_jsonl",
           "to_perfetto", "write_perfetto", "rollup_spans",
           "reconcile_spans", "attribution_report", "ROOT",
           "LATENCY_BUCKETS_MS", "ENERGY_BUCKETS_UJ"]
