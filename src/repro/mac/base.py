"""Shared TDMA machinery: node-side and base-station-side state machines.

Both TDMA variants (Figures 2 and 3) share their whole life cycle; they
differ only in slot geometry and in how a slot request is transmitted.
The common machinery lives here; :mod:`repro.mac.tdma_static` and
:mod:`repro.mac.tdma_dynamic` subclass it with the variant-specific
pieces.

Node life cycle
---------------

``ACQUIRING``
    The node does not know the beacon schedule: receiver on
    continuously until a beacon is captured.  (This is the expensive
    phase the guard windows exist to avoid.)
``JOINING``
    Synchronised but slotless: the node sends a slot request (SSR) per
    the variant's rules and watches beacons for its grant, retrying on
    collision/loss.
``SYNCED``
    Owns a slot: per cycle, wake the radio a guard *lead* before the
    expected beacon, receive it, post the beacon-processing task,
    transmit the application payload (if any) in the owned slot, sleep.

Missing ``max_missed_beacons`` consecutive beacons demotes the node to
``ACQUIRING`` (its clock can no longer be trusted).

Timing of energy-relevant events exactly reproduces the calibrated
model: the realised beacon window is ``lead + beacon airtime + RX
tail``; a data transmission is one ShockBurst event; the MCU pays
``beacon_processing`` per received beacon and ``packet_preparation``
per transmitted data packet.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple

from ..core.calibration import ModelCalibration
from ..hw.frames import Frame, FrameKind
from ..hw.radio import Nrf2401, TxOutcome
from ..sim.events import EventEntry, cancel_event
from ..sim.kernel import Simulator
from ..sim.simtime import TICKS_PER_SECOND, microseconds
from ..sim.trace import TraceRecorder
from ..tinyos.components import Component
from ..tinyos.scheduler import TaskScheduler
from .messages import BeaconPayload, SlotRequestPayload, make_beacon, \
    make_data, make_slot_request
from .recovery import RecoveryConfig
from .slots import SlotSchedule
from .sync import SyncPolicy

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..obs.spans import SpanTracer

#: A payload the application hands to the MAC: (on-air bytes, content).
AppPayload = Tuple[int, object]


class NodeState(enum.Enum):
    """Node-side MAC state."""

    ACQUIRING = "acquiring"
    JOINING = "joining"
    SYNCED = "synced"


@dataclass
class MacCounters:
    """Protocol-level event counters (per node / base station).

    The recovery-path counters (``windows_widened`` onward) stay zero
    unless a :class:`~repro.mac.recovery.RecoveryConfig` is installed
    or the protocol hits the corresponding degraded path — they make
    degradation measurable rather than silent.
    """

    beacons_sent: int = 0
    beacons_received: int = 0
    beacons_missed: int = 0
    data_sent: int = 0
    data_received: int = 0
    slot_requests_sent: int = 0
    slot_requests_received: int = 0
    grants_observed: int = 0
    resyncs: int = 0
    software_discards: int = 0
    windows_widened: int = 0
    scan_pauses: int = 0
    ssr_backoffs: int = 0
    slot_revocations: int = 0
    recoveries: int = 0
    sync_anomalies: int = 0
    #: Contention-MAC counters (ALOHA / CSMA; zero under TDMA).
    oversize_skipped: int = 0
    cca_busy: int = 0
    backoff_attempts: int = 0
    tx_abandoned: int = 0

    def as_dict(self) -> dict:
        """Field-name -> count mapping (the metrics/export view)."""
        return {field: getattr(self, field)
                for field in self.__dataclass_fields__}

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull every counter into ``registry`` under ``mac/<node>/``."""
        for name, value in self.as_dict().items():
            registry.counter("mac", node, name).inc(value)


class NodeMac(Component):
    """Variant-independent node-side TDMA MAC.

    Args:
        sim: simulation kernel.
        radio: this node's transceiver.
        scheduler: this node's TinyOS task scheduler (MCU cost sink).
        calibration: model constants.
        sync_policy: guard-lead policy.
        base_station: the base station's address.
        preassigned_slot: skip the join protocol and start in SYNCED
            owning this slot (the paper's steady-state measurements).
            Requires ``first_beacon_ticks``.
        first_beacon_ticks: absolute time of the first beacon, for
            preassigned starts.
        clock_skew_ppm: this node's crystal error; its beacon-time
            estimates drift accordingly (0 = ideal crystal).
        max_missed_beacons: consecutive misses before falling back to
            acquisition.
        recovery: opt-in degradation/recovery behaviour (guard-window
            widening, bounded reacquisition scan, SSR backoff).  None
            (the default) keeps the pre-recovery protocol bit-for-bit.
    """

    #: Variant gate for the exponential slot-re-request backoff: the
    #: dynamic protocol's ES window benefits from it; the static
    #: protocol's slot-randomised SSR keeps the paper's behaviour.
    _supports_ssr_backoff = False

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 sync_policy: SyncPolicy,
                 base_station: str,
                 preassigned_slot: Optional[int] = None,
                 first_beacon_ticks: Optional[int] = None,
                 clock_skew_ppm: float = 0.0,
                 max_missed_beacons: int = 3,
                 recovery: Optional[RecoveryConfig] = None,
                 name: Optional[str] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name or f"{radio.address}.mac", trace)
        self._radio = radio
        self._scheduler = scheduler
        self._cal = calibration
        self._sync = sync_policy
        self._bs = base_station
        self._preassigned_slot = preassigned_slot
        self._first_beacon = first_beacon_ticks
        self._skew_ppm = clock_skew_ppm
        self._max_missed = max_missed_beacons
        self._recovery = recovery

        self._state = NodeState.ACQUIRING
        self._state_since = sim.now
        self._state_ticks = {state: 0 for state in NodeState}
        self._ever_synced = False
        self.counters = MacCounters()
        #: Application hook: called at slot time; returns (bytes, content)
        #: or None when there is nothing to send this cycle.
        self.payload_provider: Optional[Callable[[], Optional[AppPayload]]] \
            = None
        #: Application hook: called (with the BeaconPayload) after each
        #: received beacon, from task context.
        self.on_beacon: Optional[Callable[[BeaconPayload], None]] = None
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None

        self._slot: Optional[int] = preassigned_slot
        self._cycle_ticks: Optional[int] = None
        self._last_sync: Optional[int] = None
        self._missed = 0
        self._beacon_seen_this_window = False
        self._window_serial = 0
        self._join_pending = False
        self._stop_pending = False
        self._next_window_open: Optional[int] = None
        self._next_slot_time: Optional[int] = None
        self._next_expected_beacon: Optional[int] = None
        self._scan_serial = 0
        self._ssr_attempts = 0
        self._ssr_skip_remaining = 0

        # Event labels are scheduled once per cycle per node; precompute
        # them so the hot paths never rebuild the same f-string.
        name = self.name
        self._label_rxon = f"{name}.rxon"
        self._label_beacon_timeout = f"{name}.beacon_timeout"
        self._label_slot = f"{name}.slot"
        self._label_pkt_prep = f"{name}.pkt_prep"
        self._label_beacon_proc = f"{name}.beacon_proc"
        self._label_foreign_beacon = f"{name}.foreign_beacon"
        self._label_sw_discard = f"{name}.sw_discard"
        self._label_unexpected_rx = f"{name}.unexpected_rx"
        self._label_ssr = f"{name}.ssr"

        radio.on_frame = self._on_frame

    # ------------------------------------------------------------------
    # State (with residency accounting for the obs state timer)
    # ------------------------------------------------------------------
    @property
    def state(self) -> NodeState:
        """Current node-side MAC state."""
        return self._state

    @state.setter
    def state(self, new: NodeState) -> None:
        if new is self._state:
            return
        now = self._sim.now
        self._state_ticks[self._state] += now - self._state_since
        self._state_since = now
        if new is NodeState.SYNCED:
            if self._ever_synced:
                self.counters.recoveries += 1
            self._ever_synced = True
        self._state = new

    # ------------------------------------------------------------------
    # Variant-specific hooks
    # ------------------------------------------------------------------
    def _initial_cycle_ticks(self) -> int:
        """Cycle length before any beacon is seen (static knows it from
        configuration; dynamic must hear a beacon first)."""
        raise NotImplementedError

    def _cycle_from_beacon(self, payload: BeaconPayload) -> int:
        """Cycle length in effect for the cycle the beacon opens."""
        raise NotImplementedError

    def _slot_offset(self, cycle_ticks: int, slot: int) -> int:
        """Start of data slot ``slot`` relative to the beacon start."""
        raise NotImplementedError

    def _schedule_slot_request(self, beacon_start: int,
                               payload: BeaconPayload) -> None:
        """Arrange this cycle's SSR transmission (variant-specific)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._stop_pending = False
        self._radio.power_up()
        if self._preassigned_slot is not None:
            if self._first_beacon is None:
                raise ValueError(
                    f"{self.name}: preassigned slot needs first_beacon_ticks")
            if self._first_beacon <= self._sim.now:
                # Warm reboot after a crash: the configured first
                # beacon is long gone, so reacquire the schedule (the
                # base station still lists the preassigned slot, so the
                # next beacon re-grants it immediately).
                self._enter_acquisition()
                return
            self.state = NodeState.SYNCED
            self._cycle_ticks = self._initial_cycle_ticks()
            self._last_sync = self._first_beacon - self._cycle_ticks
            self._arm_beacon_window(self._first_beacon)
        else:
            self._enter_acquisition()

    def on_stop(self) -> None:
        # Stopping the MAC releases the radio: a node left in stand-by
        # after its stack stops keeps accruing stand-by current against
        # a node that is no longer running.  Mid-ShockBurst the chip
        # cannot be switched off; defer to the TX-completion callback.
        if self._radio.is_receiving:
            self._radio.stop_rx()
        if self._radio.is_transmitting:
            self._stop_pending = True
            return
        self._radio.power_down()

    @property
    def slot(self) -> Optional[int]:
        """Currently owned data slot (None before the grant)."""
        return self._slot

    @property
    def sync_policy(self) -> SyncPolicy:
        """The guard-lead policy in use."""
        return self._sync

    def next_wake_hint(self) -> Optional[int]:
        """The MAC's next scheduled MCU-relevant instant (window open
        or slot transmission), for the deep-sleep power policy."""
        now = self._sim.now
        candidates = [t for t in (self._next_window_open,
                                  self._next_slot_time)
                      if t is not None and t > now]
        return min(candidates) if candidates else None

    @property
    def is_synced(self) -> bool:
        """Whether the node owns a slot and tracks the beacon schedule."""
        return self.state is NodeState.SYNCED

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull this MAC's protocol counters and sync figures.

        Counters cover the per-cause events the WBAN MAC surveys
        compare on (missed beacons, slot requests, resyncs, software
        discards); gauges expose the sync state, owned slot and the
        node's crystal skew (its systematic beacon-estimate drift
        source).  Read-only: call once per collected run.
        """
        self.counters.observe_metrics(registry, node)
        registry.gauge("mac", node, "synced").set(
            1.0 if self.state is NodeState.SYNCED else 0.0)
        registry.gauge("mac", node, "slot").set(
            -1.0 if self._slot is None else float(self._slot))
        registry.gauge("mac", node,
                       "clock_skew_ppm").set(self._skew_ppm)
        timer = registry.state_timer("mac", node, "state_s")
        now = self._sim.now
        for state in NodeState:
            ticks = self._state_ticks[state]
            if state is self._state:
                ticks += now - self._state_since
            if ticks:
                timer.add(state.value, ticks / TICKS_PER_SECOND)

    @property
    def cycle_ticks(self) -> Optional[int]:
        """Last known TDMA cycle length."""
        return self._cycle_ticks

    def apply_clock_step(self, offset_ticks: int) -> None:
        """Step this node's local clock by ``offset_ticks``.

        Models a timer glitch (fault injection): the node's idea of
        when the next beacon is due shifts by the step, so it wakes
        early or late and — when the step exceeds the guard lead —
        misses beacons until the normal resync machinery recovers.
        While ACQUIRING the receiver is already on continuously, so a
        step is invisible.  Backward steps are clamped so the beacon
        expectation never precedes the last sync point (the
        ``sync_anomalies`` trap in :meth:`_arm_beacon_window` stays a
        genuine invariant).
        """
        if offset_ticks == 0 or not self.started:
            return
        if (self.state is NodeState.ACQUIRING
                or self._next_expected_beacon is None):
            return
        floor = self._sim.now + 1
        if self._last_sync is not None:
            floor = max(floor, self._last_sync + 1)
        shifted = max(self._next_expected_beacon + offset_ticks, floor)
        self._window_serial += 1  # supersede the old miss timeout
        self._arm_beacon_window(shifted)

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def _enter_acquisition(self, scan: bool = False) -> None:
        if self.state is not NodeState.ACQUIRING:
            self.counters.resyncs += 1
        self.state = NodeState.ACQUIRING
        self._slot = None if self._preassigned_slot is None else self._slot
        self._missed = 0
        self._ssr_attempts = 0
        self._ssr_skip_remaining = 0
        self._radio.start_rx()
        # Post-demotion reacquisition may duty-cycle the receiver
        # (bounded scan); the initial cold acquisition never does — the
        # paper's join phase is continuous listening.
        self._scan_serial += 1
        if (scan and self._recovery is not None
                and self._recovery.scan_off_cycles > 0
                and self._cycle_ticks is not None):
            self._arm_scan_pause(self._scan_serial)

    def _arm_scan_pause(self, serial: int) -> None:
        assert self._recovery is not None and self._cycle_ticks is not None
        on_ticks = round(self._recovery.scan_on_cycles * self._cycle_ticks)
        self._sim.at(self._sim.now + max(on_ticks, 1),
                     lambda: self._scan_pause(serial),
                     label=f"{self.name}.scan_pause")

    def _scan_pause(self, serial: int) -> None:
        if not self.started or serial != self._scan_serial:
            return
        if self.state is not NodeState.ACQUIRING:
            return  # a beacon ended the scan
        assert self._recovery is not None and self._cycle_ticks is not None
        self._radio.stop_rx()
        self.counters.scan_pauses += 1
        off_ticks = round(self._recovery.scan_off_cycles * self._cycle_ticks)
        self._sim.at(self._sim.now + max(off_ticks, 1),
                     lambda: self._scan_resume(serial),
                     label=f"{self.name}.scan_resume")

    def _scan_resume(self, serial: int) -> None:
        if not self.started or serial != self._scan_serial:
            return
        if self.state is not NodeState.ACQUIRING:
            return
        self._radio.start_rx()
        self._arm_scan_pause(serial)

    # ------------------------------------------------------------------
    # Beacon window management (SYNCED / JOINING)
    # ------------------------------------------------------------------
    def _estimate_with_skew(self, true_interval: int) -> int:
        return round(true_interval * (1.0 + self._skew_ppm * 1e-6))

    def _arm_beacon_window(self, expected_beacon: int) -> None:
        """Schedule RX-on ``lead`` before ``expected_beacon`` and the
        miss-timeout after it."""
        assert self._cycle_ticks is not None
        since_sync = expected_beacon - (self._last_sync
                                        if self._last_sync is not None
                                        else expected_beacon)
        if since_sync < 0:
            # Beacon bookkeeping went backwards.  No protocol path
            # produces this (expectations only ever advance from the
            # last sync point); it would mean a widening lead computed
            # from garbage, so trap it loudly instead of clamping in
            # silence.
            self.counters.sync_anomalies += 1
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, self.name, "sync_anomaly",
                    f"since_sync={since_sync} "
                    f"expected={expected_beacon} last={self._last_sync}")
            since_sync = 0
        lead = self._sync.lead_ticks(self._cycle_ticks, since_sync)
        if self._recovery is not None and self._missed > 0:
            widened = self._recovery.widened_lead(lead, self._missed)
            if widened != lead:
                lead = widened
                self.counters.windows_widened += 1
        self._next_expected_beacon = expected_beacon
        wake = max(expected_beacon - lead, self._sim.now)
        self._beacon_seen_this_window = False
        self._window_serial += 1
        serial = self._window_serial
        self._next_window_open = wake
        self._sim.at(wake, lambda: self._open_window(serial),
                     label=self._label_rxon)
        # Keep listening one lead past the expected time before declaring
        # a miss (symmetric guard), plus a beacon airtime.
        airtime = microseconds(200)
        timeout = expected_beacon + lead + airtime
        self._sim.at(timeout,
                     lambda: self._beacon_timeout(expected_beacon, serial),
                     label=self._label_beacon_timeout)

    def _open_window(self, serial: int) -> None:
        if not self.started:
            return  # stack stopped: stay silent
        if serial != self._window_serial:
            return  # superseded (e.g. an injected clock step re-armed)
        if self.state is NodeState.ACQUIRING:
            return  # already listening continuously
        if not self._beacon_seen_this_window and not self._radio.is_receiving:
            self._radio.start_rx()

    def _beacon_timeout(self, expected_beacon: int, serial: int) -> None:
        if not self.started:
            return
        if serial != self._window_serial:
            return  # superseded by a newer window
        if self._beacon_seen_this_window:
            return
        if self.state is NodeState.ACQUIRING:
            return
        self.counters.beacons_missed += 1
        self._missed += 1
        self._radio.stop_rx()
        if self._missed >= self._max_missed:
            self._enter_acquisition(scan=True)
            return
        # Free-run: trust the local clock for another cycle.
        assert self._cycle_ticks is not None
        next_expected = expected_beacon \
            + self._estimate_with_skew(self._cycle_ticks)
        if self.state is NodeState.SYNCED and self._slot is not None:
            self._schedule_data_tx(expected_beacon)
        self._arm_beacon_window(next_expected)

    # ------------------------------------------------------------------
    # Frame reception (radio interrupt context)
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        if not self.started:
            return  # stack stopped: the radio should be off anyway
        if frame.kind is FrameKind.BEACON:
            if frame.src != self._bs:
                # Another BAN's base station (co-channel interference):
                # synchronising to it would wreck the schedule.  The
                # software stack identifies and discards it.
                self.counters.software_discards += 1
                self._scheduler.post_cost_only(
                    self._cal.mcu_costs.packet_reception,
                    label=self._label_foreign_beacon)
                return
            self._handle_beacon(frame)
            return
        if not frame.addressed_to(self._radio.address):
            # Only reachable with the hardware address filter disabled:
            # the software stack pays a reception cost and discards.
            self.counters.software_discards += 1
            self._scheduler.post_cost_only(
                self._cal.mcu_costs.packet_reception,
                label=self._label_sw_discard)
            return
        # Nodes receive no unicast traffic in these protocols; anything
        # else is counted and dropped in task context.
        self.counters.software_discards += 1
        self._scheduler.post_cost_only(
            self._cal.mcu_costs.packet_reception,
            label=self._label_unexpected_rx)

    def _handle_beacon(self, frame: Frame) -> None:
        payload = frame.payload
        if not isinstance(payload, BeaconPayload):
            raise TypeError(
                f"{self.name}: beacon frame without BeaconPayload")
        beacon_start = self._sim.now - self._radio.airtime_ticks(frame)
        self.counters.beacons_received += 1
        self._beacon_seen_this_window = True
        self._missed = 0
        self._last_sync = beacon_start
        self._radio.stop_rx()
        self._cycle_ticks = self._cycle_from_beacon(payload)

        # MCU cost of processing the beacon (sync bookkeeping, schedule
        # update, timer re-arm).
        self._scheduler.post_cost_only(
            self._cal.mcu_costs.beacon_processing,
            label=self._label_beacon_proc)

        if self.state is NodeState.ACQUIRING:
            self.state = NodeState.JOINING

        if self.state is NodeState.SYNCED:
            listed = payload.slot_of(self._radio.address)
            if listed is None:
                # The schedule no longer carries this node (its slot
                # was reclaimed while it free-ran, or the base station
                # rebooted).  Transmitting in a slot the base station
                # may hand to someone else would double-allocate it, so
                # surrender the slot and re-join.
                self.counters.slot_revocations += 1
                self._slot = None
                self.state = NodeState.JOINING
            elif listed != self._slot:
                # The base station moved us: its schedule is
                # authoritative.
                self._slot = listed

        if self.state is NodeState.JOINING:
            granted = payload.slot_of(self._radio.address)
            if granted is not None:
                self._slot = granted
                self.state = NodeState.SYNCED
                self.counters.grants_observed += 1
                self._join_pending = False
                self._ssr_attempts = 0
                self._ssr_skip_remaining = 0
            elif self._ssr_skip_remaining > 0:
                # Exponential backoff: sit this cycle's ES window out.
                self._ssr_skip_remaining -= 1
                self.counters.ssr_backoffs += 1
            else:
                self._schedule_slot_request(beacon_start, payload)

        if self.state is NodeState.SYNCED and self._slot is not None:
            self._schedule_data_tx(beacon_start)

        next_expected = beacon_start \
            + self._estimate_with_skew(self._cycle_ticks)
        self._arm_beacon_window(next_expected)

        if self.on_beacon is not None:
            self.on_beacon(payload)

    # ------------------------------------------------------------------
    # Data transmission
    # ------------------------------------------------------------------
    def _schedule_data_tx(self, beacon_start: int) -> None:
        assert self._cycle_ticks is not None and self._slot is not None
        offset = self._slot_offset(self._cycle_ticks, self._slot)
        tx_time = beacon_start + offset
        if tx_time <= self._sim.now:
            return  # the slot is already past (late join mid-cycle)
        self._next_slot_time = tx_time
        if self.spans is not None:
            self.spans.note_wait(self._radio.address, "mac.slot_wait",
                                 self._sim.now, tx_time)
        self._sim.at(tx_time, self._slot_fired, label=self._label_slot)

    def _slot_fired(self) -> None:
        if not self.started:
            return
        if self.state is not NodeState.SYNCED or self._slot is None:
            return  # demoted or rebooted between scheduling and firing
        if self.payload_provider is None:
            return
        payload = self.payload_provider()
        if payload is None:
            return  # nothing to send: radio stays off (Rpeak idle cycles)
        payload_bytes, content = payload
        frame = make_data(self._radio.address, self._bs,
                          payload_bytes, content)
        if self.spans is not None:
            self.spans.packet_queued(frame, self._sim.now,
                                     self._label_pkt_prep)
        # The MCU prepares the packet and clocks it into the radio FIFO;
        # the ShockBurst event itself starts when the task body runs.
        self._scheduler.post(
            lambda: self._send_data(frame),
            self._cal.mcu_costs.packet_preparation,
            label=self._label_pkt_prep)

    def _send_data(self, frame: Frame) -> None:
        # The prep task may drain after a stop (crash faults power the
        # radio down); sending then would be a RadioError.
        if not self.started:
            return
        self._radio.send(frame, self._data_tx_done)

    def _data_tx_done(self, outcome: TxOutcome) -> None:
        self.counters.data_sent += 1
        self._complete_deferred_stop()

    def _complete_deferred_stop(self) -> None:
        """Finish an ``on_stop`` that found the radio mid-ShockBurst."""
        if self._stop_pending and not self.started:
            self._stop_pending = False
            self._radio.power_down()

    # ------------------------------------------------------------------
    # Slot requests (helpers for the variants)
    # ------------------------------------------------------------------
    def _send_slot_request(self, wanted_slot: Optional[int] = None) -> None:
        if not self.started:
            return  # stack stopped (crash) after the request was armed
        if self.state is not NodeState.JOINING:
            return  # a grant arrived in the meantime
        frame = make_slot_request(self._radio.address, self._bs,
                                  wanted_slot=wanted_slot)
        self.counters.slot_requests_sent += 1
        self._join_pending = True
        self._ssr_attempts += 1
        if self._recovery is not None and self._supports_ssr_backoff:
            self._ssr_skip_remaining = \
                self._recovery.ssr_skip_cycles(self._ssr_attempts)
        if self.spans is not None:
            self.spans.packet_queued(frame, self._sim.now,
                                     self._label_ssr)
        self._scheduler.post(
            lambda: self._send_ssr(frame),
            self._cal.mcu_costs.packet_preparation,
            label=self._label_ssr)

    def _send_ssr(self, frame: Frame) -> None:
        if not self.started:
            return  # stack stopped between the prep post and the drain
        self._radio.send(frame, self._ssr_tx_done)

    def _ssr_tx_done(self, outcome: TxOutcome) -> None:
        # A stop that landed mid-SSR deferred its power_down here.
        self._complete_deferred_stop()


class BaseStationMac(Component):
    """Variant-independent base-station TDMA MAC.

    The base station regulates the protocol (Section 3.2.2): it
    broadcasts the beacon at every cycle start and listens the rest of
    the time, assigning slots as requests arrive and delivering data
    frames upward.
    """

    def __init__(self, sim: Simulator, radio: Nrf2401,
                 scheduler: TaskScheduler,
                 calibration: ModelCalibration,
                 schedule: SlotSchedule,
                 first_beacon_ticks: int,
                 name: Optional[str] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        super().__init__(sim, name or f"{radio.address}.mac", trace)
        self._radio = radio
        self._scheduler = scheduler
        self._cal = calibration
        self.schedule = schedule
        self._first_beacon = first_beacon_ticks
        self.counters = MacCounters()
        #: Upward hook: called with each received data Frame.
        self.data_sink: Optional[Callable[[Frame], None]] = None
        #: Optional causal-span tracer (:mod:`repro.obs.spans`).
        self.spans: Optional["SpanTracer"] = None
        #: Absolute time of the next beacon (kept current for scenario
        #: alignment and diagnostics).
        self.next_beacon_ticks = first_beacon_ticks
        self._sequence = 0
        self._beacon_event: Optional[EventEntry] = None
        self._stop_pending = False
        # Event/task labels are stable per instance; precompute them so
        # the per-cycle and per-frame paths avoid f-string formatting.
        name = self.name
        self._label_beacon = f"{name}.beacon"
        self._label_beacon_prep = f"{name}.beacon_prep"
        self._label_ssr_rx = f"{name}.ssr_rx"
        self._label_data_rx = f"{name}.data_rx"
        self._label_sw_discard = f"{name}.sw_discard"
        radio.on_frame = self._on_frame

    # ------------------------------------------------------------------
    # Variant-specific hooks
    # ------------------------------------------------------------------
    def _current_cycle_ticks(self) -> int:
        """Length of the cycle starting at the beacon about to be sent."""
        raise NotImplementedError

    def current_cycle_ticks(self) -> int:
        """Public view of the cycle length currently in effect."""
        return self._current_cycle_ticks()

    def observe_metrics(self, registry: "MetricsRegistry",
                        node: str) -> None:
        """Pull the base station's counters and schedule occupancy.

        Slot occupancy (assigned / capacity) is the utilisation figure
        TDMA evaluations report alongside the per-cause counters.
        Read-only: call once per collected run.
        """
        self.counters.observe_metrics(registry, node)
        schedule = self.schedule
        registry.gauge("mac", node, "slots_assigned").set(
            float(schedule.assigned_count))
        registry.gauge("mac", node, "num_slots").set(
            float(schedule.num_slots))
        if schedule.num_slots:
            registry.gauge("mac", node, "slot_occupancy").set(
                schedule.assigned_count / schedule.num_slots)

    def _handle_slot_request(self, payload: SlotRequestPayload) -> None:
        """Variant-specific assignment policy."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._stop_pending = False
        self._radio.power_up()
        self._beacon_event = self._sim.at(
            self._first_beacon, self._beacon_time,
            label=self._label_beacon)

    def on_stop(self) -> None:
        # Cancel the beacon cadence (it would otherwise keep the
        # station broadcasting forever) and release the radio; if a
        # beacon ShockBurst is in flight the power-down is deferred to
        # its completion callback.
        if self._beacon_event is not None:
            cancel_event(self._beacon_event)
            self._beacon_event = None
        if self._radio.is_receiving:
            self._radio.stop_rx()
        if self._radio.is_transmitting:
            self._stop_pending = True
            return
        self._radio.power_down()

    # ------------------------------------------------------------------
    # Beacon cadence
    # ------------------------------------------------------------------
    def _before_beacon(self) -> None:
        """Variant hook: housekeeping at each beacon instant (e.g.
        expiring inactive slot owners)."""

    def _frame_activity(self, frame: Frame) -> None:
        """Variant hook: a frame from ``frame.src`` proves it is alive."""

    def _beacon_time(self) -> None:
        self._before_beacon()
        cycle = self._current_cycle_ticks()
        self._sequence += 1
        payload = BeaconPayload(cycle_ticks=cycle,
                                slot_map=self.schedule.as_map(),
                                num_slots=self.schedule.num_slots,
                                sequence=self._sequence)
        frame = make_beacon(self._radio.address, payload)
        if self._radio.is_receiving:
            self._radio.stop_rx()
        if self.spans is not None:
            self.spans.packet_queued(frame, self._sim.now,
                                     self._label_beacon_prep)
        self._scheduler.post(
            lambda: self._send_beacon(frame),
            self._cal.mcu_costs.packet_preparation,
            label=self._label_beacon_prep)
        self.next_beacon_ticks = self._sim.now + cycle
        self._beacon_event = self._sim.at(
            self.next_beacon_ticks, self._beacon_time,
            label=self._label_beacon)

    def _send_beacon(self, frame: Frame) -> None:
        if not self.started:
            return  # stopped between the prep post and the task drain
        self._radio.send(frame, self._beacon_sent)

    def _beacon_sent(self, outcome: TxOutcome) -> None:
        self.counters.beacons_sent += 1
        if self._stop_pending and not self.started:
            # on_stop landed mid-beacon: complete the deferred release
            # instead of re-opening the receive chain.
            self._stop_pending = False
            self._radio.power_down()
            return
        # Listen for the rest of the cycle (R region of Figure 2).
        self._radio.start_rx()

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame) -> None:
        self._frame_activity(frame)
        if frame.kind is FrameKind.SLOT_REQUEST:
            payload = frame.payload
            if not isinstance(payload, SlotRequestPayload):
                raise TypeError(f"{self.name}: SSR without payload")
            self.counters.slot_requests_received += 1
            self._scheduler.post_cost_only(
                self._cal.mcu_costs.packet_reception,
                label=self._label_ssr_rx)
            self._handle_slot_request(payload)
            return
        if frame.kind is FrameKind.DATA:
            self.counters.data_received += 1
            self._scheduler.post_cost_only(
                self._cal.mcu_costs.packet_reception,
                label=self._label_data_rx)
            if self.data_sink is not None:
                self.data_sink(frame)
            return
        # Beacons from other base stations etc.: discard in software.
        self.counters.software_discards += 1
        self._scheduler.post_cost_only(
            self._cal.mcu_costs.packet_reception,
            label=self._label_sw_discard)


__all__ = ["AppPayload", "NodeState", "MacCounters",
           "NodeMac", "BaseStationMac"]
