"""Beacon-synchronisation (guard) policies.

A TDMA node must have its receiver on when the beacon arrives; since its
crystal drifts relative to the base station's, it wakes a *lead* before
the expected beacon start.  How that lead is chosen dominates the radio
energy (the beacon-listen window is the single largest radio cost in the
paper's tables), so it is a first-class, swappable policy:

* :class:`FixedLead` — constant lead; reproduces the paper's **static**
  TDMA tables, whose per-cycle radio energy is cycle-independent.
* :class:`CycleProportionalLead` — lead = base + coeff * cycle;
  reproduces the paper's **dynamic** TDMA tables, whose window grows
  with the cycle (a worst-case drift guard re-armed every beacon).
* :class:`DriftTrackingLead` — the physical model: the node knows its
  own worst-case crystal tolerance (ppm) and guards by exactly
  2 * ppm * time-since-last-sync plus a fixed margin.  Used by the
  sync-policy ablation (A1) to ask what the paper's platform *could*
  save with tighter synchronisation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.simtime import microseconds, seconds

if TYPE_CHECKING:
    from ..core.calibration import ModelCalibration


class SyncPolicy:
    """Interface: how long before the expected beacon to open the RX window."""

    def lead_ticks(self, cycle_ticks: int, since_sync_ticks: int) -> int:
        """Wake-up lead in ticks.

        Args:
            cycle_ticks: the current TDMA cycle length.
            since_sync_ticks: time since the last successful beacon
                reception (== cycle_ticks in steady state; grows across
                missed beacons).
        """
        raise NotImplementedError


class FixedLead(SyncPolicy):
    """Constant lead, whatever the cycle length."""

    def __init__(self, lead_ticks: int) -> None:
        if lead_ticks < 0:
            raise ValueError(f"lead must be >= 0: {lead_ticks}")
        self._lead = lead_ticks

    def lead_ticks(self, cycle_ticks: int, since_sync_ticks: int) -> int:
        return self._lead


class CycleProportionalLead(SyncPolicy):
    """lead = base + coeff * cycle (the paper's dynamic-TDMA behaviour)."""

    def __init__(self, base_ticks: int, coeff: float) -> None:
        if base_ticks < 0:
            raise ValueError(f"base must be >= 0: {base_ticks}")
        if coeff < 0:
            raise ValueError(f"coeff must be >= 0: {coeff}")
        self._base = base_ticks
        self._coeff = coeff

    def lead_ticks(self, cycle_ticks: int, since_sync_ticks: int) -> int:
        return self._base + round(self._coeff * cycle_ticks)


class DriftTrackingLead(SyncPolicy):
    """Physically motivated guard: margin + 2 * tolerance * elapsed.

    With both the node's and the base station's crystals within
    ``tolerance_ppm`` of nominal, their clocks diverge at most
    ``2 * tolerance_ppm * 1e-6`` seconds per second; guarding by that
    (plus a fixed turn-on margin) is the tightest always-safe window.
    A typical watch crystal is 20-50 ppm, *far* tighter than the
    paper's fitted windows — quantifying that gap is ablation A1.
    """

    def __init__(self, tolerance_ppm: float = 50.0,
                 margin_ticks: int = microseconds(250)) -> None:
        if tolerance_ppm < 0:
            raise ValueError(f"tolerance must be >= 0: {tolerance_ppm}")
        if margin_ticks < 0:
            raise ValueError(f"margin must be >= 0: {margin_ticks}")
        self.tolerance_ppm = tolerance_ppm
        self._margin = margin_ticks

    def lead_ticks(self, cycle_ticks: int, since_sync_ticks: int) -> int:
        drift = round(2.0 * self.tolerance_ppm * 1e-6 * since_sync_ticks)
        return self._margin + drift


def paper_static_policy(calibration: "ModelCalibration") -> FixedLead:
    """The calibrated static-TDMA policy from a ModelCalibration."""
    return FixedLead(seconds(calibration.sync.static_lead_s))


def paper_dynamic_policy(
        calibration: "ModelCalibration") -> CycleProportionalLead:
    """The calibrated dynamic-TDMA policy from a ModelCalibration."""
    return CycleProportionalLead(
        seconds(calibration.sync.dynamic_base_lead_s),
        calibration.sync.dynamic_drift_coeff)


__all__ = [
    "SyncPolicy",
    "FixedLead",
    "CycleProportionalLead",
    "DriftTrackingLead",
    "paper_static_policy",
    "paper_dynamic_policy",
]
