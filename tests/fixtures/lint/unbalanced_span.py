"""Seeded-bug fixture: a span phase opened but never closed.

Span phases open in one callback and close in another, so the pairing
is a *class*-granularity property: ``HalfOpenComponent`` calls
``phase_open`` somewhere but no method of it ever calls
``phase_close`` — every open leaves a dangling phase and the trace
tree never terminates (LIF001).  ``BalancedComponent`` closes in a
different callback than it opens, which is legal and must stay
silent.

The spec is co-located as a pure literal; the analyzer never imports
this file.
"""

from typing import List, Tuple

from repro.core.lifecycles import LifecycleSpec

FIXTURE_SPAN = LifecycleSpec(
    resource="fake-span",
    module="obs/fake_spans.py",
    class_names=("FakeSpans",),
    class_paired=(("phase_open", "phase_close"),),
)


class FakeSpans:
    """Minimal span recorder; its own methods are lifecycle-exempt."""

    def __init__(self) -> None:
        self.open_phases: List[str] = []
        self.closed: List[Tuple[str, float]] = []

    def phase_open(self, label: str) -> None:
        self.open_phases.append(label)

    def phase_close(self, label: str, elapsed: float) -> None:
        self.closed.append((label, elapsed))


class HalfOpenComponent:
    """BUG(LIF001): opens a phase no method of the class closes."""

    def __init__(self, spans: FakeSpans) -> None:
        self._spans = spans

    def begin_tx(self) -> None:
        self._spans.phase_open("tx")  # never paired with phase_close


class BalancedComponent:
    """Fixed twin: opens in one callback, closes in another."""

    def __init__(self, spans: FakeSpans) -> None:
        self._spans = spans

    def begin_tx(self) -> None:
        self._spans.phase_open("tx")

    def tx_done(self, elapsed: float) -> None:
        self._spans.phase_close("tx", elapsed)
