"""One-shot reproduction report.

:func:`full_report` regenerates the paper's whole evaluation — all four
tables, Figure 4 and the validation error summary — plus the analytic
cross-check and a loss-taxonomy digest, as a single text document.
``repro-ban report --out report.txt`` is the command-line wrapper; the
result is what EXPERIMENTS.md summarises, produced fresh.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry

from ..core.calibration import ModelCalibration
from ..core.losses import RadioEnergyCategory
from ..exec import ScenarioExecutor
from ..net.scenario import BanScenarioConfig
from .closed_form import predict
from .experiments import _resolve, reproduce_all_tables, reproduce_figure4
from .figures import render_figure4
from .validation import validate_all

#: Banner width for section separators.
WIDTH = 72


def _section(title: str) -> str:
    return f"\n{'=' * WIDTH}\n{title}\n{'=' * WIDTH}\n"


def full_report(measure_s: float = 60.0, seed: int = 0,
                calibration: Optional[ModelCalibration] = None,
                executor: Optional[ScenarioExecutor] = None) -> str:
    """Regenerate the complete evaluation as one text report.

    With a parallel and/or caching ``executor``, the table rows, the
    figure and the taxonomy scenario all route through it; a cache
    section at the end reports hit/miss counts for the whole report.
    """
    parts = [
        "Reproduction report — Rincon et al., \"OS-Based Sensor Node "
        "Platform and Energy\nEstimation Model for Health-Care Wireless "
        "Sensor Networks\" (DATE 2008)",
        f"Measurement window: {measure_s:.0f} s per scenario "
        f"(paper: 60 s); seed {seed}.",
    ]

    results = reproduce_all_tables(measure_s=measure_s, seed=seed,
                                   calibration=calibration,
                                   executor=executor)
    for table_id in sorted(results):
        parts.append(_section(f"{table_id.upper()}"))
        parts.append(results[table_id].render())

    parts.append(_section("FIGURE 4"))
    figure = reproduce_figure4(measure_s=measure_s, seed=seed,
                               calibration=calibration, executor=executor)
    parts.append(render_figure4(figure))

    parts.append(_section("VALIDATION SUMMARY"))
    parts.append(validate_all(results).render())

    parts.append(_section("ANALYTIC CROSS-CHECK (Table 1 row 1)"))
    config = BanScenarioConfig(mac="static", app="ecg_streaming",
                               num_nodes=5, cycle_ms=30.0,
                               sampling_hz=205.0, measure_s=measure_s,
                               seed=seed)
    if calibration is not None:
        import dataclasses
        config = dataclasses.replace(config, calibration=calibration)
    prediction = predict(config)
    simulated = results["table1"].rows[0]
    parts.append(
        f"closed form: radio {prediction.radio_mj:.1f} mJ, "
        f"uC {prediction.mcu_mj:.1f} mJ\n"
        f"simulated:   radio {simulated.radio_ours_mj:.1f} mJ, "
        f"uC {simulated.mcu_ours_mj:.1f} mJ")

    parts.append(_section("LOSS TAXONOMY (Table 1 row 1, node1)"))
    node = _resolve(executor).run_configs([config])[0].node("node1")
    assert node.losses is not None
    for category in RadioEnergyCategory:
        energy = node.losses.energy_j.get(category, 0.0) * 1e3
        parts.append(f"  {category.value:<16} {energy:8.1f} mJ  "
                     f"({100 * node.losses.fraction(category):5.1f}%)")

    if executor is not None and executor.cache is not None:
        parts.append(_section("RESULT CACHE"))
        parts.append(f"  {executor.cache.stats} "
                     f"(dir: {executor.cache.root})")

    metrics = getattr(executor, "metrics", None)
    if metrics is not None:
        parts.append(_section("TELEMETRY DIGEST"))
        parts.append(_metrics_digest(metrics))

    return "\n".join(parts)


def _metrics_digest(registry: "MetricsRegistry") -> str:
    """A few headline figures from a metrics registry, as text.

    Keeps the report self-describing when the executor ran
    instrumented; the full snapshot is what ``--metrics`` writes.
    """
    snapshot = registry.snapshot()
    counters = snapshot["counters"]
    gauges = snapshot["gauges"]
    lines = []
    events = counters.get("kernel/-/events_dispatched")
    if events is not None:
        lines.append(f"  kernel events dispatched: {events:,.0f}")
    ran = counters.get("exec/-/scenarios_run")
    if ran is not None:
        cached = counters.get("exec/-/scenarios_cached", 0)
        lines.append(f"  scenarios run: {ran:.0f} "
                     f"(+{cached:.0f} from cache)")
    utilization = gauges.get("exec/-/worker_utilization")
    if utilization is not None:
        workers = gauges.get("exec/-/workers", 1.0)
        lines.append(f"  worker utilisation: {100 * utilization:.0f}% "
                     f"of {workers:.0f} worker(s)")
    corrupted = sum(value for key, value in counters.items()
                    if key.startswith("radio/")
                    and key.endswith("/corrupted"))
    lines.append(f"  corrupted frames (all scenarios): {corrupted:,.0f}")
    return "\n".join(lines) if lines else "  (registry empty)"


__all__ = ["full_report"]
