"""Virtual timers (the TinyOS ``Timer`` interface).

A :class:`VirtualTimer` fires a handler in *interrupt context*: the
hardware timer compare interrupt preempts sleep, and the handler —
like a real TinyOS ``fired()`` event — should do minimal work and post a
task for anything substantial.  The interrupt's own cost is folded into
the posted task's calibrated cycle count.

Periodic timers re-arm from the *scheduled* fire time, not the actual
dispatch time, so long tasks cannot skew the sampling grid (TinyOS's
``startPeriodic`` behaves the same way); this matters for the sampling
applications where the grid defines the data rate.  The re-arm rides the
kernel's :meth:`~repro.sim.kernel.Simulator.every` fast path: one
persistent heap entry advanced in place per fire, with dispatch order
identical to per-fire rescheduling.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.events import EVT_CANCELLED, EVT_TIME, EventEntry, cancel_event
from ..sim.kernel import Simulator


class VirtualTimer:
    """One-shot or periodic timer bound to the simulation clock."""

    __slots__ = ("_sim", "_handler", "name", "_event", "_period",
                 "_next_fire", "_fired_count", "_fire_label")

    def __init__(self, sim: Simulator, handler: Callable[[], None],
                 name: str = "timer") -> None:
        self._sim = sim
        self._handler = handler
        self.name = name
        self._fire_label = f"{name}.fire"
        self._event: Optional[EventEntry] = None
        self._period: Optional[int] = None
        self._next_fire: Optional[int] = None
        self._fired_count = 0

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def start_one_shot(self, delay: int) -> None:
        """Fire once, ``delay`` ticks from now.  Re-arming cancels."""
        self.stop()
        self._period = None
        self._next_fire = self._sim.now + delay
        self._event = self._sim.at(self._next_fire, self._fire_once,
                                   label=self._fire_label)

    def start_periodic(self, period: int, first_delay: Optional[int] = None
                       ) -> None:
        """Fire every ``period`` ticks; first fire after ``first_delay``
        (defaults to ``period``)."""
        if period <= 0:
            raise ValueError(f"{self.name}: period must be > 0, got {period}")
        self.stop()
        self._period = period
        delay = period if first_delay is None else first_delay
        self._event = self._sim.every(period, self._fire_periodic,
                                      label=self._fire_label,
                                      first_delay=delay)
        self._next_fire = self._event[EVT_TIME]

    def stop(self) -> None:
        """Disarm; a pending fire is cancelled."""
        if self._event is not None:
            cancel_event(self._event)
            self._event = None
        self._next_fire = None

    @property
    def is_running(self) -> bool:
        """Whether a fire is pending."""
        return self._event is not None and not self._event[EVT_CANCELLED]

    @property
    def fired_count(self) -> int:
        """Number of times the handler has run."""
        return self._fired_count

    @property
    def next_fire_ticks(self) -> Optional[int]:
        """Absolute time of the pending fire (None when disarmed).

        Power-management hint: the deep-sleep policy uses it to bound
        idle gaps.
        """
        if self._event is None or self._event[EVT_CANCELLED]:
            return None
        return self._next_fire

    # ------------------------------------------------------------------
    def _fire_once(self) -> None:
        self._event = None
        self._next_fire = None
        self._fired_count += 1
        self._handler()

    def _fire_periodic(self) -> None:
        # The kernel's every() entry has already been re-armed in place:
        # its time slot now reads the *next* fire, which is exactly what
        # per-fire rescheduling left in _next_fire at this point.
        event = self._event
        if event is not None:
            self._next_fire = event[EVT_TIME]
        self._fired_count += 1
        self._handler()


__all__ = ["VirtualTimer"]
