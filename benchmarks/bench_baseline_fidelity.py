"""Ablation A5: model-fidelity ladder vs the paper's hardware truth.

Section 2 of the paper argues that simple energy models (and stock
TOSSIM/PowerTOSSIM) miss the platform effects that dominate real
consumption.  This benchmark makes the argument quantitative: it
evaluates three estimators of increasing fidelity against the paper's
hardware (Real) columns for Tables 1 and 3:

* L0 (airtime only)   — the back-of-envelope duty-cycle estimate,
* L1 (+ TX overhead)  — a careful datasheet reading,
* L2 (+ guard windows and OS costs) — the paper's/our full model.

Expected outcome (asserted): L0 underestimates the radio by an order of
magnitude, L1 barely improves it, and only L2 lands inside the paper's
error band — i.e. the synchronisation guard window, not the data
airtime, is the energy story in TDMA BANs.
"""

from conftest import bench_measure_s, run_once
from repro.baselines.naive import Fidelity, estimate
from repro.data.paper_tables import TABLE_1, TABLE_3
from repro.net.scenario import BanScenarioConfig


def evaluate_ladder(measure_s: float):
    """Mean |err| vs hardware per fidelity level, over Tables 1 and 3."""
    cases = []
    for row in TABLE_1.rows:
        config = BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=5,
            cycle_ms=row.cycle_ms, sampling_hz=row.parameter,
            measure_s=measure_s)
        cases.append((config, row))
    for row in TABLE_3.rows:
        config = BanScenarioConfig(
            mac="static", app="rpeak", num_nodes=5,
            cycle_ms=row.cycle_ms, heart_rate_bpm=75.0,
            measure_s=measure_s)
        cases.append((config, row))

    scale = measure_s / 60.0
    errors = {}
    for level in Fidelity:
        radio_errs, mcu_errs = [], []
        for config, row in cases:
            guess = estimate(config, level)
            radio_real = row.radio_real_mj * scale
            mcu_real = row.mcu_real_mj * scale
            radio_errs.append(abs(guess.radio_mj - radio_real)
                              / radio_real)
            mcu_errs.append(abs(guess.mcu_mj - mcu_real) / mcu_real)
        errors[level] = (sum(radio_errs) / len(radio_errs),
                         sum(mcu_errs) / len(mcu_errs))
    return errors


def test_ablation_model_fidelity_ladder(benchmark):
    measure_s = bench_measure_s()
    errors = run_once(benchmark, evaluate_ladder, measure_s)

    print(f"\nA5 fidelity ladder vs hardware (Tables 1+3, "
          f"{measure_s:.0f} s):")
    for level, (radio_err, mcu_err) in errors.items():
        print(f"  {level.value:<16} radio {100 * radio_err:6.1f}%   "
              f"uC {100 * mcu_err:5.1f}%")
        benchmark.extra_info[f"radio_err_{level.value}"] = round(
            radio_err, 3)

    l0_radio = errors[Fidelity.L0_AIRTIME][0]
    l1_radio = errors[Fidelity.L1_TX_OVERHEAD][0]
    l2_radio = errors[Fidelity.L2_GUARD_WINDOWS][0]

    # Airtime-only misses ~90% of the radio energy.
    assert l0_radio > 0.80
    # Datasheet TX overheads barely move the needle.
    assert l1_radio > 0.75
    # Only the guard-window model reaches the paper's accuracy band.
    assert l2_radio < 0.06
    assert l0_radio > 10 * l2_radio

    l2_mcu = errors[Fidelity.L2_GUARD_WINDOWS][1]
    l0_mcu = errors[Fidelity.L0_AIRTIME][1]
    assert l2_mcu < 0.06
    assert l0_mcu > 2 * l2_mcu  # naive instruction counting is far off
