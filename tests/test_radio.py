"""Unit tests for the nRF2401 radio model and its energy attribution."""

import pytest

from repro.core.losses import RadioEnergyCategory
from repro.hw.frames import BROADCAST, Frame, FrameKind
from repro.hw.radio import Nrf2401, RadioError
from repro.phy.channel import Channel
from repro.sim.kernel import Simulator
from repro.sim.simtime import microseconds, seconds, to_seconds


@pytest.fixture
def pair(sim, cal):
    """Two radios, 'a' and 'b', on a perfect channel."""
    channel = Channel(sim)
    a = Nrf2401(sim, cal, channel, "a", name="a.radio")
    b = Nrf2401(sim, cal, channel, "b", name="b.radio")
    a.power_up()
    b.power_up()
    return channel, a, b


def data_frame(src="a", dest="b", payload_bytes=18):
    return Frame(src=src, dest=dest, kind=FrameKind.DATA,
                 payload_bytes=payload_bytes, payload={"n": 1})


class TestTransmitTiming:
    def test_tx_event_duration(self, sim, cal, pair):
        _, a, _ = pair
        frame = data_frame()
        done = []
        a.power_up()
        a.send(frame, lambda outcome: done.append(sim.now))
        sim.run_until(seconds(1.0))
        assert done == [microseconds(485)]

    def test_airtime_26_bytes(self, sim, cal, pair):
        _, a, _ = pair
        assert a.airtime_ticks(data_frame()) == microseconds(208)

    def test_tx_energy_booked(self, sim, cal, pair):
        _, a, _ = pair
        a.power_up()
        a.send(data_frame())
        sim.run_until(seconds(1.0))
        expected = 485e-6 * cal.radio_tx_a * cal.supply_v
        assert a.ledger.energy_j(state="tx") == pytest.approx(expected)

    def test_tx_returns_to_standby(self, sim, cal, pair):
        _, a, _ = pair
        a.power_up()
        a.send(data_frame())
        sim.run_until(seconds(1.0))
        assert a.state == "standby"

    def test_double_send_raises(self, sim, cal, pair):
        _, a, _ = pair
        a.power_up()
        a.send(data_frame())
        with pytest.raises(RadioError):
            a.send(data_frame())

    def test_wrong_source_raises(self, sim, cal, pair):
        _, a, _ = pair
        with pytest.raises(RadioError):
            a.send(data_frame(src="b", dest="a"))

    def test_power_down_during_tx_raises(self, sim, cal, pair):
        _, a, _ = pair
        a.power_up()
        a.send(data_frame())
        with pytest.raises(RadioError):
            a.power_down()


class TestReceivePath:
    def test_delivery_to_listening_destination(self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(data_frame())
        sim.run_until(seconds(1.0))
        assert len(received) == 1
        assert received[0].payload == {"n": 1}

    def test_no_delivery_when_receiver_off(self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        a.send(data_frame())
        sim.run_until(seconds(1.0))
        assert received == []

    def test_no_delivery_when_rx_started_mid_frame(self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        a.send(data_frame())
        # Frame airtime begins at 195 us (after settle); turn RX on at
        # 250 us, i.e. mid-frame.
        sim.at(microseconds(250), b.start_rx)
        sim.run_until(seconds(1.0))
        assert received == []

    def test_no_delivery_when_rx_stopped_mid_frame(self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(data_frame())
        sim.at(microseconds(300), b.stop_rx)
        sim.run_until(seconds(1.0))
        assert received == []

    def test_outcome_reports_delivery(self, sim, cal, pair):
        _, a, b = pair
        outcomes = []
        b.start_rx()
        a.send(data_frame(), outcomes.append)
        sim.run_until(seconds(1.0))
        assert outcomes[0].reached_destination
        assert outcomes[0].delivered_to == ["b"]

    def test_rx_energy_attributed_to_data(self, sim, cal, pair):
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())
        sim.at(seconds(0.5), b.stop_rx)
        sim.run_until(seconds(1.0))
        b.finalize_attribution()
        snap = b.accountant.snapshot()
        airtime_energy = 208e-6 * cal.radio_rx_a * cal.supply_v
        assert snap.energy_j[RadioEnergyCategory.DATA_RX] \
            == pytest.approx(airtime_energy)
        # Everything else the receiver spent was idle listening.
        total_rx = b.ledger.energy_j(state="rx")
        assert snap.energy_j[RadioEnergyCategory.IDLE_LISTENING] \
            == pytest.approx(total_rx - airtime_energy)


class TestAddressFilter:
    def test_overheard_frame_dropped_in_hardware(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        c = Nrf2401(sim, cal, channel, "c")
        a.power_up()
        c.power_up()
        received = []
        c.on_frame = received.append
        c.start_rx()
        a.send(data_frame(dest="b"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert received == []  # never reaches the MCU
        c.finalize_attribution()
        snap = c.accountant.snapshot()
        assert snap.frames[RadioEnergyCategory.OVERHEARING] == 1
        assert snap.energy_j[RadioEnergyCategory.OVERHEARING] > 0

    def test_overheard_frame_delivered_with_filter_off(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        Nrf2401(sim, cal, channel, "b")
        c = Nrf2401(sim, cal, channel, "c")
        a.power_up()
        c.power_up()
        c.address_filter_enabled = False
        received = []
        c.on_frame = received.append
        c.start_rx()
        a.send(data_frame(dest="b"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert len(received) == 1  # software must now discard it

    def test_broadcast_passes_filter(self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(Frame(src="a", dest=BROADCAST, kind=FrameKind.BEACON,
                     payload_bytes=9, payload=None))
        sim.run_until(seconds(1.0))
        assert len(received) == 1


class TestCollisions:
    def make_three(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        c = Nrf2401(sim, cal, channel, "c")
        for radio in (a, b, c):
            radio.power_up()
        return channel, a, b, c

    def test_overlapping_frames_corrupt_each_other(self, sim, cal):
        channel, a, b, c = self.make_three(sim, cal)
        received = []
        c.on_frame = received.append
        c.start_rx()
        a.send(data_frame(src="a", dest="c"))
        b.send(data_frame(src="b", dest="c"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert received == []  # CRC drops both
        c.finalize_attribution()
        snap = c.accountant.snapshot()
        assert snap.frames[RadioEnergyCategory.COLLISION] == 2
        assert channel.collisions_detected > 0

    def test_collision_visible_in_tx_outcome(self, sim, cal):
        channel, a, b, c = self.make_three(sim, cal)
        c.start_rx()
        outcomes = []
        a.send(data_frame(src="a", dest="c"), outcomes.append)
        b.send(data_frame(src="b", dest="c"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert not outcomes[0].reached_destination
        assert "c" in outcomes[0].corrupted_at

    def test_tx_side_collision_energy_booked(self, sim, cal):
        channel, a, b, c = self.make_three(sim, cal)
        c.start_rx()
        a.send(data_frame(src="a", dest="c"))
        b.send(data_frame(src="b", dest="c"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        a.finalize_attribution()
        snap = a.accountant.snapshot()
        assert snap.energy_j.get(RadioEnergyCategory.COLLISION, 0) > 0
        assert snap.energy_j.get(RadioEnergyCategory.DATA_TX, 0) == 0

    def test_crc_disabled_delivers_corrupted(self, sim, cal):
        """With the CRC off the model reverts to stock-TOSSIM optimism."""
        channel, a, b, c = self.make_three(sim, cal)
        c.crc_enabled = False
        received = []
        c.on_frame = received.append
        c.start_rx()
        a.send(data_frame(src="a", dest="c"))
        b.send(data_frame(src="b", dest="c"))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert len(received) == 2

    def test_sequential_frames_do_not_collide(self, sim, cal):
        channel, a, b, c = self.make_three(sim, cal)
        received = []
        c.on_frame = received.append
        c.start_rx()
        a.send(data_frame(src="a", dest="c"))
        sim.at(microseconds(600), lambda: b.send(data_frame(src="b",
                                                            dest="c")))
        sim.at(seconds(0.5), c.stop_rx)
        sim.run_until(seconds(1.0))
        assert len(received) == 2
        assert channel.collisions_detected == 0


class TestFaultCutCaptures:
    """Regression: a receiver powered down mid-airtime used to vanish
    from the outcome accounting — the capture set was simply cleared,
    so the frame was neither delivered nor reported lost.  The radio
    now books the truncated capture and surfaces ``fault_dropped``."""

    def test_power_down_mid_capture_reports_fault_dropped(
            self, sim, cal, pair):
        _, a, b = pair
        received = []
        b.on_frame = received.append
        b.start_rx()
        a.send(data_frame())
        # Airtime runs 195..403 us; cut the receiver at 300 us.
        sim.at(microseconds(300), b.power_down)
        sim.run_until(seconds(1.0))
        assert received == []
        assert b.fault_frames_dropped == 1
        assert b.snapshot_counters().corrupted == 1
        # Energy from first bit (195 us) to the cut, collision-class.
        snap = b.accountant.snapshot()
        partial = 105e-6 * cal.radio_rx_a * cal.supply_v
        assert snap.energy_j[RadioEnergyCategory.COLLISION] \
            == pytest.approx(partial)

    def test_stop_rx_then_power_down_promotes_to_fault_cut(
            self, sim, cal, pair):
        """The injector's quiesce sequence (MAC stop_rx, then radio
        power_down) must count the abandoned capture as a fault cut at
        the tick the chain actually stopped."""
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())

        def quiesce():
            b.stop_rx()
            b.power_down()

        sim.at(microseconds(300), quiesce)
        sim.run_until(seconds(1.0))
        assert b.fault_frames_dropped == 1
        snap = b.accountant.snapshot()
        partial = 105e-6 * cal.radio_rx_a * cal.supply_v
        assert snap.energy_j[RadioEnergyCategory.COLLISION] \
            == pytest.approx(partial)

    def test_routine_stop_rx_is_not_a_fault(self, sim, cal, pair):
        """A MAC turning its chain off mid-frame (no power_down) is a
        routine mode switch: the frame drains silently, exactly as
        before the fault-cut mechanism existed."""
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())
        sim.at(microseconds(300), b.stop_rx)
        sim.run_until(seconds(1.0))
        assert b.fault_frames_dropped == 0
        snap = b.accountant.snapshot()
        assert snap.energy_j.get(RadioEnergyCategory.COLLISION, 0.0) == 0.0


class TestAttributionInvariant:
    def test_attribution_sums_to_active_state_energy(self, sim, cal, pair):
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())
        sim.at(seconds(0.2), b.stop_rx)
        sim.at(seconds(0.3), b.start_rx)
        sim.at(seconds(0.4),
               lambda: b.send(data_frame(src="b", dest="a")))
        sim.run_until(seconds(1.0))
        for radio in (a, b):
            radio.finalize_attribution()
            snap = radio.accountant.snapshot()
            ledger_active = radio.ledger.energy_j(state="tx") \
                + radio.ledger.energy_j(state="rx")
            assert snap.total_j == pytest.approx(ledger_active, rel=1e-9)


class TestCountersAndReset:
    def test_counters(self, sim, cal, pair):
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())
        sim.at(seconds(0.5), b.stop_rx)
        sim.run_until(seconds(1.0))
        assert a.snapshot_counters().data_tx == 1
        assert b.snapshot_counters().data_rx == 1

    def test_reset_measurement(self, sim, cal, pair):
        _, a, b = pair
        b.start_rx()
        a.send(data_frame())
        sim.run_until(seconds(0.5))
        a.reset_measurement()
        b.reset_measurement()
        assert a.energy_mj() == 0.0
        assert a.snapshot_counters().data_tx == 0

    def test_rx_tail_spent_on_stop(self, sim, cal, pair):
        _, _, b = pair
        b.start_rx()
        sim.at(seconds(0.1), b.stop_rx)
        sim.run_until(seconds(1.0))
        expected = (0.1 + cal.radio_timing.rx_tail_s) \
            * cal.radio_rx_a * cal.supply_v
        assert b.ledger.energy_j(state="rx") == pytest.approx(expected)
        assert b.state == "standby"

    def test_start_rx_during_tail_keeps_receiving(self, sim, cal, pair):
        _, _, b = pair
        b.start_rx()
        sim.at(seconds(0.1), b.stop_rx)
        sim.at(seconds(0.1) + microseconds(10), b.start_rx)
        sim.run_until(seconds(0.2))
        assert b.is_receiving

    def test_standby_zero_current_by_default(self, sim, cal, pair):
        _, a, _ = pair
        a.power_up()
        sim.run_until(seconds(10.0))
        assert a.energy_mj() == 0.0
