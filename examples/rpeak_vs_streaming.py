#!/usr/bin/env python3
"""Figure 4 as a design-space study: should the ECG node preprocess?

The paper's motivating question for the whole energy-model framework:
given a biopotential node, is it worth running the beat-detection
algorithm on the MSP430 (more MCU work) to cut the radio payload from a
continuous 200 Hz stream to ~1.25 packets/s?  This example

1. reproduces Figure 4 (streaming @30 ms vs Rpeak @120 ms),
2. checks what the detector actually delivered (beats seen at the base
   station vs the synthetic ECG's ground truth), and
3. sweeps the heart rate to show how the saving erodes as the patient's
   rate rises — the kind of what-if the simulator exists to answer.

Run:  python examples/rpeak_vs_streaming.py
"""

from repro.analysis.experiments import reproduce_figure4
from repro.analysis.figures import render_figure4
from repro.analysis.sweep import sweep_heart_rate
from repro.core.report import render_table
from repro.net.scenario import BanScenario, BanScenarioConfig

MEASURE_S = 30.0


def check_detection_quality() -> None:
    """Run the Rpeak BAN and compare deliveries to ground truth."""
    config = BanScenarioConfig(mac="static", app="rpeak", num_nodes=5,
                               cycle_ms=120.0, heart_rate_bpm=75.0,
                               measure_s=MEASURE_S)
    scenario = BanScenario(config)
    result = scenario.run()
    frames = scenario.base_station.frames_from("node1")
    node = result.node("node1")
    # Two channels both detect every heartbeat: ~2 reports per beat.
    expected_beats = 75.0 / 60.0 * MEASURE_S
    print(f"Ground truth: ~{expected_beats:.0f} heartbeats in "
          f"{MEASURE_S:.0f} s; base station received {len(frames)} beat "
          f"reports from node1 (2 channels), radio cost "
          f"{node.radio_mj:.1f} mJ")
    lags = [frame.payload["lag_samples"] for frame in frames]
    if lags:
        print(f"Detector confirmation lag: {min(lags)}-{max(lags)} "
              f"samples ({max(lags) * 5} ms worst case at 200 Hz)")


def heart_rate_sweep() -> None:
    streaming = BanScenario(BanScenarioConfig(
        mac="static", app="ecg_streaming", num_nodes=5, cycle_ms=30.0,
        sampling_hz=205.0, measure_s=MEASURE_S)).run().node("node1")
    base = BanScenarioConfig(mac="static", app="rpeak", num_nodes=5,
                             cycle_ms=120.0, measure_s=MEASURE_S)
    points = sweep_heart_rate(base, [50.0, 75.0, 100.0, 140.0, 180.0])
    rows = []
    for point in points:
        saving = 1.0 - point.total_mj / streaming.total_mj
        rows.append((int(point.value), point.node.radio_mj,
                     point.node.mcu_mj, point.total_mj,
                     f"{100 * saving:.0f}%"))
    print(render_table(
        ["heart rate (bpm)", "radio (mJ)", "uC (mJ)", "total (mJ)",
         "saving vs streaming"],
        rows,
        title=f"Rpeak @120 ms vs streaming @30 ms "
              f"({streaming.total_mj:.1f} mJ), {MEASURE_S:.0f} s"))


def main() -> None:
    print("Reproducing Figure 4...")
    figure = reproduce_figure4(measure_s=MEASURE_S)
    print(render_figure4(figure))
    print()
    check_detection_quality()
    print()
    heart_rate_sweep()


if __name__ == "__main__":
    main()
