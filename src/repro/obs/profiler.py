"""Lightweight simulation profiler.

Answers the question the kernel fast-path work keeps asking: **where
does the host's wall-clock time go during a run?**  The kernel's
profiled dispatch loop (see :meth:`repro.sim.kernel.Simulator.run_until`)
times every callback with :func:`time.perf_counter` and hands the
per-label aggregates to a :class:`SimulationProfiler`, which:

* groups labels after *normalisation* (``node3.mac.rxon`` →
  ``node*.mac.rxon``) so a 50-node BAN reads as one line per code
  path, not fifty;
* attributes the residual loop time (heap pops, bookkeeping) to the
  ``(kernel dispatch)`` pseudo-label, so the whole measured wall time
  is accounted for — the attribution fraction is ~1.0 by construction;
* reports **sim-seconds-per-wall-second**, the simulator's headline
  throughput figure.

Profiles are plain data: :meth:`snapshot` / :meth:`merge_snapshot`
let worker processes profile independently and the parent aggregate,
exactly like the metrics registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim.simtime import to_seconds

#: Pseudo-label for dispatch-loop overhead (heap ops, bookkeeping).
KERNEL_LABEL = "(kernel dispatch)"

#: Pseudo-label for events scheduled without a label.
UNLABELLED = "(unlabelled)"


def normalize_label(label: str) -> str:
    """Collapse per-instance numbering out of an event label.

    Every dot-separated segment has its trailing digits replaced by
    ``*`` (``node12`` → ``node*``, ``ban2`` → ``ban*``), so homologous
    callbacks across nodes and BANs aggregate into one profile row.
    """
    if not label:
        return UNLABELLED
    segments = []
    for segment in label.split("."):
        stripped = segment.rstrip("0123456789")
        segments.append(segment if stripped == segment
                        else stripped + "*")
    return ".".join(segments)


class SimulationProfiler:
    """Accumulates per-label host time across profiled ``run*`` calls.

    Attach one to a simulator (``sim.profiler = SimulationProfiler()``)
    *before* running; the kernel switches to its profiled dispatch loop
    and calls :meth:`absorb` once per ``run_until``.  Attaching a
    profiler never changes event order or energies — it only spends
    host time reading the clock.
    """

    def __init__(self) -> None:
        #: label -> [cumulative seconds, call count]
        self.labels: Dict[str, List[float]] = {}
        #: Total wall seconds measured inside profiled dispatch loops.
        self.wall_s = 0.0
        #: Total simulated ticks advanced by profiled runs.
        self.sim_ticks = 0
        #: Total events dispatched by profiled runs.
        self.events = 0

    # ------------------------------------------------------------------
    # Ingestion (called by the kernel)
    # ------------------------------------------------------------------
    def absorb(self, raw: Dict[str, List[float]], wall_s: float,
               sim_ticks: int, events: int) -> None:
        """Fold one profiled run's raw per-label aggregates in.

        Args:
            raw: label -> ``[seconds, count]`` as measured by the
                kernel (labels not yet normalised).
            wall_s: wall time of the whole dispatch loop.
            sim_ticks: simulated time the run advanced.
            events: events dispatched by the run.
        """
        attributed = 0.0
        for label, (seconds, count) in raw.items():
            attributed += seconds
            normalized = normalize_label(label)
            entry = self.labels.get(normalized)
            if entry is None:
                self.labels[normalized] = [seconds, float(count)]
            else:
                entry[0] += seconds
                entry[1] += count
        overhead = max(0.0, wall_s - attributed)
        entry = self.labels.get(KERNEL_LABEL)
        if entry is None:
            self.labels[KERNEL_LABEL] = [overhead, float(events)]
        else:
            entry[0] += overhead
            entry[1] += events
        self.wall_s += wall_s
        self.sim_ticks += sim_ticks
        self.events += events

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def attributed_s(self) -> float:
        """Wall seconds attributed to labels (incl. dispatch overhead)."""
        return sum(seconds for seconds, _ in self.labels.values())

    @property
    def attributed_fraction(self) -> float:
        """Share of measured wall time carrying a label (~1.0)."""
        if self.wall_s <= 0:
            return 1.0
        return min(1.0, self.attributed_s / self.wall_s)

    @property
    def sim_s(self) -> float:
        """Simulated seconds advanced by profiled runs."""
        return to_seconds(self.sim_ticks)

    @property
    def sim_rate(self) -> float:
        """Simulated seconds per wall second (the throughput figure)."""
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    def top(self, limit: Optional[int] = None
            ) -> List[Tuple[str, float, float]]:
        """(label, seconds, count) rows, hottest first."""
        rows = sorted(((label, seconds, count)
                       for label, (seconds, count) in self.labels.items()),
                      key=lambda row: row[1], reverse=True)
        return rows if limit is None else rows[:limit]

    # ------------------------------------------------------------------
    # Snapshot / merge (for worker aggregation)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Plain-data view, mergeable via :meth:`merge_snapshot`."""
        return {"labels": {label: list(entry)
                           for label, entry in self.labels.items()},
                "wall_s": self.wall_s, "sim_ticks": self.sim_ticks,
                "events": self.events}

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this one."""
        for label, (seconds, count) in snapshot["labels"].items():
            entry = self.labels.get(label)
            if entry is None:
                self.labels[label] = [seconds, count]
            else:
                entry[0] += seconds
                entry[1] += count
        self.wall_s += snapshot["wall_s"]
        self.sim_ticks += snapshot["sim_ticks"]
        self.events += snapshot["events"]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_table(self, limit: int = 25) -> str:
        """The profile as a fixed-width text table."""
        lines = [f"{'label':<36} {'calls':>10} {'wall (s)':>10} "
                 f"{'share':>7}",
                 "-" * 66]
        wall = self.wall_s if self.wall_s > 0 else 1.0
        for label, seconds, count in self.top(limit):
            lines.append(f"{label:<36} {int(count):>10} {seconds:>10.4f} "
                         f"{100.0 * seconds / wall:>6.1f}%")
        lines.append("-" * 66)
        lines.append(
            f"measured wall: {self.wall_s:.4f} s   "
            f"sim: {self.sim_s:.2f} s   "
            f"rate: {self.sim_rate:.1f} sim-s/wall-s   "
            f"events: {self.events}   "
            f"attributed: {100.0 * self.attributed_fraction:.1f}%")
        return "\n".join(lines)


__all__ = ["SimulationProfiler", "normalize_label", "KERNEL_LABEL",
           "UNLABELLED"]
