"""Tests for the unslotted-ALOHA baseline MAC."""

import dataclasses

import pytest

from repro.core.calibration import (
    DEFAULT_CALIBRATION,
    RADIO_STANDBY_DATASHEET_A,
)
from repro.hw.mcu import Msp430
from repro.hw.radio import Nrf2401
from repro.mac.aloha import AlohaConfig, AlohaNodeMac
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.phy.channel import Channel
from repro.sim.simtime import milliseconds, seconds
from repro.tinyos.scheduler import TaskScheduler


def run_aloha(num_nodes=3, measure_s=5.0, app="ecg_streaming",
              cycle_ms=30.0, seed=2, **kw):
    config = BanScenarioConfig(
        mac="aloha", app=app, num_nodes=num_nodes, cycle_ms=cycle_ms,
        sampling_hz=205.0 if app == "ecg_streaming" else None,
        measure_s=measure_s, seed=seed, **kw)
    scenario = BanScenario(config)
    return scenario, scenario.run()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlohaConfig(poll_interval_ticks=0)

    def test_scenario_accepts_aloha(self):
        config = BanScenarioConfig(mac="aloha", measure_s=1.0)
        assert config.cycle_ticks == milliseconds(30.0)


class TestNodeBehaviour:
    def test_nodes_never_listen(self):
        scenario, result = run_aloha()
        for node in scenario.nodes:
            assert node.radio.ledger.seconds_in(state="rx") == 0.0
            assert result.node(node.node_id).traffic.control_rx == 0

    def test_radio_energy_is_tx_only(self, cal):
        scenario, result = run_aloha(num_nodes=1)
        node = result.node("node1")
        tx_events = node.traffic.data_tx + node.traffic.corrupted
        expected = tx_events * cal.radio_timing.tx_event_s(18) \
            * cal.radio_tx_a * cal.supply_v * 1e3
        assert node.radio_mj == pytest.approx(expected, rel=0.01)

    def test_one_packet_per_poll_when_streaming(self):
        scenario, result = run_aloha(num_nodes=1, measure_s=6.0)
        node = result.node("node1")
        polls = 6.0 / 0.030
        assert node.traffic.data_tx == pytest.approx(polls, abs=2)

    def test_rpeak_over_aloha_sends_only_beats(self):
        scenario, result = run_aloha(num_nodes=1, app="rpeak",
                                     cycle_ms=120.0, measure_s=10.0)
        node = result.node("node1")
        # ~2.5 reports/s on two channels.
        assert node.traffic.data_tx == pytest.approx(25, rel=0.3)

    def test_deterministic(self):
        _, a = run_aloha(seed=9)
        _, b = run_aloha(seed=9)
        assert a.node("node1").radio_mj == b.node("node1").radio_mj

    def test_start_jitter_decorrelates_nodes(self):
        """With jitter disabled and identical polls, every node fires
        its provider at the same grid — collisions explode; the default
        jitter keeps losses moderate."""
        scenario, result = run_aloha(num_nodes=5, measure_s=5.0)
        bs = result.base_station.traffic
        loss = bs.corrupted / max(1, bs.corrupted + bs.data_rx)
        assert loss < 0.25


class TestDelivery:
    def test_collisions_are_silent_losses(self):
        scenario, result = run_aloha(num_nodes=5, measure_s=10.0)
        bs = result.base_station.traffic
        assert bs.corrupted > 0
        assert scenario.channel.collisions_detected > 0
        offered = 5 * 10.0 / 0.030
        assert bs.data_rx < offered

    def test_loss_grows_with_node_count(self):
        rates = []
        for nodes in (2, 8):
            _, result = run_aloha(num_nodes=nodes, measure_s=10.0)
            bs = result.base_station.traffic
            rates.append(bs.corrupted
                         / max(1, bs.corrupted + bs.data_rx))
        assert rates[1] > rates[0]

    def test_single_node_lossless(self):
        _, result = run_aloha(num_nodes=1, measure_s=5.0)
        assert result.base_station.traffic.corrupted == 0

    def test_attribution_invariant_holds(self):
        _, result = run_aloha(num_nodes=5, measure_s=5.0)
        for node in result.nodes.values():
            assert node.losses.total_j * 1e3 \
                == pytest.approx(node.radio_mj, rel=1e-9)


class TestStopReleasesRadio:
    def test_stopped_node_stops_accruing_standby(self):
        """Regression: AlohaNodeMac had no on_stop, so a stopped node's
        radio sat in stand-by forever — invisible with the paper's
        0 A stand-by figure, a real leak with the datasheet's 12 uA."""
        cal = dataclasses.replace(
            DEFAULT_CALIBRATION,
            radio_standby_a=RADIO_STANDBY_DATASHEET_A)
        config = BanScenarioConfig(
            mac="aloha", app="ecg_streaming", num_nodes=1,
            sampling_hz=205.0, measure_s=1.0, calibration=cal)
        scenario = BanScenario(config)
        scenario.start_all()
        scenario.sim.run_until(seconds(0.5))
        node = scenario.nodes[0]
        assert not node.radio.is_transmitting  # deterministic instant
        node.stack.stop_all()
        assert node.radio.state == "power_down"
        settled = node.radio.ledger.energy_j()
        scenario.sim.run_until(seconds(1.5))
        assert node.radio.ledger.energy_j() == settled

    def test_stop_mid_transmission_defers_power_down(self, sim, cal):
        channel = Channel(sim)
        Nrf2401(sim, cal, channel, "base_station", name="bs.radio")
        radio = Nrf2401(sim, cal, channel, "node1", name="node1.radio")
        mac = AlohaNodeMac(
            sim, radio, TaskScheduler(sim, Msp430(sim, cal)), cal,
            AlohaConfig(poll_interval_ticks=milliseconds(0.486),
                        start_jitter=False))
        mac.payload_provider = lambda: (18, {"d": 1})
        mac.start()
        # The 486 us window pins the TX offset to <= 1 us; queued packet
        # preparations then serialise sends 4.19 ms apart, so a 485 us
        # TX event is reliably in flight at 4.4 ms.
        sim.run_until(seconds(0.0044))
        assert radio.is_transmitting
        sent_at_stop = mac.counters.data_sent
        mac.stop()
        assert radio.state == "tx"     # mid-ShockBurst: deferred
        sim.run_until(seconds(0.1))
        assert radio.state == "power_down"
        # Only the in-flight frame completes after the stop.
        assert mac.counters.data_sent == sent_at_stop + 1


class TestOversizeFrames:
    def _mac(self, sim, cal, poll_ms, payload_bytes):
        channel = Channel(sim)
        Nrf2401(sim, cal, channel, "base_station", name="bs.radio")
        radio = Nrf2401(sim, cal, channel, "node1", name="node1.radio")
        mac = AlohaNodeMac(
            sim, radio, TaskScheduler(sim, Msp430(sim, cal)), cal,
            AlohaConfig(poll_interval_ticks=milliseconds(poll_ms),
                        start_jitter=False))
        mac.payload_provider = lambda: (payload_bytes, {"d": 1})
        return mac

    def test_oversize_frame_skipped_not_spilled(self, sim, cal):
        """Regression: an offset clamp of max(0, interval - tx_event)
        scheduled oversize frames at offset 0; their airtime spilled
        into the next poll window and collided with the node's own
        next transmission (RadioError: send while transmitting)."""
        # 600 B payload -> 5141 us TX event, against a 4 ms window.
        mac = self._mac(sim, cal, poll_ms=4.0, payload_bytes=600)
        mac.start()
        sim.run_until(seconds(0.5))
        assert mac.counters.oversize_skipped > 0
        assert mac.counters.data_sent == 0

    def test_exactly_fitting_frame_still_sent(self, sim, cal):
        # 600 B payload: TX event 5141 us == the poll window.
        mac = self._mac(sim, cal, poll_ms=5.141, payload_bytes=600)
        mac.start()
        sim.run_until(seconds(0.5))
        assert mac.counters.oversize_skipped == 0
        assert mac.counters.data_sent > 0


class TestEnergyComparison:
    def test_aloha_order_of_magnitude_below_tdma(self):
        _, aloha = run_aloha(num_nodes=5, measure_s=5.0)
        tdma = BanScenario(BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=5,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=5.0)).run()
        assert aloha.node("node1").radio_mj \
            < 0.15 * tdma.node("node1").radio_mj

    def test_base_station_energy_similar(self):
        """Both MACs keep the collector's receiver on ~continuously."""
        _, aloha = run_aloha(num_nodes=3, measure_s=5.0)
        tdma = BanScenario(BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=3,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=5.0)).run()
        assert aloha.base_station.radio_mj \
            == pytest.approx(tdma.base_station.radio_mj, rel=0.15)
