"""Benchmark: Figure 4 — ECG streaming vs on-node Rpeak preprocessing.

Regenerates the paper's headline comparison: streaming a 2-channel ECG
at 200 Hz needs a 30 ms cycle (710.8 mJ/60 s measured), while running
the R-peak detector on the node allows a 120 ms cycle (246.2 mJ/60 s) —
"a energy save of 65%".  The benchmark reproduces both bars and the
saving, and prints the ASCII figure.
"""

import pytest

from conftest import run_once
from repro.analysis.experiments import reproduce_figure4
from repro.analysis.figures import render_figure4


def test_figure4_preprocessing_saving(benchmark, measure_s):
    result = run_once(benchmark, reproduce_figure4, measure_s=measure_s)
    print()
    print(render_figure4(result))

    benchmark.extra_info["streaming_total_mj"] = round(
        result.streaming_total_mj, 1)
    benchmark.extra_info["rpeak_total_mj"] = round(result.rpeak_total_mj, 1)
    benchmark.extra_info["saving"] = round(result.saving, 3)

    # The headline: ~65% saved by moving the computation onto the node.
    assert result.saving == pytest.approx(0.65, abs=0.05)
    # Bar heights near the paper's (sim bars: 664.1 and 249.5 mJ/60 s).
    scale = measure_s / 60.0
    assert abs(result.streaming_total_mj - 664.1 * scale) \
        < 0.05 * 664.1 * scale
    assert abs(result.rpeak_total_mj - 249.5 * scale) \
        < 0.06 * 249.5 * scale
    # Who wins and why: the radio drives the gap, the MCU barely moves.
    assert result.streaming_radio_mj > 4 * result.rpeak_radio_mj
    assert result.streaming_mcu_mj < 1.35 * result.rpeak_mcu_mj
