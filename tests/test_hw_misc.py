"""Unit tests for ADC, ASIC, battery and frame models."""

import pytest

from repro.hw.adc import Adc12, FULL_SCALE_CODE
from repro.hw.asic import BiopotentialAsic, ECG_CHANNEL, NUM_CHANNELS
from repro.hw.battery import Battery, CR2477, LIPO_160
from repro.hw.frames import BROADCAST, Frame, FrameKind
from repro.signals.sources import ConstantSource, SineSource
from repro.sim.simtime import seconds


class TestAdc12:
    def test_full_scale(self):
        adc = Adc12(0.0, 2.5)
        assert adc.convert(2.5) == FULL_SCALE_CODE
        assert adc.convert(0.0) == 0

    def test_midscale(self):
        adc = Adc12(0.0, 2.5)
        assert adc.convert(1.25) == pytest.approx(2048, abs=1)

    def test_clamping(self):
        adc = Adc12(0.0, 2.5)
        assert adc.convert(5.0) == FULL_SCALE_CODE
        assert adc.convert(-1.0) == 0

    def test_roundtrip_within_half_lsb(self):
        adc = Adc12(0.0, 2.5)
        for volts in (0.1, 0.77, 1.25, 2.0, 2.44):
            code = adc.convert(volts)
            assert adc.to_volts(code) == pytest.approx(
                volts, abs=2.5 / FULL_SCALE_CODE)

    def test_to_volts_range_check(self):
        with pytest.raises(ValueError):
            Adc12().to_volts(-1)
        with pytest.raises(ValueError):
            Adc12().to_volts(FULL_SCALE_CODE + 1)

    def test_invalid_references(self):
        with pytest.raises(ValueError):
            Adc12(2.5, 2.5)

    def test_conversion_counter(self):
        adc = Adc12()
        adc.convert(1.0)
        adc.convert(1.0)
        assert adc.conversions == 2


class TestBiopotentialAsic:
    def test_constant_power(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        sim.run_until(seconds(60.0))
        # 10.5 mW * 60 s = 630 mJ (the paper's excluded constant).
        assert asic.energy_mj() == pytest.approx(630.0)

    def test_unconnected_channel_reads_zero(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        assert asic.read_channel(0) == 0.0

    def test_connected_source(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        asic.connect_source(3, ConstantSource(1.5))
        assert asic.read_channel(3) == 1.5

    def test_source_sees_simulation_time(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        asic.connect_source(0, SineSource(1.0, amplitude=1.0))
        values = []
        sim.at(seconds(0.25), lambda: values.append(asic.read_channel(0)))
        sim.run_until(seconds(1.0))
        assert values[0] == pytest.approx(1.0)  # sin(pi/2)

    def test_channel_bounds(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        with pytest.raises(ValueError):
            asic.read_channel(NUM_CHANNELS)
        with pytest.raises(ValueError):
            asic.connect_source(-1, ConstantSource())

    def test_25_channels_with_ecg_last(self):
        assert NUM_CHANNELS == 25
        assert ECG_CHANNEL == 24

    def test_power_off_stops_consumption(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        sim.at(seconds(30.0), asic.power_off)
        sim.run_until(seconds(60.0))
        assert asic.energy_mj() == pytest.approx(315.0)

    def test_reads_counter_and_reset(self, sim, cal):
        asic = BiopotentialAsic(sim, cal)
        asic.read_channel(0)
        asic.reset_measurement()
        assert asic.reads == 0
        assert asic.energy_mj() == 0.0


class TestBattery:
    def test_usable_energy(self):
        battery = Battery(capacity_mah=100.0, voltage_v=3.0,
                          usable_fraction=1.0)
        assert battery.usable_energy_j == pytest.approx(1080.0)

    def test_lifetime_hours(self):
        battery = Battery(capacity_mah=100.0, voltage_v=3.0,
                          usable_fraction=1.0)
        # 1080 J at 1 mW -> 1080000 s = 300 h.
        assert battery.lifetime_hours(1e-3) == pytest.approx(300.0)

    def test_lifetime_days(self):
        battery = Battery(capacity_mah=100.0, voltage_v=3.0,
                          usable_fraction=1.0)
        assert battery.lifetime_days(1e-3) == pytest.approx(12.5)

    def test_fraction_used(self):
        battery = Battery(capacity_mah=100.0, voltage_v=3.0,
                          usable_fraction=1.0)
        assert battery.fraction_used(108.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100.0, usable_fraction=0.0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100.0).lifetime_hours(0.0)
        with pytest.raises(ValueError):
            Battery(capacity_mah=100.0).fraction_used(-1.0)

    def test_presets_plausible(self):
        assert CR2477.capacity_mah == 1000.0
        assert LIPO_160.capacity_mah == 160.0


class TestFrames:
    def test_broadcast_addressing(self):
        frame = Frame(src="bs", dest=BROADCAST, kind=FrameKind.BEACON,
                      payload_bytes=9)
        assert frame.is_broadcast
        assert frame.addressed_to("anyone")

    def test_unicast_addressing(self):
        frame = Frame(src="a", dest="b", kind=FrameKind.DATA,
                      payload_bytes=18)
        assert frame.addressed_to("b")
        assert not frame.addressed_to("c")

    def test_control_classification(self):
        assert FrameKind.BEACON.is_control
        assert FrameKind.SLOT_REQUEST.is_control
        assert FrameKind.SLOT_GRANT.is_control
        assert not FrameKind.DATA.is_control

    def test_frame_ids_stamped_at_first_transmit(self):
        # Unsent frames share the "unassigned" sentinel; the radio
        # stamps a per-simulation serial at first send (a process-wide
        # counter would break repeat-run trace determinism).
        a = Frame(src="a", dest="b", kind=FrameKind.DATA, payload_bytes=1)
        b = Frame(src="a", dest="b", kind=FrameKind.DATA, payload_bytes=1)
        assert a.frame_id == b.frame_id == 0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame(src="a", dest="b", kind=FrameKind.DATA, payload_bytes=-1)

    def test_describe(self):
        frame = Frame(src="a", dest="b", kind=FrameKind.DATA,
                      payload_bytes=18)
        text = frame.describe()
        assert "a->b" in text and "18B" in text and "data" in text
