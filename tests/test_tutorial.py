"""Executable mirror of docs/tutorial.md — the tutorial cannot rot."""

import pytest


class TestTutorialSnippets:
    def test_section_1_kernel_and_ledger(self):
        from repro.sim import Simulator, seconds
        from repro.core import PowerState, PowerStateTable, \
            PowerStateLedger

        sim = Simulator(seed=0)
        table = PowerStateTable([PowerState("on", 10e-3),
                                 PowerState("off", 0.0)])
        ledger = PowerStateLedger(sim, "lamp", table, supply_v=2.8,
                                  initial_state="off")
        sim.at(seconds(2.0), lambda: ledger.transition("on"))
        sim.run_until(seconds(5.0))
        assert abs(ledger.energy_mj() - 10e-3 * 2.8 * 3.0 * 1e3) < 1e-9

    def test_section_2_radio_pair(self):
        from repro.sim import Simulator, seconds
        from repro.core import DEFAULT_CALIBRATION
        from repro.phy import Channel
        from repro.hw import Nrf2401, Frame, FrameKind

        sim = Simulator()
        channel = Channel(sim)
        tx = Nrf2401(sim, DEFAULT_CALIBRATION, channel, "tx")
        rx = Nrf2401(sim, DEFAULT_CALIBRATION, channel, "rx")
        got = []
        rx.on_frame = got.append
        tx.power_up()
        rx.power_up()
        rx.start_rx()
        tx.send(Frame(src="tx", dest="rx", kind=FrameKind.DATA,
                      payload_bytes=18))
        sim.run_until(seconds(0.01))
        assert len(got) == 1
        assert tx.energy_mj() > 0

    def test_section_3_whole_ban(self):
        from repro import run_scenario
        from repro.core import RadioEnergyCategory

        result = run_scenario(mac="static", app="ecg_streaming",
                              num_nodes=5, cycle_ms=30.0,
                              sampling_hz=205.0, measure_s=6.0)
        node = result.node("node1")
        assert abs(node.radio_mj - 50.35) < 1.0
        assert abs(node.mcu_mj - 16.15) < 0.5
        idle = node.loss_fraction(RadioEnergyCategory.IDLE_LISTENING)
        assert idle > 0.8

    def test_section_4_reproduce_table(self):
        from repro.analysis import reproduce_table3

        table = reproduce_table3(measure_s=6.0)
        assert table.mean_error("paper_sim", "radio") < 0.03
        assert "Rpeak" in table.render()

    def test_section_5_design_question(self):
        from repro.analysis import predict_analytic, tornado
        from repro.net import BanScenarioConfig

        config = BanScenarioConfig(mac="static", app="rpeak",
                                   num_nodes=5, cycle_ms=120.0,
                                   measure_s=60.0)
        prediction = predict_analytic(config)
        assert abs(prediction.total_mj - 252.4) < 1.0
        ranking = tornado(config, relative=0.1)
        assert ranking[0].parameter in ("radio_rx_current",
                                        "static_guard_lead")

    def test_section_6_extension_imports(self):
        from repro.net import MultiBanScenario
        from repro.tinyos import ThresholdDeepSleep
        from repro.baselines import fidelity_ladder
        from repro.analysis import evaluate_rpeak_cycles, pareto_front
        assert all((MultiBanScenario, ThresholdDeepSleep,
                    fidelity_ladder, evaluate_rpeak_cycles,
                    pareto_front))

    def test_section_7_fault_injection(self):
        from repro.faults import FaultPlan, NodeCrash
        from repro.mac import RecoveryConfig
        from repro.net import BanScenario, BanScenarioConfig

        plan = FaultPlan(faults=(NodeCrash(node="node1", at_s=0.3,
                                           reboot_after_s=0.5),))
        config = BanScenarioConfig(mac="static", app="ecg_streaming",
                                   num_nodes=2, cycle_ms=30.0,
                                   measure_s=2.0, seed=11, faults=plan,
                                   recovery=RecoveryConfig())
        scenario = BanScenario(config)
        result = scenario.run()
        assert scenario.fault_injector.summary() == {
            "node1": {"crashes": 1, "reboots": 1}}
        assert scenario.nodes[0].mac.is_synced
        assert BanScenario(config).run() == result
