"""Declared resource lifecycles: acquire/release pairing contracts.

The energy model is an integral of per-state current over time, so a
*leaked* resource state never crashes — it silently corrupts the
estimate.  A radio left in stand-by after its MAC stops keeps accruing
0.9 mA forever; a periodic timer never cancelled keeps the MCU waking;
a trace sink never flushed loses the post-mortem.  PR 8 fixed one
instance of this bug class dynamically (``AlohaNodeMac.on_stop``);
:class:`LifecycleSpec` declares the whole pairing discipline so the
lint suite (:mod:`repro.lint.lifecycle`, rules LIF001–LIF005) can
prove it at analysis time.

Like :class:`~repro.core.states.TransitionSpec`, every field must stay
a *pure literal*: the analyzer reads the spec out of the AST without
importing this module, which also lets a test fixture co-locate a spec
with the buggy class it describes.

Spec vocabulary
---------------
* ``acquire`` / ``release`` / ``uses`` — method names on the resource
  class: calling an ``acquire`` method obtains the resource, a
  ``release`` method returns it, and a ``uses`` method is only legal
  while acquired (``send`` after ``power_down`` is the use-after-release
  the runtime ``RadioError`` guards catch dynamically).
* ``boundary`` — ``(acquire_hook, release_hook)`` method-name pairs:
  a class whose ``acquire_hook`` (``on_start``) acquires the resource
  on every path must release it on every path out of its
  ``release_hook`` (``on_stop``).
* ``defer_attrs`` — boolean attributes that *defer* the release
  obligation to a completion callback (``self._stop_pending = True``
  while the radio is mid-ShockBurst; the TX-done callback powers
  down).  Setting one discharges the boundary obligation.
* ``acquire_on_construct`` — the constructor itself acquires (a
  ``JsonlTraceSink`` opens its file eagerly), so whoever constructs
  one owns the release obligation.
* ``release_on_unwind`` — the release must also happen on exceptional
  unwind (``try/finally`` or a ``with`` block), not just on the happy
  path: a sink that is never flushed when a command aborts loses
  exactly the trace that would explain the abort.
* ``class_paired`` — ``(open_method, close_method)`` pairs checked at
  class granularity: span phases open in one callback and close in
  another, so a class that calls ``tx_start`` somewhere must call
  ``tx_finish`` somewhere.
* ``handle_factories`` / ``reschedule_factories`` — scheduling methods
  returning a cancellable :data:`~repro.sim.events.EventEntry`.
  Discarding a *periodic* handle (``every``) makes the event
  uncancellable forever; discarding a one-shot handle
  (``at``/``after``) is fine **unless** the callback unconditionally
  re-schedules itself, which is a periodic event in disguise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class LifecycleSpec:
    """Declared acquire/release protocol of one resource family.

    Attributes:
        resource: short label used in findings (``"radio"``).
        module: module path (suffix) where the resource classes live;
            methods *of* those classes are exempt from the checks
            (the radio may manipulate its own state freely).
        class_names: the resource classes this spec governs.
        acquire: method names that obtain the resource.
        release: method names that return it.
        uses: method names legal only while acquired.
        acquire_on_construct: the constructor acquires (open-on-init).
        idempotent_release: releasing twice is a no-op (``close``)
            rather than an error (``power_down`` raises).
        boundary: ``(acquire_hook, release_hook)`` name pairs checked
            across methods of an owning class.
        defer_attrs: boolean attributes whose ``True`` assignment
            defers the release to a completion callback.
        release_on_unwind: the release must be exception-safe.
        class_paired: ``(open, close)`` method pairs checked at class
            granularity (cross-callback span phases).
        handle_factories: factory methods whose *periodic* handle must
            not be discarded.
        reschedule_factories: one-shot factory methods whose handle
            must not be discarded by an unconditional self-rescheduler.
    """

    resource: str
    module: str
    class_names: Tuple[str, ...]
    acquire: Tuple[str, ...] = field(default=())
    release: Tuple[str, ...] = field(default=())
    uses: Tuple[str, ...] = field(default=())
    acquire_on_construct: bool = False
    idempotent_release: bool = True
    boundary: Tuple[Tuple[str, str], ...] = field(default=())
    defer_attrs: Tuple[str, ...] = field(default=())
    release_on_unwind: bool = False
    class_paired: Tuple[Tuple[str, str], ...] = field(default=())
    handle_factories: Tuple[str, ...] = field(default=())
    reschedule_factories: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.resource:
            raise ValueError("resource label must be non-empty")
        if not self.class_names:
            raise ValueError(
                f"{self.resource}: class_names must be non-empty")
        if self.boundary and not (self.acquire
                                  or self.handle_factories):
            raise ValueError(
                f"{self.resource}: a boundary needs acquire methods "
                f"(or handle factories) to pair against")
        if self.boundary and not self.release:
            raise ValueError(
                f"{self.resource}: a boundary needs release methods")
        for opener, closer in self.class_paired:
            if opener == closer:
                raise ValueError(
                    f"{self.resource}: class pair {opener!r} cannot "
                    f"close itself")
        overlap = set(self.acquire) & set(self.release)
        if overlap:
            raise ValueError(
                f"{self.resource}: methods {sorted(overlap)} both "
                f"acquire and release")


#: nRF2401 transceiver: ``power_up`` must pair with ``power_down``
#: across every Component ``on_start``/``on_stop`` boundary, with
#: ``_stop_pending`` as the documented mid-ShockBurst deferral (the
#: chip cannot switch off while transmitting; the TX-done callback
#: completes the release).  ``send``/``start_rx``/``cca`` after
#: ``power_down`` is the use-after-release the runtime RadioError
#: guards catch dynamically — LIF003 proves it statically.
RADIO_LIFECYCLE = LifecycleSpec(
    resource="radio",
    module="hw/radio.py",
    class_names=("Nrf2401",),
    acquire=("power_up",),
    release=("power_down",),
    uses=("send", "start_rx", "stop_rx", "cca"),
    idempotent_release=False,
    boundary=(("on_start", "on_stop"),),
    defer_attrs=("_stop_pending",),
)

#: TinyOS-style virtual timer: a timer armed in ``on_start`` must be
#: stopped in ``on_stop`` (``stop`` is idempotent, and re-arming after
#: a stop is legal, so there is no use-after-release surface).
TIMER_LIFECYCLE = LifecycleSpec(
    resource="timer",
    module="tinyos/timers.py",
    class_names=("VirtualTimer",),
    acquire=("start_one_shot", "start_periodic"),
    release=("stop",),
    idempotent_release=True,
    boundary=(("on_start", "on_stop"),),
)

#: Kernel scheduling handles: ``every`` returns the one persistent
#: entry of a periodic event — discarding it makes the tick
#: uncancellable for the rest of the run.  ``at``/``after`` one-shots
#: may be fire-and-forget, *except* when the callback unconditionally
#: re-schedules itself (a periodic in disguise: nothing can ever stop
#: it).  A handle stored in ``on_start`` must be cancelled on the
#: ``on_stop`` path.
HANDLE_LIFECYCLE = LifecycleSpec(
    resource="sched-handle",
    module="sim/kernel.py",
    class_names=("Simulator",),
    release=("cancel", "cancel_event"),
    boundary=(("on_start", "on_stop"),),
    handle_factories=("every",),
    reschedule_factories=("at", "after"),
)

#: Structured trace sinks: opened eagerly on construction, so the
#: constructor's caller owns the flush-and-close — including on the
#: exceptional unwind path (``try/finally`` or ``with``), because a
#: sink that is never flushed when a run aborts loses exactly the
#: trace that would explain the abort.
SINK_LIFECYCLE = LifecycleSpec(
    resource="trace-sink",
    module="obs/sinks.py",
    class_names=("JsonlTraceSink", "SinkTraceRecorder"),
    acquire_on_construct=True,
    release=("close",),
    uses=("emit",),
    idempotent_release=True,
    release_on_unwind=True,
)

#: Causal span phases: ``tx_start`` opens the settle phase and
#: ``tx_finish`` closes the tail; ``air_begin``/``air_end`` bracket
#: the airtime.  The open and close live in different callbacks of the
#: same component, so the pairing is checked per *class*: a class that
#: opens a phase must close it somewhere.
SPAN_LIFECYCLE = LifecycleSpec(
    resource="span",
    module="obs/spans.py",
    class_names=("SpanTracer",),
    class_paired=(("tx_start", "tx_finish"), ("air_begin", "air_end")),
)

#: All declared lifecycle protocols, for tests and tooling.
ALL_LIFECYCLE_SPECS: Tuple[LifecycleSpec, ...] = (
    RADIO_LIFECYCLE, TIMER_LIFECYCLE, HANDLE_LIFECYCLE,
    SINK_LIFECYCLE, SPAN_LIFECYCLE,
)


__all__ = [
    "ALL_LIFECYCLE_SPECS",
    "HANDLE_LIFECYCLE",
    "LifecycleSpec",
    "RADIO_LIFECYCLE",
    "SINK_LIFECYCLE",
    "SPAN_LIFECYCLE",
    "TIMER_LIFECYCLE",
]
