"""Power-state waveform capture and VCD export.

For EDA-style debugging, the power behaviour of a BAN *is* a waveform:
each component's power state over time.  :class:`WaveformProbe`
subscribes to component ledgers' transition hooks and records the state
timeline; :func:`write_vcd` serialises the captured timelines as a
Value Change Dump viewable in GTKWave & co. (string-typed signals, 1 ns
timescale — the simulator's native resolution).

Typical use::

    scenario = BanScenario(config)
    probe = WaveformProbe.attach_to_scenario(scenario)
    scenario.run()
    probe.write_vcd("ban.vcd")

Probes also answer timing questions directly (tests use this):
``probe.intervals("node1.radio", "rx")`` returns the exact RX windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, IO, List, Optional, Tuple, Union

from ..core.ledger import PowerStateLedger

if TYPE_CHECKING:
    from ..net.scenario import BanScenario


@dataclass(frozen=True)
class StateChange:
    """One recorded transition."""

    time: int
    state: str
    tag: str


class WaveformProbe:
    """Records power-state timelines from any number of ledgers."""

    def __init__(self) -> None:
        self._timelines: Dict[str, List[StateChange]] = {}
        self._ledgers: Dict[str, PowerStateLedger] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, name: str, ledger: PowerStateLedger) -> None:
        """Start recording ``ledger`` under signal name ``name``."""
        if name in self._timelines:
            raise ValueError(f"duplicate waveform signal {name!r}")
        timeline: List[StateChange] = [
            StateChange(0, ledger.state, ledger.tag)]
        self._timelines[name] = timeline
        self._ledgers[name] = ledger
        ledger.on_transition = (
            lambda time, state, tag:
            timeline.append(StateChange(time, state, tag)))

    @classmethod
    def attach_to_scenario(cls,
                           scenario: "BanScenario") -> "WaveformProbe":
        """Probe every radio and MCU in a built (un-run) BanScenario."""
        probe = cls()
        probe.attach("base_station.radio",
                     scenario.base_station.radio.ledger)
        probe.attach("base_station.mcu", scenario.base_station.mcu.ledger)
        for node in scenario.nodes:
            probe.attach(f"{node.node_id}.radio", node.radio.ledger)
            probe.attach(f"{node.node_id}.mcu", node.mcu.ledger)
        return probe

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def signals(self) -> List[str]:
        """Recorded signal names."""
        return sorted(self._timelines)

    def timeline(self, name: str) -> List[StateChange]:
        """The raw change list for one signal."""
        try:
            return list(self._timelines[name])
        except KeyError:
            raise KeyError(
                f"unknown signal {name!r}; known: {self.signals}") from None

    def intervals(self, name: str, state: str,
                  end_time: Optional[int] = None
                  ) -> List[Tuple[int, int]]:
        """Closed intervals [start, end) the signal spent in ``state``.

        The trailing open interval is closed at ``end_time`` (defaults
        to the last recorded change, i.e. dropped).
        """
        changes = self._timelines.get(name)
        if changes is None:
            raise KeyError(f"unknown signal {name!r}")
        out: List[Tuple[int, int]] = []
        current_start: Optional[int] = None
        for change in changes:
            if current_start is not None and change.state != state:
                # Re-tags within the same state do not split an interval.
                out.append((current_start, change.time))
                current_start = None
            elif current_start is None and change.state == state:
                current_start = change.time
        if current_start is not None and end_time is not None \
                and end_time > current_start:
            out.append((current_start, end_time))
        # Merge zero-length artefacts (same-instant transitions).
        return [(a, b) for a, b in out if b > a]

    # ------------------------------------------------------------------
    # VCD export
    # ------------------------------------------------------------------
    def write_vcd(self, path_or_file: Union[str, IO[str]],
                  timescale: str = "1 ns") -> None:
        """Serialise all timelines as a VCD file.

        States are emitted as VCD string (real-text) signals, one per
        component, so viewers show named power states directly.
        """
        if hasattr(path_or_file, "write"):
            self._write_vcd(path_or_file, timescale)
            return
        with open(path_or_file, "w") as handle:
            self._write_vcd(handle, timescale)

    def _write_vcd(self, out: IO[str], timescale: str) -> None:
        out.write("$date reproduction run $end\n")
        out.write("$version repro BAN energy simulator $end\n")
        out.write(f"$timescale {timescale} $end\n")
        out.write("$scope module ban $end\n")
        codes: Dict[str, str] = {}
        for index, name in enumerate(self.signals):
            code = self._identifier(index)
            codes[name] = code
            safe = name.replace(".", "_")
            out.write(f"$var string 1 {code} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        events: List[Tuple[int, str, str]] = []
        for name, changes in self._timelines.items():
            for change in changes:
                value = f"{change.state}"
                if change.tag != change.state:
                    value += f":{change.tag}"
                events.append((change.time, codes[name], value))
        events.sort(key=lambda e: e[0])

        current_time: Optional[int] = None
        for time, code, value in events:
            if time != current_time:
                out.write(f"#{time}\n")
                current_time = time
            out.write(f"s{value} {code}\n")

    @staticmethod
    def _identifier(index: int) -> str:
        # Printable VCD identifier characters: '!' (33) .. '~' (126).
        chars = []
        index += 1
        while index:
            index, rem = divmod(index - 1, 94)
            chars.append(chr(33 + rem))
        return "".join(reversed(chars))


__all__ = ["StateChange", "WaveformProbe"]
