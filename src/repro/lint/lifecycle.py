"""Typestate lifecycle verification (rules LIF001–LIF005).

The energy model integrates per-state current over time, so a leaked
resource never crashes — it silently corrupts the estimate.  A radio
left in stand-by after its MAC stops books 0.9 mA forever; an
uncancelled periodic event keeps firing into a stopped component; a
trace sink that is never flushed on an exceptional unwind loses
exactly the post-mortem that would explain the failure.  PR 8 fixed
one instance of this bug class dynamically; this pass proves the whole
acquire/release discipline statically, the way the effect pass turned
determinism check 4 into a compile-time guarantee.

Protocols are declared as pure-literal
:class:`repro.core.lifecycles.LifecycleSpec` tables and — like
``TransitionSpec`` — read out of the AST, never imported, so a test
fixture can co-locate a spec with the buggy class it describes.

Abstract interpretation
-----------------------
Per function, the pass walks statements forward tracking an abstract
state per *resource key* (the dotted receiver text: ``self._radio``,
``sink``, ``obs._sink``) as a set over

    A = acquired · R = released · D = release deferred to a
    completion callback · N = null/never acquired · U = unknown

Branches walk on copies and merge by union; ``return`` records an exit
snapshot with its guard context; ``K is None`` / ``K is not None``
guards narrow the state (and prune statically infeasible branches,
which is what makes ``if self._sink is not None: self._sink.close()``
a *complete* release).  ``try/finally`` and ``with`` mark releases as
unwind-protected.  Calls to helper methods apply memoized
interprocedural acquire/release summaries mapped across the receiver,
so a release inside a helper or subclass override still discharges
the obligation.

Rules
-----
* **LIF001** — a resource acquired on every path through a declared
  boundary's acquire hook (``on_start``) is still acquired on some
  path out of its release hook (``on_stop``); the message carries the
  witness exit.  Also: an ``acquire_on_construct`` resource built
  locally and never released, a release required on exceptional
  unwind that only happens on the happy path, and a class that opens
  a ``class_paired`` span phase it never closes.
* **LIF002** — release without a matching acquire: a second
  ``power_down`` on a definitely-released radio (releases declared
  ``idempotent_release`` are exempt).
* **LIF003** — use-after-release: ``send``/``start_rx`` on a
  definitely powered-down radio.  This statically re-derives the
  runtime ``RadioError`` guards.
* **LIF004** — an escaping resource with no owner: a periodic
  ``every()`` handle discarded (uncancellable forever), an
  unconditionally self-rescheduling one-shot whose handle is
  discarded (a periodic in disguise), or a constructed resource
  stored on ``self`` that no method of the class ever releases.
* **LIF005** — a conditional acquire whose release is guarded by a
  *different* condition, so the pairing silently decorrelates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, List, Optional, Sequence, Set,
                    Tuple)

from .callgraph import CallGraph, CallSite, FunctionNode, build_call_graph
from .config import LintConfig
from .dataflow import literal_or_none, walk_skipping_lambdas
from .engine import FileContext, Finding

CODES = ("LIF001", "LIF002", "LIF003", "LIF004", "LIF005")

State = FrozenSet[str]
Env = Dict[str, State]

ACQUIRED: State = frozenset({"A"})
RELEASED: State = frozenset({"R"})
DEFERRED: State = frozenset({"D"})
NULL: State = frozenset({"N"})
UNKNOWN: State = frozenset({"U"})

#: Receiver-name tails treated as "the simulator" when type inference
#: comes up empty (``self._sim.after(...)`` in untyped code).
_SIMISH_TAILS = ("sim", "_sim")


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pathologically deep guards
        return "<expr>"


@dataclass(frozen=True)
class LifecycleSpecInfo:
    """A ``LifecycleSpec`` literal read out of a module's AST."""

    resource: str
    module: str
    class_names: Tuple[str, ...]
    acquire: Tuple[str, ...]
    release: Tuple[str, ...]
    uses: Tuple[str, ...]
    acquire_on_construct: bool
    idempotent_release: bool
    boundary: Tuple[Tuple[str, str], ...]
    defer_attrs: Tuple[str, ...]
    release_on_unwind: bool
    class_paired: Tuple[Tuple[str, str], ...]
    handle_factories: Tuple[str, ...]
    reschedule_factories: Tuple[str, ...]
    ctx: FileContext
    lineno: int


def _extract_specs(contexts: Sequence[FileContext]
                   ) -> List[LifecycleSpecInfo]:
    """Harvest every module-level ``X = LifecycleSpec(...)`` literal."""
    specs: List[LifecycleSpecInfo] = []
    for ctx in contexts:
        for stmt in ctx.tree.body:  # type: ignore[attr-defined]
            if not (isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)):
                continue
            func = stmt.value.func
            name = func.attr if isinstance(func, ast.Attribute) \
                else getattr(func, "id", None)
            if name != "LifecycleSpec":
                continue
            fields: Dict[str, object] = {}
            for keyword in stmt.value.keywords:
                if keyword.arg is not None:
                    fields[keyword.arg] = literal_or_none(keyword.value)
            try:
                specs.append(LifecycleSpecInfo(
                    resource=str(fields["resource"]),
                    module=str(fields["module"]),
                    class_names=tuple(
                        str(c) for c in fields["class_names"]),  # type: ignore[union-attr]
                    acquire=tuple(
                        str(m) for m in fields.get("acquire", ()) or ()),  # type: ignore[union-attr]
                    release=tuple(
                        str(m) for m in fields.get("release", ()) or ()),  # type: ignore[union-attr]
                    uses=tuple(
                        str(m) for m in fields.get("uses", ()) or ()),  # type: ignore[union-attr]
                    acquire_on_construct=bool(
                        fields.get("acquire_on_construct", False)),
                    idempotent_release=bool(
                        fields.get("idempotent_release", True)),
                    boundary=tuple(
                        (str(a), str(r))
                        for a, r in fields.get("boundary", ()) or ()),  # type: ignore[union-attr]
                    defer_attrs=tuple(
                        str(a) for a in fields.get("defer_attrs", ())
                        or ()),  # type: ignore[union-attr]
                    release_on_unwind=bool(
                        fields.get("release_on_unwind", False)),
                    class_paired=tuple(
                        (str(a), str(b))
                        for a, b in fields.get("class_paired", ())
                        or ()),  # type: ignore[union-attr]
                    handle_factories=tuple(
                        str(m) for m in fields.get("handle_factories", ())
                        or ()),  # type: ignore[union-attr]
                    reschedule_factories=tuple(
                        str(m)
                        for m in fields.get("reschedule_factories", ())
                        or ()),  # type: ignore[union-attr]
                    ctx=ctx, lineno=stmt.lineno))
            except (KeyError, TypeError, ValueError):
                continue  # malformed literal: the spec's own tests catch it
    return specs


@dataclass
class _Event:
    """One lifecycle-relevant action observed during a walk."""

    kind: str  #: acquire | may-acquire | release | may-release | defer | use
    key: str
    spec: LifecycleSpecInfo
    line: int
    col: int
    guards: Tuple[str, ...]
    protected: bool
    #: True for stored one-shot handles (``at``/``after``): tracked for
    #: double-cancel/use checks but carrying no boundary obligation.
    weak: bool = False


@dataclass
class _WalkResult:
    """Everything one path-sensitive pass over a function produced."""

    exits: List[Tuple[Env, int, Tuple[str, ...]]]
    events: List[_Event]
    findings: List[Finding]
    call_lines: Set[int]
    key_specs: Dict[str, LifecycleSpecInfo]


@dataclass
class _Summary:
    """Interprocedural acquire/release summary of one function.

    Keys are ``self.``-rooted attribute paths; callers map them across
    the call-site receiver (``obs.finish()`` turns ``self._sink`` into
    ``obs._sink``).
    """

    must_acquire: FrozenSet[str] = frozenset()
    may_acquire: Dict[str, int] = field(default_factory=dict)
    may_release: FrozenSet[str] = frozenset()
    defers: FrozenSet[str] = frozenset()
    key_specs: Dict[str, LifecycleSpecInfo] = field(default_factory=dict)


def _merge(branches: List[Optional[Env]]) -> Optional[Env]:
    """Union-join sibling branch environments.

    Terminated branches contribute nothing; a key missing from a
    surviving branch contributes ``U`` (that branch knows nothing
    about it), so ``if c: acquire(k)`` merges to ``{A, U}`` — maybe
    acquired, which is exactly what a later exit-leak check needs.
    """
    alive = [env for env in branches if env is not None]
    if not alive:
        return None
    keys: Set[str] = set()
    for env in alive:
        keys.update(env)
    merged: Env = {}
    for key in keys:
        state: Set[str] = set()
        for env in alive:
            state |= env.get(key, UNKNOWN)
        merged[key] = frozenset(state)
    return merged


class _Walker:
    """One path-sensitive pass over a single function body."""

    def __init__(self, analysis: "LifecycleAnalysis",
                 function: FunctionNode,
                 seed: Optional[Env] = None,
                 seed_specs: Optional[Dict[str, LifecycleSpecInfo]] = None,
                 concrete_class: Optional[str] = None) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.function = function
        self.concrete = concrete_class or function.class_name
        self.type_env = self.graph._local_env(function)
        self.sites: Dict[int, CallSite] = {
            id(site.call): site
            for site in self.graph.calls.get(function.qualname, ())}
        self.specs = [spec for spec in analysis.specs
                      if not analysis.exempt(function, spec)]
        self.key_specs: Dict[str, LifecycleSpecInfo] = \
            dict(seed_specs or {})
        self.seed: Env = dict(seed or {})
        self.exits: List[Tuple[Env, int, Tuple[str, ...]]] = []
        self.events: List[_Event] = []
        self.findings: List[Finding] = []
        self.call_lines: Set[int] = set()
        self.guards: List[str] = []
        self.protect_depth = 0

    # -- event/finding plumbing -----------------------------------------

    def _event(self, kind: str, key: str, spec: LifecycleSpecInfo,
               node: ast.AST, weak: bool = False,
               protected: Optional[bool] = None) -> None:
        self.events.append(_Event(
            kind=kind, key=key, spec=spec,
            line=getattr(node, "lineno", self.function.lineno),
            col=getattr(node, "col_offset", 0),
            guards=tuple(self.guards),
            protected=(self.protect_depth > 0
                       if protected is None else protected),
            weak=weak))
        self.key_specs[key] = spec

    def _finding(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(self.function.ctx.finding_at(
            rule, getattr(node, "lineno", self.function.lineno),
            getattr(node, "col_offset", 0), message))

    # -- driving ---------------------------------------------------------

    def run(self) -> _WalkResult:
        body = list(getattr(self.function.node, "body", []))
        env = self._walk_stmts(body, dict(self.seed))
        if env is not None:
            last = getattr(body[-1], "end_lineno", None) if body else None
            self.exits.append((env, last or self.function.lineno,
                               tuple(self.guards)))
        return _WalkResult(exits=self.exits, events=self.events,
                           findings=self.findings,
                           call_lines=self.call_lines,
                           key_specs=self.key_specs)

    def _walk_stmts(self, stmts: Sequence[ast.stmt],
                    env: Optional[Env]) -> Optional[Env]:
        for stmt in stmts:
            if env is None:
                break
            env = self._walk_stmt(stmt, env)
        return env

    def _walk_stmt(self, stmt: ast.stmt, env: Env) -> Optional[Env]:
        if isinstance(stmt, ast.If):
            return self._walk_if(stmt, env)
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._scan_expr(stmt.value, env)
                self._mark_escapes(stmt.value, env)
            self.exits.append((dict(env), stmt.lineno,
                               tuple(self.guards)))
            return None
        if isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._scan_expr(stmt.exc, env)
            return None  # exceptional exit: not a boundary fall-through
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._walk_with(stmt, env)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            self._scan_expr(head, env)
            body_env = self._walk_stmts(stmt.body, dict(env))
            merged = _merge([env, body_env])
            return self._walk_stmts(stmt.orelse, merged)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return self._walk_assign(stmt, env)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return None
        self._scan_stmt(stmt, env)
        return env

    # -- branching -------------------------------------------------------

    def _walk_if(self, stmt: ast.If, env: Env) -> Optional[Env]:
        self._scan_expr(stmt.test, env)
        guard = _expr_text(stmt.test)
        narrowings = self._narrowings(stmt.test)
        then_env: Optional[Env] = dict(env)
        for key, is_none in narrowings:
            then_env = self._narrow(then_env, key, is_none)
        if then_env is not None:
            self.guards.append(guard)
            then_env = self._walk_stmts(stmt.body, then_env)
            self.guards.pop()
        else_env: Optional[Env] = dict(env)
        if len(narrowings) == 1:  # single clause: the negation narrows too
            key, is_none = narrowings[0]
            else_env = self._narrow(else_env, key, not is_none)
        if else_env is not None:
            self.guards.append(f"not ({guard})")
            else_env = self._walk_stmts(stmt.orelse, else_env)
            self.guards.pop()
        return _merge([then_env, else_env])

    def _narrowings(self, test: ast.AST) -> List[Tuple[str, bool]]:
        """``(key, is_none)`` facts this test implies when *true*."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            found: List[Tuple[str, bool]] = []
            for value in test.values:
                found.extend(self._narrowings(value))
            return found
        if isinstance(test, ast.UnaryOp) \
                and isinstance(test.op, ast.Not):
            inner = self._narrowings(test.operand)
            if len(inner) == 1:
                key, is_none = inner[0]
                return [(key, not is_none)]
            return []
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.ops[0], (ast.Is, ast.IsNot)) \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            key = _dotted(test.left)
            if key is not None:
                return [(key, isinstance(test.ops[0], ast.Is))]
        return []

    def _narrow(self, env: Optional[Env], key: str,
                is_none: bool) -> Optional[Env]:
        """Refine ``key`` under a None test; None when infeasible."""
        if env is None or key not in env:
            return env
        removed = frozenset({"A", "D"}) if is_none else NULL
        narrowed = env[key] - removed
        if not narrowed:
            return None  # e.g. definitely-acquired tested `is None`
        env[key] = narrowed
        return env

    def _walk_try(self, stmt: ast.Try, env: Env) -> Optional[Env]:
        pre = dict(env)
        body_env = self._walk_stmts(stmt.body, dict(env))
        handler_seed = _merge([dict(pre), body_env]) or dict(pre)
        handler_envs: List[Optional[Env]] = []
        for handler in stmt.handlers:
            handler_envs.append(
                self._walk_stmts(handler.body, dict(handler_seed)))
        if stmt.orelse and body_env is not None:
            body_env = self._walk_stmts(stmt.orelse, body_env)
        merged = _merge([body_env, *handler_envs])
        if stmt.finalbody:
            base = merged if merged is not None else dict(handler_seed)
            self.protect_depth += 1
            final_env = self._walk_stmts(stmt.finalbody, dict(base))
            self.protect_depth -= 1
            if merged is None:
                return None
            return final_env
        return merged

    def _walk_with(self, stmt: ast.stmt, env: Env) -> Optional[Env]:
        items = stmt.items  # type: ignore[union-attr]
        managed: List[str] = []
        for item in items:
            self._scan_expr(item.context_expr, env)
            spec = self._ctor_spec(item.context_expr)
            if spec is not None \
                    and isinstance(item.optional_vars, ast.Name):
                key = item.optional_vars.id
                env[key] = ACQUIRED
                self._event("acquire", key, spec, item.context_expr)
                managed.append(key)
        body_env = self._walk_stmts(
            stmt.body, env)  # type: ignore[union-attr]
        for key in managed:
            # __exit__ releases on every path, including unwind.
            self._event("release", key, self.key_specs[key], stmt,
                        protected=True)
            if body_env is not None:
                body_env[key] = RELEASED
        return body_env

    # -- assignments -----------------------------------------------------

    def _walk_assign(self, stmt: ast.stmt, env: Env) -> Env:
        value = getattr(stmt, "value", None)
        if value is not None:
            self._scan_expr(value, env)
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        else:
            targets = [stmt.target]  # type: ignore[attr-defined]
        if value is None or len(targets) != 1:
            return env
        target = targets[0]
        key = _dotted(target)
        if key is None:
            return env
        # Defer flags: ``self._stop_pending = True`` hands the release
        # obligation to a completion callback.
        if isinstance(target, ast.Attribute) \
                and isinstance(value, ast.Constant) and value.value is True:
            attr = target.attr
            for spec in self.specs:
                if attr not in spec.defer_attrs:
                    continue
                for tracked, tracked_spec in list(self.key_specs.items()):
                    if tracked_spec is spec and tracked in env \
                            and "A" in env[tracked]:
                        env[tracked] = DEFERRED
                        self._event("defer", tracked, spec, stmt)
            return env
        ctor = self._ctor_spec(value)
        if ctor is not None:
            env[key] = ACQUIRED
            self._event("acquire", key, ctor, stmt)
            return env
        factory = self._factory_spec(value, env)
        if factory is not None:
            spec, weak = factory
            env[key] = ACQUIRED
            self._event("acquire", key, spec, stmt, weak=weak)
            return env
        if isinstance(value, ast.Constant) and value.value is None:
            if key in env and "A" not in env[key]:
                env[key] = NULL
        return env

    def _ctor_spec(self, value: ast.AST) -> Optional[LifecycleSpecInfo]:
        """The spec whose class ``value`` evidently constructs."""
        if not isinstance(value, ast.Call):
            return None
        name = _dotted(value.func)
        if name is None:
            return None
        tail = name.split(".")[-1]
        for spec in self.specs:
            if spec.acquire_on_construct and tail in spec.class_names:
                return spec
        return None

    def _factory_spec(self, value: ast.AST, env: Env
                      ) -> Optional[Tuple[LifecycleSpecInfo, bool]]:
        """``(spec, weak)`` when ``value`` is a handle-factory call."""
        if not (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)):
            return None
        method = value.func.attr
        for spec in self.specs:
            strong = method in spec.handle_factories
            weak = method in spec.reschedule_factories
            if not (strong or weak):
                continue
            if self._receiver_is(value.func.value, spec):
                return spec, not strong
        return None

    def _receiver_is(self, receiver: ast.AST,
                     spec: LifecycleSpecInfo) -> bool:
        """Whether ``receiver`` is (or may be) a spec-class instance."""
        types = self.graph._expr_types(receiver, self.type_env)
        if any(t in spec.class_names for t in types):
            return True
        if spec.handle_factories or spec.reschedule_factories:
            text = _dotted(receiver) or ""
            tail = text.split(".")[-1].lower()
            if tail in _SIMISH_TAILS:
                return True
        return False

    def _mark_escapes(self, value: ast.AST, env: Env) -> None:
        """Returning a tracked local transfers ownership out."""
        for node in ast.walk(value):
            if isinstance(node, ast.Name) and node.id in env:
                env[node.id] = NULL

    # -- calls -----------------------------------------------------------

    def _scan_stmt(self, stmt: ast.stmt, env: Env) -> None:
        for node in walk_skipping_lambdas(stmt):
            if isinstance(node, ast.Call):
                self._handle_call(node, env)

    def _scan_expr(self, expr: ast.AST, env: Env) -> None:
        for node in walk_skipping_lambdas(expr):
            if isinstance(node, ast.Call):
                self._handle_call(node, env)

    def _handle_call(self, call: ast.Call, env: Env) -> None:
        self.call_lines.add(call.lineno)
        func = call.func
        if isinstance(func, ast.Name):
            # ``cancel_event(handle)``-style module-function releases.
            for spec in self.specs:
                if (spec.handle_factories or spec.reschedule_factories) \
                        and func.id in spec.release and call.args:
                    key = _dotted(call.args[0])
                    if key is not None:
                        self._release(key, spec, call, env)
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        receiver = func.value
        key = _dotted(receiver)
        for spec in self.specs:
            relevant = (method in spec.acquire or method in spec.release
                        or method in spec.uses)
            if not relevant or key is None:
                continue
            tracked = key in env and self.key_specs.get(key) is spec
            if not tracked and not self._receiver_is(receiver, spec):
                continue
            if method in spec.acquire:
                env[key] = ACQUIRED
                self._event("acquire", key, spec, call)
            elif method in spec.release:
                self._release(key, spec, call, env)
            elif method in spec.uses:
                if env.get(key) == RELEASED:
                    self._finding(
                        "LIF003", call,
                        f"use-after-release: {method}() on "
                        f"{spec.resource} {key!r} which is released "
                        f"(every path to this call passed its "
                        f"release) — the static form of the runtime "
                        f"guard that raises here")
            return
        self._apply_summaries(call, method, receiver, key, env)

    def _release(self, key: str, spec: LifecycleSpecInfo,
                 call: ast.Call, env: Env) -> None:
        prior = env.get(key)
        if prior == RELEASED and not spec.idempotent_release:
            self._finding(
                "LIF002", call,
                f"release without matching acquire: {spec.resource} "
                f"{key!r} is already released on every path to this "
                f"call — a second release is an error for this "
                f"resource")
        env[key] = RELEASED
        self._event("release", key, spec, call)

    def _apply_summaries(self, call: ast.Call, method: str,
                         receiver: ast.AST, receiver_text: Optional[str],
                         env: Env) -> None:
        """Map a helper call's acquire/release summary into this env."""
        site = self.sites.get(id(call))
        if site is None or not site.targets or receiver_text is None:
            return
        if receiver_text == "self" and self.concrete is not None:
            targets = self._concrete_targets(method) or list(site.targets)
        else:
            if not self.graph._expr_types(receiver, self.type_env):
                return
            targets = list(site.targets)
        targets = [t for t in targets
                   if t in self.graph.functions
                   and self.graph.functions[t].class_name is not None]
        if not targets:
            return
        summaries = [self.analysis.summary(t) for t in targets]
        keys: Set[str] = set()
        for summary in summaries:
            keys.update(summary.may_acquire)
            keys.update(summary.must_acquire)
            keys.update(summary.may_release)
            keys.update(summary.defers)
        for key in sorted(keys):
            spec = next((s.key_specs[key] for s in summaries
                         if key in s.key_specs), None)
            if spec is None or self.analysis.exempt(self.function, spec):
                continue
            mapped = key if receiver_text == "self" \
                else receiver_text + key[len("self"):]
            released = [s for s in summaries
                        if key in s.may_release or key in s.defers]
            if released:
                must = (len(released) == len(summaries)
                        and all(self.analysis.discharges(t, key, spec)
                                for t in targets))
                deferred = any(key in s.defers for s in summaries)
                state = DEFERRED if deferred else RELEASED
                if must:
                    env[mapped] = state
                    self._event("defer" if deferred else "release",
                                mapped, spec, call)
                else:
                    env[mapped] = frozenset(
                        env.get(mapped, UNKNOWN) | state)
                    self._event("may-release", mapped, spec, call)
            acquired = [s for s in summaries
                        if key in s.may_acquire or key in s.must_acquire]
            if acquired:
                if all(key in s.must_acquire for s in summaries):
                    env[mapped] = ACQUIRED
                    self._event("acquire", mapped, spec, call)
                else:
                    env[mapped] = frozenset(
                        env.get(mapped, UNKNOWN) | ACQUIRED)
                    self._event("may-acquire", mapped, spec, call)

    def _concrete_targets(self, method: str) -> List[str]:
        """Resolve ``self.method()`` through the concrete class MRO."""
        found: List[str] = []
        for info in self.graph.classes.get(self.concrete or "", ()):
            resolved = self.graph._lookup_method(info, method)
            if resolved is not None:
                found.append(resolved.qualname)
        return found


class LifecycleAnalysis:
    """Whole-tree lifecycle verification over a built call graph."""

    def __init__(self, graph: CallGraph, config: LintConfig,
                 specs: Sequence[LifecycleSpecInfo]) -> None:
        self.graph = graph
        self.config = config
        self.specs = list(specs)
        self.findings: List[Finding] = []
        self._summaries: Dict[str, _Summary] = {}
        self._discharge_cache: Dict[Tuple[str, str], bool] = {}
        self._active: Set[str] = set()
        self.boundary_checks = 0

    def exempt(self, function: FunctionNode,
               spec: LifecycleSpecInfo) -> bool:
        """The resource's own module/classes manage state freely."""
        if function.module_path.endswith(spec.module):
            return True
        if function.class_name is not None \
                and function.class_name in spec.class_names:
            return True
        return any(function.module_path.endswith(suffix)
                   for suffix in self.config.lifecycle_exclude_modules)

    # -- interprocedural summaries ---------------------------------------

    def summary(self, qualname: str) -> _Summary:
        cached = self._summaries.get(qualname)
        if cached is not None:
            return cached
        token = f"sum:{qualname}"
        if token in self._active \
                or qualname not in self.graph.functions:
            return _Summary()
        self._active.add(token)
        try:
            function = self.graph.functions[qualname]
            result = _Walker(self, function).run()
        finally:
            self._active.discard(token)
        may_acquire: Dict[str, int] = {}
        may_release: Set[str] = set()
        defers: Set[str] = set()
        key_specs: Dict[str, LifecycleSpecInfo] = {}
        for event in result.events:
            if not event.key.startswith("self."):
                continue
            key_specs[event.key] = event.spec
            if event.kind in ("acquire", "may-acquire") \
                    and not event.weak:
                may_acquire.setdefault(event.key, event.line)
            elif event.kind in ("release", "may-release"):
                may_release.add(event.key)
            elif event.kind == "defer":
                defers.add(event.key)
        must_acquire = frozenset(
            key for key in may_acquire
            if result.exits
            and all(env.get(key) == ACQUIRED
                    for env, _, _ in result.exits))
        summary = _Summary(must_acquire=must_acquire,
                           may_acquire=may_acquire,
                           may_release=frozenset(may_release),
                           defers=frozenset(defers),
                           key_specs=key_specs)
        self._summaries[qualname] = summary
        return summary

    def discharges(self, qualname: str, key: str,
                   spec: LifecycleSpecInfo) -> bool:
        """Whether a call to ``qualname`` releases/defers ``key`` on
        every non-raising path, given it enters acquired."""
        cache_key = (qualname, key)
        cached = self._discharge_cache.get(cache_key)
        if cached is not None:
            return cached
        token = f"dis:{qualname}:{key}"
        if token in self._active \
                or qualname not in self.graph.functions:
            return True  # optimistic on cycles: a must-property GFP
        self._active.add(token)
        try:
            ok, _ = self._seeded_walk(
                self.graph.functions[qualname], key, spec, None)
        finally:
            self._active.discard(token)
        self._discharge_cache[cache_key] = ok
        return ok

    def _seeded_walk(self, function: FunctionNode, key: str,
                     spec: LifecycleSpecInfo,
                     concrete: Optional[str]
                     ) -> Tuple[bool, Optional[Tuple[int, Tuple[str, ...]]]]:
        """Walk ``function`` with ``key`` acquired; report the first
        exit still holding it, if any."""
        walker = _Walker(self, function, seed={key: ACQUIRED},
                         seed_specs={key: spec},
                         concrete_class=concrete)
        result = walker.run()
        for env, line, guards in result.exits:
            if "A" in env.get(key, frozenset()):
                return False, (line, guards)
        return True, None

    # -- the per-function sweep ------------------------------------------

    def run(self) -> Tuple[List[Finding], Dict[str, object]]:
        for qualname in sorted(self.graph.functions):
            self._sweep_function(self.graph.functions[qualname])
        self._check_boundaries()
        self._check_construct_owners()
        self._check_span_pairing()
        extras: Dict[str, object] = {"lifecycle": {
            "specs": [{
                "resource": spec.resource,
                "module": spec.module,
                "classes": list(spec.class_names),
                "boundary": [list(pair) for pair in spec.boundary],
            } for spec in self.specs],
            "functions_walked": len(self.graph.functions),
            "boundary_obligations": self.boundary_checks,
        }}
        return self.findings, extras

    def _sweep_function(self, function: FunctionNode) -> None:
        if all(self.exempt(function, spec) for spec in self.specs):
            self._check_discarded_handles(function)
            return
        result = _Walker(self, function).run()
        self.findings.extend(result.findings)
        self._check_guard_mismatch(function, result)
        self._check_unwind(function, result)
        self._check_discarded_handles(function)

    def _check_guard_mismatch(self, function: FunctionNode,
                              result: _WalkResult) -> None:
        """LIF005: acquire and release guarded by different conditions."""
        by_key: Dict[str, List[_Event]] = {}
        for event in result.events:
            by_key.setdefault(event.key, []).append(event)
        for key, events in sorted(by_key.items()):
            releases = [e for e in events
                        if e.kind in ("release", "may-release", "defer")]
            if not releases:
                continue
            leaky = any("A" in env.get(key, frozenset())
                        for env, _, _ in result.exits)
            if not leaky:
                continue
            for event in events:
                if event.kind != "acquire" or not event.guards:
                    continue
                if all(r.guards != event.guards for r in releases):
                    other = " / ".join(sorted(
                        {" and ".join(r.guards) or "<unconditional>"
                         for r in releases}))
                    self.findings.append(function.ctx.finding_at(
                        "LIF005", event.line, event.col,
                        f"conditional acquire of {event.spec.resource} "
                        f"{key!r} (when {' and '.join(event.guards)}) "
                        f"is released under a different condition "
                        f"({other}): the pairing decorrelates and the "
                        f"resource leaks when the guards disagree"))
                    break

    def _check_unwind(self, function: FunctionNode,
                      result: _WalkResult) -> None:
        """LIF001 (unwind form): happy-path-only release of a resource
        whose spec demands exception safety."""
        by_key: Dict[str, List[_Event]] = {}
        for event in result.events:
            by_key.setdefault(event.key, []).append(event)
        for key, events in sorted(by_key.items()):
            spec = result.key_specs.get(key)
            if spec is None or not spec.release_on_unwind:
                continue
            root = key.split(".")[0]
            if root == "self":
                continue  # attribute-held: the class-ownership audit
            acquires = [e for e in events
                        if e.kind in ("acquire", "may-acquire")]
            if not acquires or self._root_escapes(function, root, key):
                continue
            releases = [e for e in events
                        if e.kind in ("release", "may-release")]
            first_acquire = min(e.line for e in acquires)
            if not releases:
                if any("A" in env.get(key, frozenset())
                       for env, _, _ in result.exits):
                    self.findings.append(function.ctx.finding_at(
                        "LIF001", first_acquire, acquires[0].col,
                        f"{spec.resource} {key!r} is acquired here "
                        f"and never released on any path out of "
                        f"{function.qualname}"))
                continue
            if any(e.protected for e in releases):
                continue
            first_release = min(e.line for e in releases)
            event_lines = {e.line for e in events}
            risky = any(first_acquire < line < first_release
                        and line not in event_lines
                        for line in result.call_lines)
            if risky:
                self.findings.append(function.ctx.finding_at(
                    "LIF001", first_acquire, acquires[0].col,
                    f"{spec.resource} {key!r} is only released on the "
                    f"happy path: an exception between line "
                    f"{first_acquire} and line {first_release} leaks "
                    f"it un-flushed — move the release into a "
                    f"try/finally or a with block"))

    def _root_escapes(self, function: FunctionNode, root: str,
                      key: str) -> bool:
        """Whether the local ``root`` is handed to another owner."""
        if "." in key:
            return False  # obs._sink: the *resource* stays inside obs
        for node in ast.walk(function.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if any(isinstance(sub, ast.Name) and sub.id == root
                       for sub in ast.walk(node.value)):
                    return True
            elif isinstance(node, ast.Call):
                for arg in list(node.args) + [k.value
                                              for k in node.keywords]:
                    if any(isinstance(sub, ast.Name) and sub.id == root
                           for sub in ast.walk(arg)):
                        return True
            elif isinstance(node, ast.Assign):
                if not any(isinstance(sub, ast.Name) and sub.id == root
                           for sub in ast.walk(node.value)):
                    continue
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript,
                                           ast.Tuple, ast.List)):
                        return True
            elif isinstance(node, (ast.List, ast.Tuple, ast.Dict,
                                   ast.Set)):
                continue
        return False

    # -- LIF004: unowned handles -----------------------------------------

    def _check_discarded_handles(self, function: FunctionNode) -> None:
        specs = [spec for spec in self.specs
                 if (spec.handle_factories or spec.reschedule_factories)
                 and not self.exempt(function, spec)]
        if not specs:
            return
        walker = _Walker(self, function)  # for type env + receiver check
        body = list(getattr(function.node, "body", []))
        guarded = self._has_early_exit_guard(body)
        for node in walk_skipping_lambdas(function.node):
            if not (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)):
                continue
            call = node.value
            method = call.func.attr  # type: ignore[union-attr]
            for spec in specs:
                receiver = call.func.value  # type: ignore[union-attr]
                if method in spec.handle_factories \
                        and walker._receiver_is(receiver, spec):
                    self.findings.append(function.ctx.finding_at(
                        "LIF004", call.lineno, call.col_offset,
                        f"periodic {spec.resource} from {method}() is "
                        f"discarded: the event can never be cancelled "
                        f"for the rest of the run — store the returned "
                        f"handle and cancel it on the stop path"))
                elif method in spec.reschedule_factories \
                        and node in body and not guarded \
                        and self._calls_enclosing(call, function) \
                        and walker._receiver_is(receiver, spec):
                    self.findings.append(function.ctx.finding_at(
                        "LIF004", call.lineno, call.col_offset,
                        f"unconditional self-reschedule via {method}() "
                        f"with the handle discarded: "
                        f"{function.name}() re-arms itself on every "
                        f"call with no early-exit guard and no stored "
                        f"handle, so nothing can ever stop it — guard "
                        f"on the stopped state or store and cancel "
                        f"the handle"))

    @staticmethod
    def _has_early_exit_guard(body: Sequence[ast.stmt]) -> bool:
        """A top-level ``if ...: return/raise`` before the re-arm."""
        for stmt in body:
            if isinstance(stmt, ast.If):
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Return, ast.Raise)):
                        return True
        return False

    @staticmethod
    def _calls_enclosing(call: ast.Call,
                         function: FunctionNode) -> bool:
        """Whether a scheduling call's arguments re-enter ``function``."""
        name = function.name
        for arg in list(call.args) + [k.value for k in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) and sub.attr == name:
                    return True
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        return False

    # -- LIF001: boundary obligations ------------------------------------

    def _check_boundaries(self) -> None:
        seen: Set[Tuple[str, str, str]] = set()
        for class_name in sorted(self.graph.classes):
            for info in self.graph.classes[class_name]:
                for spec in self.specs:
                    if not spec.boundary:
                        continue
                    if info.name in spec.class_names \
                            or info.module_path.endswith(spec.module):
                        continue
                    for a_hook, r_hook in spec.boundary:
                        self._check_boundary(info.name, spec, a_hook,
                                             r_hook, seen)

    def _check_boundary(self, class_name: str,
                        spec: LifecycleSpecInfo, a_hook: str,
                        r_hook: str,
                        seen: Set[Tuple[str, str, str]]) -> None:
        infos = self.graph.classes.get(class_name, [])
        a_fn = r_fn = None
        for info in infos:
            a_fn = self.graph._lookup_method(info, a_hook)
            r_fn = self.graph._lookup_method(info, r_hook)
            if a_fn is not None and r_fn is not None:
                break
        if a_fn is None or r_fn is None:
            return
        if self.exempt(a_fn, spec) or self.exempt(r_fn, spec):
            return
        acquire_summary = self.summary(a_fn.qualname)
        keys = sorted(
            key for key in acquire_summary.must_acquire
            if acquire_summary.key_specs.get(key) is spec)
        for key in keys:
            dedup = (a_fn.qualname, r_fn.qualname, key)
            if dedup in seen:
                continue
            seen.add(dedup)
            self.boundary_checks += 1
            ok, witness = self._seeded_walk(r_fn, key, spec,
                                            concrete=class_name)
            if ok:
                continue
            line, guards = witness or (r_fn.lineno, ())
            when = f" (when {' and '.join(guards)})" if guards else ""
            defer_hint = (
                f", or defer it via "
                f"{' / '.join(spec.defer_attrs)}"
                if spec.defer_attrs else "")
            self.findings.append(r_fn.ctx.finding_at(
                "LIF001", r_fn.lineno,
                getattr(r_fn.node, "col_offset", 0),
                f"{spec.resource} {key!r} acquired on every path "
                f"through {class_name}.{a_hook} is still acquired on "
                f"the path out of {r_hook} exiting at line "
                f"{line}{when}: release it with "
                f"{' / '.join(spec.release)}(){defer_hint}"))

    # -- LIF004: constructed-but-never-released attributes ---------------

    def _check_construct_owners(self) -> None:
        specs = [spec for spec in self.specs
                 if spec.acquire_on_construct and spec.release]
        if not specs:
            return
        for class_name in sorted(self.graph.classes):
            for info in self.graph.classes[class_name]:
                for spec in specs:
                    if info.name in spec.class_names \
                            or info.module_path.endswith(spec.module):
                        continue
                    self._audit_class_ownership(info, spec)

    def _audit_class_ownership(self, info: object,
                               spec: LifecycleSpecInfo) -> None:
        stored: List[Tuple[str, ast.AST, FileContext]] = []
        for method in info.methods.values():  # type: ignore[attr-defined]
            if self.exempt(method, spec):
                return
            for node in ast.walk(method.node):
                if isinstance(node, ast.Assign) \
                        and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Attribute) \
                        and isinstance(
                            node.targets[0].value, ast.Name) \
                        and node.targets[0].value.id == "self" \
                        and isinstance(node.value, ast.Call):
                    name = _dotted(node.value.func)
                    if name is not None \
                            and name.split(".")[-1] in spec.class_names:
                        stored.append((node.targets[0].attr, node,
                                       method.ctx))
        if not stored:
            return
        released: Set[str] = set()
        for mro_info in self.graph.mro(
                info.name):  # type: ignore[attr-defined]
            for method in mro_info.methods.values():
                for node in ast.walk(method.node):
                    if isinstance(node, ast.Call) \
                            and isinstance(node.func, ast.Attribute) \
                            and node.func.attr in spec.release:
                        text = _dotted(node.func.value) or ""
                        if text.startswith("self."):
                            released.add(text[len("self."):])
        for attr, node, ctx in stored:
            if attr in released:
                continue
            self.findings.append(ctx.finding_at(
                "LIF004", node.lineno,
                getattr(node, "col_offset", 0),
                f"{spec.resource} stored in self.{attr} is never "
                f"released by any method of "
                f"{info.name}"  # type: ignore[attr-defined]
                f" (or its bases): the resource has no owner — add a "
                f"close/teardown path calling "
                f"{' / '.join(spec.release)}()"))

    # -- LIF001: span phase pairing --------------------------------------

    def _check_span_pairing(self) -> None:
        specs = [spec for spec in self.specs if spec.class_paired]
        if not specs:
            return
        for class_name in sorted(self.graph.classes):
            for info in self.graph.classes[class_name]:
                for spec in specs:
                    if info.name in spec.class_names \
                            or info.module_path.endswith(spec.module):
                        continue
                    self._audit_span_class(info, spec)

    def _audit_span_class(self, info: object,
                          spec: LifecycleSpecInfo) -> None:
        own_calls = self._paired_calls(
            [info], spec)  # type: ignore[list-item]
        if not own_calls:
            return
        mro_calls = self._paired_calls(
            self.graph.mro(info.name), spec)  # type: ignore[attr-defined]
        for opener, closer in spec.class_paired:
            if opener not in own_calls:
                continue
            if any(self.exempt(method, spec)
                   for method, _ in own_calls[opener]):
                continue
            if closer in mro_calls:
                continue
            method, node = own_calls[opener][0]
            self.findings.append(method.ctx.finding_at(
                "LIF001", node.lineno,
                getattr(node, "col_offset", 0),
                f"{spec.resource} phase opened with {opener}() is "
                f"never closed: no method of "
                f"{info.name}"  # type: ignore[attr-defined]
                f" (or its bases) calls {closer}(), so every "
                f"{opener} leaves a dangling open phase"))

    def _paired_calls(self, infos: Sequence[object],
                      spec: LifecycleSpecInfo
                      ) -> Dict[str, List[Tuple[FunctionNode, ast.AST]]]:
        names = {name for pair in spec.class_paired for name in pair}
        found: Dict[str, List[Tuple[FunctionNode, ast.AST]]] = {}
        for info in infos:
            for method in info.methods.values():  # type: ignore[attr-defined]
                env = self.graph._local_env(method)
                for node in ast.walk(method.node):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in names):
                        continue
                    receiver = node.func.value
                    text = _dotted(receiver) or ""
                    tail = text.split(".")[-1].lower()
                    types = self.graph._expr_types(receiver, env)
                    if "spans" in tail \
                            or any(t in spec.class_names for t in types):
                        found.setdefault(node.func.attr, []).append(
                            (method, node))
        return found


def analyze_lifecycles(contexts: Sequence[FileContext],
                       config: LintConfig,
                       graph: Optional[CallGraph] = None,
                       ) -> Tuple[List[Finding], Dict[str, object]]:
    """Run the lifecycle pass; returns findings plus report extras."""
    specs = _extract_specs(contexts)
    if not specs:
        return [], {"lifecycle": {"specs": [], "functions_walked": 0,
                                  "boundary_obligations": 0}}
    if graph is None:
        graph = build_call_graph(contexts)
    analysis = LifecycleAnalysis(graph, config, specs)
    return analysis.run()


__all__ = [
    "CODES",
    "LifecycleAnalysis",
    "LifecycleSpecInfo",
    "analyze_lifecycles",
]
