"""Ablation A10: does listen-before-talk pay for itself on this radio?

A9 (`bench_ablation_aloha.py`) showed TDMA's coordination cost against
blind ALOHA.  The natural middle ground is 802.15.4-style CSMA/CA:
sense the channel for 128 us, transmit only when it reads clear.  This
ablation runs the same 5-node streaming workload under static TDMA,
ALOHA and CSMA/CA — and documents a *negative* result that supports
the paper's protocol choice:

**Carrier sensing buys almost nothing on the nRF2401.**  The radio
needs ~195 us of TX settling between the send decision and the first
bit on air, while a 26-byte ShockBurst frame occupies the channel for
only ~208 us.  Any frame a CCA can still see therefore has *less
residual airtime than our own settle delay* — by the time our carrier
comes up, the sensed frame is (almost) gone, so nearly every deferral
averts a collision that would not have happened.  Meanwhile the truly
dangerous window — a neighbour inside its own invisible settle period —
cannot be sensed at all.  The result: CSMA's loss rate tracks ALOHA's
(the sweep shows both growing with load), while each node pays extra
RX-current CCA dwells on top of ALOHA's bare TX events.

That asymmetry is exactly why the platform's BAN uses TDMA: on a
short-frame, slow-settling radio with no acknowledgements, contention
cannot be sensed away — it has to be scheduled away.
"""

from conftest import bench_measure_s, run_once
from repro.net.scenario import BanScenario, BanScenarioConfig


def run_comparison(measure_s: float):
    out = {}
    for mac in ("static", "aloha", "csma"):
        config = BanScenarioConfig(mac=mac, app="ecg_streaming",
                                   num_nodes=5, cycle_ms=30.0,
                                   sampling_hz=205.0,
                                   measure_s=measure_s, seed=3)
        scenario = BanScenario(config)
        result = scenario.run()
        counters = [node.mac.counters for node in scenario.nodes]
        out[mac] = {
            "node": result.node("node1"),
            "delivered": result.base_station.traffic.data_rx,
            "corrupted_at_bs": result.base_station.traffic.corrupted,
            "cca_busy": sum(c.cca_busy for c in counters),
            "tx_abandoned": sum(c.tx_abandoned for c in counters),
        }
    # Load sweep: both contention MACs' structural loss vs offered load.
    sweep = []
    for nodes in (2, 5, 8):
        row = {"nodes": nodes}
        for mac in ("aloha", "csma"):
            config = BanScenarioConfig(mac=mac, app="ecg_streaming",
                                       num_nodes=nodes, cycle_ms=30.0,
                                       sampling_hz=205.0,
                                       measure_s=min(measure_s, 20.0),
                                       seed=3)
            scenario = BanScenario(config)
            result = scenario.run()
            bs = result.base_station.traffic
            row[mac] = bs.corrupted / max(1, bs.corrupted + bs.data_rx)
            if mac == "csma":
                row["cca_busy"] = sum(
                    node.mac.counters.cca_busy for node in scenario.nodes)
        sweep.append(row)
    return out, sweep


def test_ablation_csma_vs_aloha_vs_tdma(benchmark):
    measure_s = bench_measure_s()
    comparison, sweep = run_once(benchmark, run_comparison, measure_s)

    tdma = comparison["static"]
    aloha = comparison["aloha"]
    csma = comparison["csma"]
    expected_frames = 5 * measure_s / 0.030

    print(f"\nA10 TDMA vs ALOHA vs CSMA/CA, 5-node streaming "
          f"({measure_s:.0f} s):")
    for mac, record in comparison.items():
        node = record["node"]
        delivery = record["delivered"] / expected_frames
        energy_per_frame = node.radio_mj * 5 / max(1, record["delivered"])
        print(f"  {mac:<7} node radio {node.radio_mj:7.1f} mJ   "
              f"delivery {100 * delivery:5.1f}%   "
              f"{1e3 * energy_per_frame:6.1f} uJ radio / delivered frame   "
              f"busy CCAs {record['cca_busy']}")
        benchmark.extra_info[f"{mac}_radio_mj"] = round(node.radio_mj, 1)
        benchmark.extra_info[f"{mac}_delivery"] = round(delivery, 4)
    print("  loss vs load: " + ", ".join(
        f"{row['nodes']} nodes: aloha {100 * row['aloha']:.1f}% / "
        f"csma {100 * row['csma']:.1f}%" for row in sweep))

    # TDMA delivers everything; both contention MACs lose frames.
    assert tdma["corrupted_at_bs"] == 0
    assert tdma["delivered"] >= 0.99 * expected_frames
    assert csma["corrupted_at_bs"] > 0

    # CSMA pays for its CCA dwells: above ALOHA's bare-TX budget, still
    # far below TDMA's beacon-listen coordination.
    assert csma["node"].radio_mj > aloha["node"].radio_mj
    assert csma["node"].radio_mj < 0.25 * tdma["node"].radio_mj

    # The negative result: sensing does not separate CSMA's loss from
    # ALOHA's on this radio (settle time ~ frame airtime), at any load.
    csma_loss = csma["corrupted_at_bs"] / max(
        1, csma["corrupted_at_bs"] + csma["delivered"])
    aloha_loss = aloha["corrupted_at_bs"] / max(
        1, aloha["corrupted_at_bs"] + aloha["delivered"])
    assert abs(csma_loss - aloha_loss) < 0.05
    for row in sweep:
        assert abs(row["csma"] - row["aloha"]) < 0.05

    # The CCAs do fire — the channel is genuinely sensed, increasingly
    # so as load grows; the busy readings just cannot avert much.
    assert csma["cca_busy"] > 0
    assert sweep[-1]["cca_busy"] > sweep[0]["cca_busy"]
    # Structural loss still grows with offered load under CSMA.
    assert sweep[0]["csma"] < sweep[-1]["csma"]
