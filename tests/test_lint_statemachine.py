"""Tests for the power-state machine verification (SM001-SM005).

A template component (``Widget``: standby -> tx -> cooldown ->
standby) is linted through :func:`repro.lint.lint_source` and mutated
per test case, so each rule is exercised both firing and silent.  The
final classes pin the analyzer against the real hardware models: every
declared ``TransitionSpec`` in ``repro.core.states`` must match the
transitions its class actually encodes, and the radio must honor its
spec at runtime.
"""

import pathlib
import textwrap

import pytest

from repro.core.states import (ALL_TRANSITION_SPECS, ASIC_TRANSITIONS,
                               MCU_TRANSITIONS, RADIO_TRANSITIONS,
                               TransitionSpec)
from repro.hw.frames import Frame, FrameKind
from repro.hw.radio import Nrf2401, RadioError
from repro.lint import LintConfig, lint_paths, lint_source, load_config
from repro.phy.channel import Channel

ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = ROOT / "tests" / "fixtures" / "lint"

#: A spec-conforming three-state component.  Tests mutate this source
#: with plain string replacement; every replacement target is unique.
WIDGET = '''\
from repro.core.ledger import PowerStateLedger
from repro.core.states import PowerState, PowerStateTable, TransitionSpec

SPEC = TransitionSpec(
    component="widget",
    module="hw/widget.py",
    class_name="Widget",
    initial="standby",
    states=("standby", "tx", "cooldown"),
    transitions=(
        ("standby", "tx"),
        ("tx", "cooldown"),
        ("cooldown", "standby"),
    ),
    busy_flags=(("_tx_busy", ("tx",)),),
)


class Widget:
    def __init__(self, sim):
        table = PowerStateTable([
            PowerState("standby", 0.0),
            PowerState("tx", 0.010),
            PowerState("cooldown", 0.002),
        ])
        self.ledger = PowerStateLedger(sim, "widget", table, 3.0,
                                       initial_state="standby")
        self._tx_busy = False

    def fire(self):
        if self.ledger.state == "standby":
            self._tx_busy = True
            self.ledger.transition("tx")

    def finish(self):
        if self._tx_busy:
            self._tx_busy = False
            self.ledger.transition("cooldown")

    def settle(self):
        if self.ledger.state == "cooldown":
            self.ledger.transition("standby")
'''


def fired(source, module_path="hw/widget.py", config=None):
    findings = lint_source(source, "<fixture>",
                           config or LintConfig(),
                           module_path=module_path)
    return sorted(f.rule for f in findings if not f.suppressed)


class TestCleanMachine:
    def test_template_is_clean(self):
        assert fired(WIDGET) == []

    def test_ledger_guard_narrowing(self):
        # Re-guard finish() on the ledger state instead of the busy
        # flag and drop the busy_flags declaration entirely: the
        # state-compare narrowing alone must keep the machine clean.
        source = WIDGET.replace(
            '    busy_flags=(("_tx_busy", ("tx",)),),\n', "")
        source = source.replace('if self._tx_busy:',
                                'if self.ledger.state == "tx":')
        assert fired(source) == []

    def test_busy_flag_narrowing_is_load_bearing(self):
        # Same machine without the busy_flags declaration: the
        # analyzer can no longer prove finish() runs only in "tx",
        # so the conservative standby -> cooldown edge appears.
        source = WIDGET.replace(
            '    busy_flags=(("_tx_busy", ("tx",)),),\n', "")
        assert fired(source) == ["SM001"]

    def test_sm_assume_annotation(self):
        source = WIDGET.replace(
            '    busy_flags=(("_tx_busy", ("tx",)),),\n', "")
        source = source.replace("def finish(self):",
                                "def finish(self):  # sm: assume(tx)")
        source = source.replace("        if self._tx_busy:\n"
                                "            self._tx_busy = False\n"
                                "            self.ledger.transition"
                                '("cooldown")',
                                "        self._tx_busy = False\n"
                                "        self.ledger.transition"
                                '("cooldown")')
        assert fired(source) == []


class TestSm001Undeclared:
    def test_guarded_undeclared_edge(self):
        source = WIDGET + textwrap.indent(textwrap.dedent('''
            def abort(self):
                if self.ledger.state == "tx":
                    self.ledger.transition("standby")
            '''), "    ")
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert [f.rule for f in findings] == ["SM001"]
        assert "'tx' -> 'standby'" in findings[0].message

    def test_out_of_component_transition(self):
        source = textwrap.dedent('''
            def force_tx(node):
                node.radio.ledger.transition("tx")
            ''')
        assert fired(source, module_path="mac/driver.py") == ["SM001"]

    def test_out_of_package_is_silent(self):
        source = textwrap.dedent('''
            def force_tx(node):
                node.radio.ledger.transition("tx")
            ''')
        assert fired(source, module_path="analysis/foo.py") == []


class TestSm002DeadDeclaration:
    def test_declared_never_encoded(self):
        source = WIDGET.replace(
            '        ("cooldown", "standby"),\n',
            '        ("cooldown", "standby"),\n'
            '        ("tx", "standby"),\n')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert [f.rule for f in findings] == ["SM002"]
        assert "'tx' -> 'standby'" in findings[0].message


class TestSm003Unreachable:
    def test_ghost_state_with_energy_accounting(self):
        source = WIDGET.replace(
            '    states=("standby", "tx", "cooldown"),\n',
            '    states=("standby", "tx", "cooldown", "ghost"),\n')
        source = source.replace(
            '            PowerState("cooldown", 0.002),\n',
            '            PowerState("cooldown", 0.002),\n'
            '            PowerState("ghost", 1.0),\n')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert [f.rule for f in findings] == ["SM003"]
        assert "ghost" in findings[0].message


class TestSm004Structural:
    def test_non_literal_spec(self):
        source = WIDGET.replace(
            '    states=("standby", "tx", "cooldown"),\n',
            '    states=make_states(),\n')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        # The broken spec cascades: the class is treated as unspecced
        # (SM005) and its transition calls as out-of-component
        # (SM001).  The root cause must still be named.
        assert any(f.rule == "SM004"
                   and "not a literal declaration" in f.message
                   for f in findings)

    def test_missing_class(self):
        source = WIDGET.replace('    class_name="Widget",',
                                '    class_name="Gadget",')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        # Widget itself is now an unspecced ledger class -> SM005 too.
        assert sorted(f.rule for f in findings) == ["SM004", "SM005"]
        assert any("Gadget" in f.message for f in findings
                   if f.rule == "SM004")

    def test_no_ledger_constructed(self):
        source = WIDGET.replace(
            '        self.ledger = PowerStateLedger(sim, "widget", '
            'table, 3.0,\n'
            '                                       '
            'initial_state="standby")\n',
            '        self.ledger = None\n')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert "SM004" in [f.rule for f in findings]

    def test_initial_state_mismatch(self):
        source = WIDGET.replace('    initial="standby",',
                                '    initial="tx",')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert "SM004" in [f.rule for f in findings]
        assert any("initial" in f.message for f in findings
                   if f.rule == "SM004")

    def test_state_set_mismatch(self):
        source = WIDGET.replace(
            '            PowerState("cooldown", 0.002),\n',
            '            PowerState("cooldown", 0.002),\n'
            '            PowerState("ghost", 1.0),\n')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert any(f.rule == "SM004"
                   and "power-state table" in f.message
                   for f in findings)

    def test_unresolvable_transition_target(self):
        source = WIDGET.replace(
            '            self.ledger.transition("tx")',
            '            self.ledger.transition(pick_state())')
        findings = lint_source(source, "<fixture>", LintConfig(),
                               module_path="hw/widget.py")
        assert "SM004" in [f.rule for f in findings]


class TestSm005UnspeccedLedger:
    SOURCE = textwrap.dedent('''
        from repro.core.ledger import PowerStateLedger
        from repro.core.states import PowerState, PowerStateTable

        class Widget:
            def __init__(self, sim):
                table = PowerStateTable([PowerState("on", 0.001)])
                self.ledger = PowerStateLedger(sim, "w", table, 3.0,
                                               initial_state="on")
        ''')

    def test_ledger_without_spec(self):
        assert fired(self.SOURCE,
                     module_path="hw/widget.py") == ["SM005"]

    def test_outside_sm_packages_is_silent(self):
        assert fired(self.SOURCE, module_path="analysis/foo.py") == []


class TestTransitionSpecRuntime:
    def test_allows(self):
        assert RADIO_TRANSITIONS.allows("standby", "tx")
        assert not RADIO_TRANSITIONS.allows("power_down", "tx")
        # A same-state change is a re-tag, not a transition: always ok.
        assert RADIO_TRANSITIONS.allows("tx", "tx")

    def test_initial_must_be_known(self):
        with pytest.raises(ValueError, match="initial"):
            TransitionSpec(component="x", module="m", class_name="C",
                           initial="nope", states=("a", "b"),
                           transitions=(("a", "b"),))

    def test_edges_must_reference_known_states(self):
        with pytest.raises(ValueError, match="unknown state"):
            TransitionSpec(component="x", module="m", class_name="C",
                           initial="a", states=("a", "b"),
                           transitions=(("a", "zz"),))

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            TransitionSpec(component="x", module="m", class_name="C",
                           initial="a", states=("a", "b"),
                           transitions=(("a", "a"),))


class TestSpecsMatchHardware:
    """The PR's acceptance gate: declared == encoded for every spec."""

    @pytest.fixture(scope="class")
    def graphs(self):
        config = load_config([ROOT / "pyproject.toml"])
        report = lint_paths([ROOT / "src"], config)
        sm = [f for f in report.findings
              if f.rule.startswith("SM") and not f.suppressed]
        assert sm == []
        return report.extras["state_machines"]

    def test_all_specs_extracted(self, graphs):
        assert sorted(graphs) == ["asic", "mcu", "radio"]
        assert len(ALL_TRANSITION_SPECS) == 3

    @pytest.mark.parametrize("spec", [MCU_TRANSITIONS,
                                      RADIO_TRANSITIONS,
                                      ASIC_TRANSITIONS],
                             ids=["mcu", "radio", "asic"])
    def test_declared_matches_encoded(self, graphs, spec):
        graph = graphs[spec.component]
        assert graph["class"] == spec.class_name
        assert graph["initial"] == spec.initial
        assert graph["states"] == sorted(spec.states)
        declared = sorted(list(edge) for edge in spec.transitions)
        assert graph["declared"] == declared
        assert graph["encoded"] == declared


class TestRadioHonorsSpec:
    """Runtime pinning of the POWER_DOWN guards the analyzer forced."""

    def data_frame(self):
        return Frame(src="a", dest="b", kind=FrameKind.DATA,
                     payload_bytes=18, payload={"n": 1})

    def test_start_rx_requires_power_up(self, sim, cal):
        radio = Nrf2401(sim, cal, Channel(sim), "a")
        with pytest.raises(RadioError, match="powered down"):
            radio.start_rx()

    def test_send_requires_power_up(self, sim, cal):
        radio = Nrf2401(sim, cal, Channel(sim), "a")
        with pytest.raises(RadioError, match="powered down"):
            radio.send(self.data_frame())

    def test_normal_path_still_works(self, sim, cal):
        channel = Channel(sim)
        a = Nrf2401(sim, cal, channel, "a")
        b = Nrf2401(sim, cal, channel, "b")
        received = []
        b.on_frame = received.append
        a.power_up()
        b.power_up()
        b.start_rx()
        a.send(self.data_frame())
        sim.run_until(10_000_000)
        assert len(received) == 1


class TestIllegalTransitionFixture:
    def test_seeded_bugs_all_caught(self):
        source = (FIXTURES / "illegal_transition.py").read_text(
            encoding="utf-8")
        findings = lint_source(source,
                               str(FIXTURES / "illegal_transition.py"),
                               LintConfig(),
                               module_path="hw/illegal_transition.py")
        assert sorted(f.rule for f in findings) == [
            "SM001", "SM002", "SM003"]
        by_rule = {f.rule: f for f in findings}
        assert by_rule["SM001"].line == 50   # off -> tx jump
        assert "'off' -> 'tx'" in by_rule["SM001"].message
        assert "'idle' -> 'off'" in by_rule["SM002"].message
        assert "ghost" in by_rule["SM003"].message
