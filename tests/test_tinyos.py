"""Unit tests for the TinyOS model: scheduler, timers, components."""

import pytest

from repro.hw.mcu import Msp430
from repro.sim.simtime import microseconds, milliseconds, seconds
from repro.tinyos.components import Component, ComponentStack
from repro.tinyos.scheduler import TaskScheduler
from repro.tinyos.tasks import Task
from repro.tinyos.timers import VirtualTimer


@pytest.fixture
def machine(sim, cal):
    mcu = Msp430(sim, cal)
    return mcu, TaskScheduler(sim, mcu)


class TestTask:
    def test_negative_cycles_rejected(self):
        with pytest.raises(ValueError):
            Task(body=lambda: None, cycles=-1)

    def test_ids_increase_in_post_order(self, sim, cal):
        # Ids are assigned per scheduler (a process-global counter
        # would make repeat runs trace different serials).
        scheduler = TaskScheduler(sim, Msp430(sim, cal))
        a = scheduler.post(lambda: None, 0)
        b = scheduler.post(lambda: None, 0)
        assert b.task_id > a.task_id
        fresh = TaskScheduler(sim, Msp430(sim, cal))
        assert fresh.post(lambda: None, 0).task_id == a.task_id


class TestScheduler:
    def test_post_wakes_mcu_and_runs(self, sim, machine):
        mcu, scheduler = machine
        ran = []
        scheduler.post(lambda: ran.append(sim.now), 8000, "t")
        sim.run_until(seconds(1.0))
        assert ran == [microseconds(6)]  # after the wake-up latency
        assert mcu.is_sleeping  # back to sleep after the queue drained

    def test_fifo_order(self, sim, machine):
        _, scheduler = machine
        order = []
        for name in "abc":
            scheduler.post(lambda n=name: order.append(n), 100, name)
        sim.run_until(seconds(1.0))
        assert order == ["a", "b", "c"]

    def test_tasks_run_serially_with_durations(self, sim, machine):
        mcu, scheduler = machine
        times = []
        scheduler.post(lambda: times.append(sim.now), 8000, "a")  # 1 ms
        scheduler.post(lambda: times.append(sim.now), 8000, "b")
        sim.run_until(seconds(1.0))
        assert times[1] - times[0] == milliseconds(1)

    def test_active_time_equals_task_cost_plus_wakeup(self, sim, machine):
        mcu, scheduler = machine
        scheduler.post_cost_only(16000, "two-ms")  # 2 ms at 8 MHz
        sim.run_until(seconds(1.0))
        assert mcu.active_seconds() == pytest.approx(2e-3 + 6e-6)

    def test_post_during_task_extends_run(self, sim, machine):
        mcu, scheduler = machine
        ran = []

        def first():
            ran.append("first")
            scheduler.post(lambda: ran.append("second"), 100, "second")

        scheduler.post(first, 100, "first")
        sim.run_until(seconds(1.0))
        assert ran == ["first", "second"]

    def test_no_second_wakeup_when_queue_busy(self, sim, machine):
        mcu, scheduler = machine
        scheduler.post_cost_only(80000, "long")  # 10 ms
        sim.at(milliseconds(2),
               lambda: scheduler.post_cost_only(100, "late"))
        sim.run_until(seconds(1.0))
        assert mcu.wakeups == 1

    def test_counters(self, sim, machine):
        _, scheduler = machine
        scheduler.post_cost_only(10)
        scheduler.post_cost_only(10)
        sim.run_until(seconds(1.0))
        assert scheduler.tasks_run == 2
        assert scheduler.is_idle

    def test_zero_cost_task(self, sim, machine):
        mcu, scheduler = machine
        ran = []
        scheduler.post(lambda: ran.append(1), 0, "free")
        sim.run_until(seconds(1.0))
        assert ran == [1]


class TestVirtualTimer:
    def test_one_shot(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(milliseconds(5))
        sim.run_until(seconds(1.0))
        assert fired == [milliseconds(5)]
        assert not timer.is_running

    def test_periodic_grid_is_exact(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(milliseconds(5))
        sim.run_until(milliseconds(50))
        assert fired == [milliseconds(5 * k) for k in range(1, 11)]

    def test_periodic_first_delay(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(milliseconds(10), first_delay=milliseconds(1))
        sim.run_until(milliseconds(25))
        assert fired == [milliseconds(1), milliseconds(11),
                         milliseconds(21)]

    def test_stop_cancels(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_periodic(milliseconds(5))
        sim.at(milliseconds(12), timer.stop)
        sim.run_until(milliseconds(50))
        assert len(fired) == 2

    def test_restart_replaces_schedule(self, sim):
        fired = []
        timer = VirtualTimer(sim, lambda: fired.append(sim.now))
        timer.start_one_shot(milliseconds(5))
        timer.start_one_shot(milliseconds(9))
        sim.run_until(milliseconds(20))
        assert fired == [milliseconds(9)]

    def test_invalid_period(self, sim):
        timer = VirtualTimer(sim, lambda: None)
        with pytest.raises(ValueError):
            timer.start_periodic(0)

    def test_fired_count(self, sim):
        timer = VirtualTimer(sim, lambda: None)
        timer.start_periodic(milliseconds(2))
        sim.run_until(milliseconds(10))
        assert timer.fired_count == 5


class TestComponents:
    def make(self, sim):
        events = []

        class Probe(Component):
            def on_start(self):
                events.append(f"{self.name}:start")

            def on_stop(self):
                events.append(f"{self.name}:stop")

        return Probe, events

    def test_start_stop_hooks(self, sim):
        Probe, events = self.make(sim)
        probe = Probe(sim, "p")
        probe.start()
        probe.stop()
        assert events == ["p:start", "p:stop"]
        assert not probe.started

    def test_double_start_raises(self, sim):
        Probe, _ = self.make(sim)
        probe = Probe(sim, "p")
        probe.start()
        with pytest.raises(RuntimeError):
            probe.start()

    def test_stop_before_start_raises(self, sim):
        Probe, _ = self.make(sim)
        with pytest.raises(RuntimeError):
            Probe(sim, "p").stop()

    def test_stack_order(self, sim):
        Probe, events = self.make(sim)
        stack = ComponentStack()
        stack.add(Probe(sim, "low"))
        stack.add(Probe(sim, "high"))
        stack.start_all()
        stack.stop_all()
        assert events == ["low:start", "high:start",
                          "high:stop", "low:stop"]

    def test_stack_lookup_and_duplicates(self, sim):
        Probe, _ = self.make(sim)
        stack = ComponentStack()
        low = stack.add(Probe(sim, "low"))
        assert stack["low"] is low
        with pytest.raises(ValueError):
            stack.add(Probe(sim, "low"))
        with pytest.raises(KeyError):
            stack["missing"]
