"""MAC message payloads and their on-air sizes.

The TDMA protocols exchange three control messages (Figures 2 and 3):

* **Beacon** (BS -> broadcast): synchronisation point of every cycle.
  Carries the cycle length and the slot map, so it also plays the role
  of the slot grant ("the base station will create a new slot, assign
  it to the node, and inform all the other nodes of the updated cycle
  time").  On-air payload: 4 header bytes (cycle length, slot count,
  sequence) plus 1 byte per schedulable slot.
* **Slot request / SSR** (node -> BS): 2 bytes (requester id, flags).
* **Data** (node -> BS): application payload, e.g. the case studies'
  18-byte packed ECG samples.

Payload *content* travels as Python objects; only the byte sizes affect
timing and energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..hw.frames import BROADCAST, Frame, FrameKind

#: Fixed part of the beacon payload (cycle length + count + sequence).
BEACON_BASE_BYTES = 4

#: On-air payload size of a slot request.
SLOT_REQUEST_BYTES = 2


@dataclass(frozen=True, slots=True)
class BeaconPayload:
    """Content of a beacon frame.

    Attributes:
        cycle_ticks: current TDMA cycle length.
        slot_map: slot index -> owner address, for every *assigned* slot.
        num_slots: number of schedulable data slots this cycle (static:
            the fixed maximum; dynamic: the current network size).
        sequence: beacon sequence number (diagnostics / loss detection).
    """

    cycle_ticks: int
    slot_map: Dict[int, str]
    num_slots: int
    sequence: int

    def owner_of(self, slot: int) -> Optional[str]:
        """Address owning ``slot``, or None if free."""
        return self.slot_map.get(slot)

    def slot_of(self, address: str) -> Optional[int]:
        """Slot owned by ``address``, or None if not assigned."""
        for slot, owner in self.slot_map.items():
            if owner == address:
                return slot
        return None

    def free_slots(self) -> Tuple[int, ...]:
        """Unassigned data-slot indices (1-based), ascending."""
        return tuple(s for s in range(1, self.num_slots + 1)
                     if s not in self.slot_map)


def beacon_payload_bytes(num_slots: int) -> int:
    """On-air beacon payload size for ``num_slots`` schedulable slots."""
    if num_slots < 0:
        raise ValueError(f"num_slots must be >= 0: {num_slots}")
    return BEACON_BASE_BYTES + num_slots


def make_beacon(src: str, payload: BeaconPayload) -> Frame:
    """Build a broadcast beacon frame."""
    return Frame(src=src, dest=BROADCAST, kind=FrameKind.BEACON,
                 payload_bytes=beacon_payload_bytes(payload.num_slots),
                 payload=payload)


@dataclass(frozen=True, slots=True)
class SlotRequestPayload:
    """Content of an SSR: who is asking, and (static) for which slot."""

    requester: str
    wanted_slot: Optional[int] = None


def make_slot_request(src: str, base_station: str,
                      wanted_slot: Optional[int] = None) -> Frame:
    """Build a slot-request frame addressed to the base station."""
    return Frame(src=src, dest=base_station, kind=FrameKind.SLOT_REQUEST,
                 payload_bytes=SLOT_REQUEST_BYTES,
                 payload=SlotRequestPayload(requester=src,
                                            wanted_slot=wanted_slot))


def make_data(src: str, base_station: str, payload_bytes: int,
              content: object) -> Frame:
    """Build an application data frame addressed to the base station."""
    return Frame(src=src, dest=base_station, kind=FrameKind.DATA,
                 payload_bytes=payload_bytes, payload=content)


__all__ = [
    "BEACON_BASE_BYTES",
    "SLOT_REQUEST_BYTES",
    "BeaconPayload",
    "SlotRequestPayload",
    "beacon_payload_bytes",
    "make_beacon",
    "make_slot_request",
    "make_data",
]
