"""Generic parameter sweeps over BAN scenarios.

The design-space exploration the paper motivates ("this model can be
employed to tune the node architecture and communication layer for
different working conditions") needs systematic sweeps.
:func:`sweep_scenarios` runs one scenario per parameter value and
collects the reported node's figures; higher-level helpers cover the
common axes (cycle length, node count, heart rate, sync policy).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.report import NodeEnergyResult
from ..exec import ScenarioExecutor
from ..net.scenario import BanScenarioConfig
from .experiments import REPORTED_NODE, _resolve


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the swept value and the reported node's result."""

    value: float
    node: NodeEnergyResult

    @property
    def total_mj(self) -> float:
        """Radio + MCU energy at this point."""
        return self.node.total_mj


def sweep_scenarios(base: BanScenarioConfig, parameter: str,
                    values: Sequence[float],
                    node_id: str = REPORTED_NODE,
                    executor: Optional[ScenarioExecutor] = None
                    ) -> List[SweepPoint]:
    """Run ``base`` once per value of ``parameter``.

    ``parameter`` must be a field of :class:`BanScenarioConfig`; each
    run uses ``dataclasses.replace`` so the base config is untouched.
    An :class:`~repro.exec.ScenarioExecutor` runs the points in
    parallel and/or from cache; results are in value order either way.
    """
    if parameter not in {f.name for f in dataclasses.fields(base)}:
        raise ValueError(
            f"{parameter!r} is not a BanScenarioConfig field")
    return sweep_custom(
        base, values,
        lambda cfg, v: dataclasses.replace(cfg, **{parameter: v}),
        node_id=node_id, executor=executor)


def sweep_custom(base: BanScenarioConfig, values: Sequence[float],
                 make_config: Callable[[BanScenarioConfig, float],
                                       BanScenarioConfig],
                 node_id: str = REPORTED_NODE,
                 executor: Optional[ScenarioExecutor] = None
                 ) -> List[SweepPoint]:
    """Sweep with an arbitrary config transformation per value."""
    configs = [make_config(base, value) for value in values]
    results = _resolve(executor).run_configs(configs)
    return [SweepPoint(value=float(value), node=result.node(node_id))
            for value, result in zip(values, results)]


def sweep_cycle_ms(base: BanScenarioConfig,
                   cycles_ms: Sequence[float],
                   executor: Optional[ScenarioExecutor] = None
                   ) -> List[SweepPoint]:
    """Sweep the static-TDMA cycle length."""
    return sweep_scenarios(base, "cycle_ms", cycles_ms,
                           executor=executor)


def sweep_num_nodes(base: BanScenarioConfig,
                    counts: Sequence[int],
                    executor: Optional[ScenarioExecutor] = None
                    ) -> List[SweepPoint]:
    """Sweep the network size (dynamic-TDMA cycle follows)."""
    return sweep_custom(
        base, [float(c) for c in counts],
        lambda cfg, v: dataclasses.replace(cfg, num_nodes=int(v)),
        executor=executor)


def sweep_heart_rate(base: BanScenarioConfig,
                     rates_bpm: Sequence[float],
                     executor: Optional[ScenarioExecutor] = None
                     ) -> List[SweepPoint]:
    """Sweep the input heart rate (Rpeak traffic scales with it)."""
    return sweep_scenarios(base, "heart_rate_bpm", rates_bpm,
                           executor=executor)


def as_table(points: Sequence[SweepPoint],
             value_name: str = "value") -> List[Dict[str, float]]:
    """Flatten sweep points into plain records for rendering/CSV."""
    return [{
        value_name: p.value,
        "radio_mj": p.node.radio_mj,
        "mcu_mj": p.node.mcu_mj,
        "total_mj": p.total_mj,
        "avg_power_mw": p.node.average_power_mw,
    } for p in points]


__all__ = [
    "SweepPoint",
    "sweep_scenarios",
    "sweep_custom",
    "sweep_cycle_ms",
    "sweep_num_nodes",
    "sweep_heart_rate",
    "as_table",
]
