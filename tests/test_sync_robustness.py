"""Synchronisation robustness: crystal skew vs guard policies.

The guard window exists to absorb clock error.  These tests pin the
boundary quantitatively: nodes stay synced exactly while their skew
stays inside the guard, and the physical drift-tracking policy's
tolerance parameter is honoured at the edge.
"""

import pytest

from conftest import quick_config
from repro.mac.sync import DriftTrackingLead, FixedLead
from repro.net.scenario import BanScenario
from repro.sim.simtime import microseconds


def run_with_skew(skew_ppm, sync_factory=None, cycle_ms=30.0,
                  measure_s=4.0):
    config = quick_config(num_nodes=2, cycle_ms=cycle_ms,
                          measure_s=measure_s,
                          clock_skew_ppm=skew_ppm,
                          sync_policy_factory=sync_factory)
    scenario = BanScenario(config)
    result = scenario.run()
    missed = sum(node.mac.counters.beacons_missed
                 for node in scenario.nodes)
    return scenario, result, missed


class TestSkewWithinGuard:
    def test_platform_guard_absorbs_large_skew(self):
        # 3.1 ms lead over a 30 ms cycle tolerates ~100,000 ppm of
        # one-cycle drift; 500 ppm is nothing.
        _, _, missed = run_with_skew(500.0)
        assert missed == 0

    def test_skew_changes_realised_window(self):
        """A fast node wakes early relative to the true beacon, so its
        RX window lengthens — energy follows the clock error."""
        _, ideal, _ = run_with_skew(0.0)
        _, skewed, _ = run_with_skew(400.0)
        # With ±400 ppm over a 30 ms cycle, expectation error is ±12 us
        # per cycle: a visible but tiny energy delta.
        delta = abs(skewed.node("node1").radio_mj
                    - ideal.node("node1").radio_mj)
        assert delta < 0.01 * ideal.node("node1").radio_mj

    def test_tight_guard_with_matching_tolerance_holds(self):
        factory = (lambda cal: DriftTrackingLead(tolerance_ppm=100.0,
                                                 margin_ticks=
                                                 microseconds(250)))
        _, _, missed = run_with_skew(80.0, sync_factory=factory)
        assert missed == 0

    def test_energy_scales_with_guard_tightness(self):
        loose = (lambda cal: DriftTrackingLead(tolerance_ppm=500.0))
        tight = (lambda cal: DriftTrackingLead(tolerance_ppm=20.0))
        _, loose_result, _ = run_with_skew(10.0, sync_factory=loose)
        _, tight_result, _ = run_with_skew(10.0, sync_factory=tight)
        assert tight_result.node("node1").radio_mj \
            < loose_result.node("node1").radio_mj


class TestSkewBeyondGuard:
    def test_undersized_fixed_guard_misses_beacons(self):
        """A 50 us lead cannot absorb 4000 ppm of drift over 30 ms
        (120 us): the node misses beacons and resyncs."""
        factory = (lambda cal: FixedLead(microseconds(50)))
        scenario, _, missed = run_with_skew(4000.0,
                                            sync_factory=factory,
                                            measure_s=6.0)
        assert missed > 0
        # Acquisition-based recovery kept the network functional:
        resyncs = sum(node.mac.counters.resyncs
                      for node in scenario.nodes)
        received = sum(node.mac.counters.beacons_received
                       for node in scenario.nodes)
        assert received > 0
        assert resyncs >= 0  # recovery path exercised without deadlock

    def test_recovery_costs_energy(self):
        """Misses force free-running and re-acquisition — both cost
        receiver time, so radio energy rises vs the synced baseline."""
        factory = (lambda cal: FixedLead(microseconds(50)))
        _, broken, missed = run_with_skew(4000.0, sync_factory=factory,
                                          measure_s=6.0)
        _, healthy, _ = run_with_skew(0.0, sync_factory=factory,
                                      measure_s=6.0)
        assert missed > 0
        assert broken.node("node1").radio_mj \
            > healthy.node("node1").radio_mj

    def test_per_node_skews_are_distinct(self):
        scenario, _, _ = run_with_skew(100.0)
        skews = {node.mac._skew_ppm for node in scenario.nodes}
        assert len(skews) == len(scenario.nodes)
        assert all(abs(s) <= 100.0 for s in skews)
