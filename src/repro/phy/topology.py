"""Network topology / connectivity models.

A topology answers one question for the channel: *can radio B hear radio
A?*  Three implementations cover the BAN scenarios in the paper:

* :class:`FullConnectivity` — every node hears every other node; this is
  the paper's case-study setting (a body-area network is a single radio
  domain) and the default.
* :class:`BodyTopology` — nodes at named body positions with Euclidean
  positions in metres and a configurable radio range; the paper's typical
  configuration ("a biopotential node on each limb ... one on the chest
  ... and one on the head", Section 3) ships as a preset.
* :class:`ExplicitLinks` — an arbitrary directed reachability set, for
  tests and asymmetric-link studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Set, Tuple


class Topology:
    """Base class: symmetric full connectivity unless overridden."""

    def in_range(self, src: str, dst: str) -> bool:
        """Whether a frame transmitted by ``src`` reaches ``dst``."""
        raise NotImplementedError

    def connectivity_graph(self, nodes: Iterable[str]) -> Any:
        """Reachability as a ``networkx.DiGraph`` (requires networkx)."""
        import networkx as nx
        graph = nx.DiGraph()
        node_list = list(nodes)
        graph.add_nodes_from(node_list)
        for a in node_list:
            for b in node_list:
                if a != b and self.in_range(a, b):
                    graph.add_edge(a, b)
        return graph


class FullConnectivity(Topology):
    """Single broadcast domain: everyone hears everyone."""

    def in_range(self, src: str, dst: str) -> bool:
        return src != dst


@dataclass(frozen=True)
class Position:
    """A 3-D position on/around the body, in metres."""

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return math.sqrt((self.x - other.x) ** 2
                         + (self.y - other.y) ** 2
                         + (self.z - other.z) ** 2)


#: The paper's "typical configuration" (Section 3): one node per limb,
#: one on the chest (ECG), one on the head (EEG); the base station worn
#: at the waist.  Coordinates are metres on an adult body, y vertical.
BODY_PRESET: Dict[str, Position] = {
    "base_station": Position(0.00, 1.00),
    "chest": Position(0.00, 1.35),
    "head": Position(0.00, 1.70),
    "left_arm": Position(-0.40, 1.10),
    "right_arm": Position(0.40, 1.10),
    "left_leg": Position(-0.15, 0.40),
    "right_leg": Position(0.15, 0.40),
}


class BodyTopology(Topology):
    """Distance-threshold connectivity between named body positions.

    Args:
        positions: map of node id -> :class:`Position`.
        range_m: maximum distance at which frames are received.  The
            nRF2401 at -5 dBm covers several metres, so with the default
            2 m every on-body link is up; shrinking it creates partitions
            (used in tests and robustness studies).
    """

    def __init__(self, positions: Dict[str, Position],
                 range_m: float = 2.0) -> None:
        if range_m <= 0:
            raise ValueError(f"range must be positive: {range_m}")
        self._positions = dict(positions)
        self._range_m = range_m
        # Positions are copied and immutable, so pairwise reachability
        # never changes; memoise it (the channel asks per transmission).
        self._range_memo: Dict[Tuple[str, str], bool] = {}

    @classmethod
    def body_preset(cls, range_m: float = 2.0) -> "BodyTopology":
        """The Section 3 body layout."""
        return cls(BODY_PRESET, range_m=range_m)

    def position_of(self, node: str) -> Position:
        """Position of ``node``; KeyError with the known ids otherwise."""
        try:
            return self._positions[node]
        except KeyError:
            raise KeyError(
                f"unknown node {node!r}; known: {sorted(self._positions)}"
            ) from None

    def nodes(self) -> Tuple[str, ...]:
        """Known node ids, in insertion order."""
        return tuple(self._positions)

    def in_range(self, src: str, dst: str) -> bool:
        key = (src, dst)
        memo = self._range_memo
        if key in memo:
            return memo[key]
        if src == dst:
            result = False
        else:
            distance = self.position_of(src).distance_to(
                self.position_of(dst))
            result = distance <= self._range_m
        memo[key] = result
        return result


class ExplicitLinks(Topology):
    """Arbitrary directed reachability, given as (src, dst) pairs."""

    def __init__(self, links: Iterable[Tuple[str, str]]) -> None:
        self._links: Set[Tuple[str, str]] = set(links)

    def in_range(self, src: str, dst: str) -> bool:
        return src != dst and (src, dst) in self._links


__all__ = [
    "Topology",
    "FullConnectivity",
    "Position",
    "BODY_PRESET",
    "BodyTopology",
    "ExplicitLinks",
]
