"""Benchmark: Table 4 — Rpeak application, dynamic TDMA, node sweep.

Regenerates Table 4 (200 Hz beat detection, 10 ms slots, 1-5 nodes,
60 s).  Same dynamic-TDMA caveat as Table 2: the acceptance band is
against the hardware column (< 7% average), plus the monotone shape.
"""

from conftest import record_table, run_once
from repro.analysis.experiments import reproduce_table4


def test_table4_rpeak_dynamic_tdma(benchmark, measure_s):
    result = run_once(benchmark, reproduce_table4, measure_s=measure_s)
    record_table(benchmark, result)

    assert result.mean_error("real", "radio") < 0.07
    assert result.mean_error("real", "mcu") < 0.06
    assert result.mean_error("paper_sim", "radio") < 0.10
    assert result.mean_error("paper_sim", "mcu") < 0.06

    radios = [row.radio_ours_mj for row in result.rows]
    assert radios == sorted(radios, reverse=True)
    # 1 -> 5 nodes shrinks per-node radio energy ~2.3x (paper real:
    # 507.1 / 222.1).
    assert 1.9 < radios[0] / radios[-1] < 2.9

    # Every individual row stays within 10% of the hardware value.
    for row in result.rows:
        assert row.error_vs("real", "radio") < 0.10
        assert row.error_vs("real", "mcu") < 0.10
