"""Energy estimation model — the paper's primary contribution.

* :mod:`repro.core.states` / :mod:`repro.core.ledger` — the time-in-state
  accounting machinery (E = I * Vdd * t per power state),
* :mod:`repro.core.calibration` — every published and fitted constant,
  with derivations,
* :mod:`repro.core.losses` — the Section 4.2 loss taxonomy (collisions,
  idle listening, overhearing, control overhead) as a first-class output,
* :mod:`repro.core.report` — result dataclasses and paper-style tables.
"""

from .calibration import (
    DEFAULT_CALIBRATION,
    MCU_COSTS,
    RADIO_TIMING,
    SUPPLY_V,
    SYNC_CALIBRATION,
    McuCosts,
    ModelCalibration,
    RadioTiming,
    SyncCalibration,
)
from .ledger import PowerStateLedger
from .losses import (
    WASTE_CATEGORIES,
    LossAccountant,
    LossBreakdown,
    RadioEnergyCategory,
)
from .report import (
    NetworkEnergyResult,
    NodeEnergyResult,
    TrafficCounters,
    render_loss_breakdown,
    render_table,
)
from .states import PowerState, PowerStateTable

__all__ = [
    "DEFAULT_CALIBRATION",
    "MCU_COSTS",
    "RADIO_TIMING",
    "SUPPLY_V",
    "SYNC_CALIBRATION",
    "McuCosts",
    "ModelCalibration",
    "RadioTiming",
    "SyncCalibration",
    "PowerStateLedger",
    "WASTE_CATEGORIES",
    "LossAccountant",
    "LossBreakdown",
    "RadioEnergyCategory",
    "NetworkEnergyResult",
    "NodeEnergyResult",
    "TrafficCounters",
    "render_loss_breakdown",
    "render_table",
    "PowerState",
    "PowerStateTable",
]
