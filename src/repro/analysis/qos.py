"""Quality-of-service metrics and the energy/latency Pareto frontier.

Energy is half of a BAN design problem; the other half is how fast
vital-sign events reach the clinician.  The TDMA cycle couples them
directly — a longer cycle saves radio energy (fewer beacon windows per
second) but delays every beat report by up to a cycle.  This module
measures that latency from simulation output and finds the
Pareto-optimal operating points.

**Latency definition**: a beat report carries its on-node detection
time (``detected_at_s``); the base station stamps its delivery time.
Report latency = delivery − detection: it contains the wait for the
node's next TDMA slot plus queueing behind earlier reports.

The Pareto tooling is generic: any (cost, quality) pairs work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..net.scenario import BanScenario, BanScenarioConfig
from .experiments import REPORTED_NODE


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of report latencies, in seconds."""

    samples: Tuple[float, ...]

    @property
    def n(self) -> int:
        """Number of reports measured."""
        return len(self.samples)

    @property
    def mean(self) -> float:
        """Mean latency."""
        return sum(self.samples) / self.n if self.samples else 0.0

    @property
    def maximum(self) -> float:
        """Worst observed latency."""
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """q-quantile by nearest-rank (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q out of (0,1]: {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          round(q * len(ordered)) - 1))
        return ordered[rank]


def beat_report_latencies(scenario: BanScenario,
                          node_id: str = REPORTED_NODE) -> LatencyStats:
    """Latencies of every beat report delivered from ``node_id``.

    Requires a run() to have completed; reads the base station's
    timestamped delivery log.
    """
    samples: List[float] = []
    for arrival_s, frame in scenario.base_station.deliveries:
        if frame.src != node_id:
            continue
        payload = frame.payload
        if not isinstance(payload, dict):
            continue
        detected = payload.get("detected_at_s")
        if detected is None:
            continue
        samples.append(arrival_s - detected)
    return LatencyStats(samples=tuple(samples))


# ---------------------------------------------------------------------------
# Pareto machinery
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    label: str
    energy_mj: float
    latency_s: float
    detail: Optional[object] = None


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset (minimise both energy and latency).

    A point is dominated when another is no worse on both axes and
    strictly better on at least one.
    """
    front: List[DesignPoint] = []
    for candidate in points:
        dominated = False
        for other in points:
            if other is candidate:
                continue
            if (other.energy_mj <= candidate.energy_mj
                    and other.latency_s <= candidate.latency_s
                    and (other.energy_mj < candidate.energy_mj
                         or other.latency_s < candidate.latency_s)):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    front.sort(key=lambda p: p.energy_mj)
    return front


def evaluate_rpeak_cycles(cycles_ms: Sequence[float],
                          measure_s: float = 20.0,
                          num_nodes: int = 5,
                          heart_rate_bpm: float = 75.0,
                          seed: int = 0) -> List[DesignPoint]:
    """The canonical energy/latency sweep: Rpeak over static TDMA with
    the cycle length as the tuning knob."""
    points: List[DesignPoint] = []
    for cycle_ms in cycles_ms:
        config = BanScenarioConfig(
            mac="static", app="rpeak", num_nodes=num_nodes,
            cycle_ms=cycle_ms, heart_rate_bpm=heart_rate_bpm,
            measure_s=measure_s, seed=seed)
        scenario = BanScenario(config)
        result = scenario.run()
        node = result.node(REPORTED_NODE)
        latency = beat_report_latencies(scenario)
        points.append(DesignPoint(
            label=f"rpeak@{cycle_ms:.0f}ms",
            energy_mj=node.total_mj,
            latency_s=latency.mean,
            detail={"latency": latency, "node": node},
        ))
    return points


def render_tradeoff(points: Sequence[DesignPoint]) -> str:
    """Text table of a design sweep with the frontier marked."""
    front = set(id(p) for p in pareto_front(points))
    lines = [f"{'config':<16} {'energy (mJ)':>12} {'latency (ms)':>13} "
             f"{'Pareto':>7}"]
    for point in sorted(points, key=lambda p: p.energy_mj):
        marker = "*" if id(point) in front else ""
        lines.append(f"{point.label:<16} {point.energy_mj:>12.1f} "
                     f"{1e3 * point.latency_s:>13.1f} {marker:>7}")
    return "\n".join(lines)


__all__ = ["LatencyStats", "beat_report_latencies", "DesignPoint",
           "pareto_front", "evaluate_rpeak_cycles", "render_tradeoff"]
