"""Metrics registry: named instruments with mergeable snapshots.

The paper's contribution is *accounting* — attributing every joule to a
power state and a cause — yet the runtime only surfaced end-of-run
totals.  :class:`MetricsRegistry` is the missing middle layer: a process
-local registry of **counters**, **gauges**, **histograms**,
**state timers** (per-state residency/energy maps) and **series**
(timestamped trajectories), each keyed by ``component/node/name``.

Design constraints, in priority order:

1. **Zero cost when disabled.**  Nothing in the simulation core holds a
   registry unless one was explicitly attached; the kernel's hot loops
   never consult one per event.  All model instrumentation is *pull*
   based — components expose ``observe_metrics`` methods that read the
   counters/ledgers they already maintain — so an enabled registry
   cannot perturb event order, RNG streams or energy figures either.
2. **Mergeable.**  Worker processes build private registries and ship
   :meth:`MetricsRegistry.snapshot` dicts back; the parent merges them
   with :meth:`MetricsRegistry.merge_snapshot`.  Counters, histograms,
   state timers and series merge additively, so a ``--jobs N`` run
   reports exactly the counters a sequential run does.
3. **Exportable.**  :meth:`to_json` and :meth:`to_prometheus` render
   the same snapshot as machine-readable JSON or Prometheus text
   exposition format.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

#: Placeholder node label for network-wide (non-per-node) instruments.
GLOBAL = "-"

#: Default histogram bucket upper bounds (seconds-flavoured but generic;
#: spans 100 us .. 100 s, which covers scenario wall times and dispatch
#: latencies alike).
DEFAULT_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
                   100.0)


def metric_key(component: str, node: str, name: str) -> str:
    """The canonical flat key: ``component/node/name``."""
    return f"{component}/{node}/{name}"


def split_key(key: str) -> Tuple[str, str, str]:
    """Inverse of :func:`metric_key`."""
    component, node, name = key.split("/", 2)
    return component, node, name


class Counter:
    """A monotonically increasing count (events, frames, cache hits)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, state of charge, rate)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """A weighted value distribution over fixed bucket bounds.

    ``observe(value, weight)`` supports *time-weighted* use: pass the
    duration a value was held as its weight (e.g. queue depth weighted
    by the time spent at that depth) and the histogram's mean becomes a
    time average rather than a sample average.
    """

    __slots__ = ("bounds", "bucket_weights", "count", "total", "min",
                 "max")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_weights: List[float] = [0.0] * (len(self.bounds) + 1)
        self.count = 0.0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, weight: float = 1.0) -> None:
        """Record ``value`` with the given ``weight``."""
        if weight < 0:
            raise ValueError(f"negative weight: {weight}")
        self.bucket_weights[bisect_left(self.bounds, value)] += weight
        self.count += weight
        self.total += value * weight
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Weighted mean of the observed values (0 when empty)."""
        return self.total / self.count if self.count else 0.0


class StateTimer:
    """Per-state residency accumulator (seconds, energy, anything).

    The paper's model is time-in-state; this instrument is its metrics
    mirror: a mapping from state name to an additive total.
    """

    __slots__ = ("states",)

    def __init__(self) -> None:
        self.states: Dict[str, float] = {}

    def add(self, state: str, amount: float) -> None:
        """Accumulate ``amount`` under ``state``."""
        self.states[state] = self.states.get(state, 0.0) + amount

    def total(self) -> float:
        """Sum over all states."""
        return sum(self.states.values())


class Series:
    """A bounded timestamped trajectory: ``(time_s, value)`` points.

    Periodic on-sim-timer snapshots append here so long runs expose
    *trajectories* (state of charge draining, queue depth breathing)
    rather than only endpoints.
    """

    __slots__ = ("points", "capacity", "dropped")

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.points: List[Tuple[float, float]] = []
        self.capacity = capacity
        self.dropped = 0

    def append(self, time_s: float, value: float) -> None:
        """Append one sample, evicting the oldest past ``capacity``."""
        self.points.append((time_s, value))
        if self.capacity is not None and len(self.points) > self.capacity:
            overflow = len(self.points) - self.capacity
            del self.points[:overflow]
            self.dropped += overflow


class MetricsRegistry:
    """Keyed store of instruments with snapshot/merge/export.

    Instruments are created on first access and cached, so call sites
    simply write ``registry.counter("mac", node, "collisions").inc()``.
    The registry itself never touches simulation state: attaching one
    cannot change an energy figure.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._state_timers: Dict[str, StateTimer] = {}
        self._series: Dict[str, Series] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, component: str, node: str, name: str) -> Counter:
        """The counter at ``component/node/name`` (created on demand)."""
        key = metric_key(component, node, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, component: str, node: str, name: str) -> Gauge:
        """The gauge at ``component/node/name`` (created on demand)."""
        key = metric_key(component, node, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, component: str, node: str, name: str,
                  bounds: Iterable[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram at ``component/node/name`` (created on demand)."""
        key = metric_key(component, node, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def state_timer(self, component: str, node: str,
                    name: str) -> StateTimer:
        """The state timer at ``component/node/name``."""
        key = metric_key(component, node, name)
        instrument = self._state_timers.get(key)
        if instrument is None:
            instrument = self._state_timers[key] = StateTimer()
        return instrument

    def series(self, component: str, node: str, name: str,
               capacity: Optional[int] = None) -> Series:
        """The series at ``component/node/name``."""
        key = metric_key(component, node, name)
        instrument = self._series.get(key)
        if instrument is None:
            instrument = self._series[key] = Series(capacity)
        return instrument

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms) + len(self._state_timers)
                + len(self._series))

    # ------------------------------------------------------------------
    # Snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A plain-data view of every instrument (JSON-serialisable)."""
        return {
            "counters": {key: c.value
                         for key, c in sorted(self._counters.items())},
            "gauges": {key: g.value
                       for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: {"bounds": list(h.bounds),
                      "bucket_weights": list(h.bucket_weights),
                      "count": h.count, "total": h.total,
                      "min": h.min, "max": h.max, "mean": h.mean}
                for key, h in sorted(self._histograms.items())},
            "state_timers": {key: dict(sorted(t.states.items()))
                             for key, t
                             in sorted(self._state_timers.items())},
            "series": {key: [list(point) for point in s.points]
                       for key, s in sorted(self._series.items())},
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict]) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker) into this
        registry: counters/histograms/state timers/series add, gauges
        take the incoming value (last write wins).
        """
        for key, value in snapshot.get("counters", {}).items():
            component, node, name = split_key(key)
            self.counter(component, node, name).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            component, node, name = split_key(key)
            self.gauge(component, node, name).set(value)
        for key, data in snapshot.get("histograms", {}).items():
            component, node, name = split_key(key)
            histogram = self.histogram(component, node, name,
                                       bounds=data["bounds"])
            if tuple(data["bounds"]) != histogram.bounds:
                raise ValueError(
                    f"histogram {key!r}: bucket bounds differ, "
                    "cannot merge")
            for index, weight in enumerate(data["bucket_weights"]):
                histogram.bucket_weights[index] += weight
            histogram.count += data["count"]
            histogram.total += data["total"]
            for bound_name in ("min", "max"):
                incoming = data.get(bound_name)
                if incoming is None:
                    continue
                current = getattr(histogram, bound_name)
                pick = min if bound_name == "min" else max
                setattr(histogram, bound_name,
                        incoming if current is None
                        else pick(current, incoming))
        for key, states in snapshot.get("state_timers", {}).items():
            component, node, name = split_key(key)
            timer = self.state_timer(component, node, name)
            for state, amount in states.items():
                timer.add(state, amount)
        for key, points in snapshot.get("series", {}).items():
            component, node, name = split_key(key)
            series = self.series(component, node, name)
            for time_s, value in points:
                series.append(time_s, value)
            series.points.sort(key=lambda point: point[0])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self, indent: int = 2) -> str:
        """The snapshot as pretty-printed JSON text."""
        return json.dumps(self.snapshot(), indent=indent,
                          sort_keys=True) + "\n"

    def to_prometheus(self, prefix: str = "repro") -> str:
        """The snapshot in Prometheus text exposition format.

        Counters/gauges become ``<prefix>_<name>{component=...,node=...}``
        samples; histograms emit ``_bucket``/``_sum``/``_count``
        families; state timers emit one sample per state.  Series are
        omitted (Prometheus scrapes are point-in-time).  Each metric
        family gets one ``# HELP`` + ``# TYPE`` header (emitted before
        its first sample, never repeated), and label values are escaped
        per the exposition format (backslash, double quote, newline).
        """
        lines: List[str] = []
        headed: Dict[str, str] = {}

        def header(name: str, kind: str, help_text: str) -> None:
            family = f"{prefix}_{_prom_name(name)}"
            if family in headed:
                return
            headed[family] = kind
            lines.append(f"# HELP {family} {_prom_escape(help_text)}")
            lines.append(f"# TYPE {family} {kind}")

        def sample(name: str, labels: Dict[str, str],
                   value: object) -> str:
            body = ",".join(f'{k}="{_prom_escape(v)}"'
                            for k, v in labels.items())
            return f"{prefix}_{_prom_name(name)}{{{body}}} {value}"

        for key, counter in sorted(self._counters.items()):
            component, node, name = split_key(key)
            header(name, "counter",
                   f"monotonic count '{name}' by component/node")
            lines.append(sample(name, {"component": component,
                                       "node": node}, counter.value))
        for key, gauge in sorted(self._gauges.items()):
            component, node, name = split_key(key)
            header(name, "gauge",
                   f"point-in-time value '{name}' by component/node")
            lines.append(sample(name, {"component": component,
                                       "node": node}, gauge.value))
        for key, timer in sorted(self._state_timers.items()):
            component, node, name = split_key(key)
            header(name, "gauge",
                   f"per-state accumulator '{name}' "
                   "by component/node/state")
            for state, amount in sorted(timer.states.items()):
                lines.append(sample(name, {"component": component,
                                           "node": node, "state": state},
                                    amount))
        for key, histogram in sorted(self._histograms.items()):
            component, node, name = split_key(key)
            header(name, "histogram",
                   f"weighted distribution '{name}' by component/node")
            cumulative = 0.0
            for bound, weight in zip(histogram.bounds,
                                     histogram.bucket_weights):
                cumulative += weight
                lines.append(sample(
                    f"{name}_bucket",
                    {"component": component, "node": node,
                     "le": repr(bound)}, cumulative))
            lines.append(sample(
                f"{name}_bucket",
                {"component": component, "node": node, "le": "+Inf"},
                histogram.count))
            lines.append(sample(f"{name}_sum",
                                {"component": component, "node": node},
                                histogram.total))
            lines.append(sample(f"{name}_count",
                                {"component": component, "node": node},
                                histogram.count))
        return "\n".join(lines) + "\n"


def _prom_name(name: str) -> str:
    """Sanitise a metric name for Prometheus (``[a-zA-Z0-9_]``)."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)


def _prom_escape(value: str) -> str:
    """Escape a label value (or help text) for the exposition format:
    backslash, double quote and newline must be backslash-escaped or
    the line structure of the scrape breaks."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


__all__ = ["Counter", "Gauge", "Histogram", "StateTimer", "Series",
           "MetricsRegistry", "metric_key", "split_key", "GLOBAL",
           "DEFAULT_BUCKETS"]
