"""Ablations A2 and A3: the nRF2401 hardware filters.

Section 4.2 of the paper motivates two radio-chip features its model
captures and stock TOSSIM does not:

* **A2 — address filter** (overhearing): frames addressed to other
  nodes are dropped inside the radio, so the MCU never wakes for them.
  We disable the filter on one node parked in always-listen mode and
  measure the MCU cost of software discards.
* **A3 — CRC** (collisions): with the CRC modelled, colliding slot
  requests are *detected* and retried; with it off (TOSSIM's logical-OR
  optimism) corrupted frames are delivered as if valid.  We count both
  under a contended dynamic-TDMA join burst.
"""

from conftest import bench_measure_s, run_once
from repro.core.losses import RadioEnergyCategory
from repro.net.scenario import BanScenario, BanScenarioConfig


def run_overhearing(measure_s: float):
    """Same 5-node streaming BAN, but with an always-listen guard (the
    wake-up lead spans nearly the whole cycle) so every node's receiver
    is exposed to the other four nodes' transmissions — once with and
    once without the last node's hardware address filter (node5 owns the
    final slot, so its open receiver is exposed to slots 1-4)."""
    from repro.mac.sync import FixedLead
    from repro.sim.simtime import milliseconds
    results = {}
    for filter_enabled in (True, False):
        config = BanScenarioConfig(
            mac="static", app="ecg_streaming", num_nodes=5,
            cycle_ms=30.0, sampling_hz=205.0, measure_s=measure_s,
            sync_policy_factory=lambda cal: FixedLead(milliseconds(29)))
        scenario = BanScenario(config)
        scenario.nodes[-1].radio.address_filter_enabled = filter_enabled
        results[filter_enabled] = (scenario, scenario.run())
    return results


def test_ablation_overhearing_address_filter(benchmark):
    measure_s = bench_measure_s()
    results = run_once(benchmark, run_overhearing, measure_s)

    _, with_filter = results[True]
    _, without_filter = results[False]
    node_hw = with_filter.node("node5")
    node_sw = without_filter.node("node5")

    benchmark.extra_info["overheard_frames"] = node_hw.traffic.overheard
    benchmark.extra_info["mcu_hw_filter_mj"] = round(node_hw.mcu_mj, 1)
    benchmark.extra_info["mcu_sw_filter_mj"] = round(node_sw.mcu_mj, 1)
    print(f"\nA2 overhearing over {measure_s:.0f} s: "
          f"{node_hw.traffic.overheard} frames overheard; MCU "
          f"{node_hw.mcu_mj:.1f} mJ (hw filter) vs "
          f"{node_sw.mcu_mj:.1f} mJ (software discard)")

    # The always-on receiver overhears the other four nodes' packets.
    assert node_hw.traffic.overheard > 0
    assert node_hw.losses.energy_j[RadioEnergyCategory.OVERHEARING] > 0
    # With the filter, the MCU never sees them; without it, it pays a
    # reception cost per frame.
    assert node_sw.mcu_mj > node_hw.mcu_mj
    # Radio energy is identical either way: the RF front end listens
    # regardless (the filter only saves MCU work).
    assert abs(node_sw.radio_mj - node_hw.radio_mj) \
        < 0.01 * node_hw.radio_mj


def run_collisions(measure_s: float, crc_enabled: bool):
    """Five nodes join a dynamic-TDMA network simultaneously: their
    first slot requests contend inside one ES window."""
    # Seed chosen so the five initial SSRs demonstrably collide in the
    # shared ES window (most seeds do; this one produces a multi-round
    # contention that exercises the retry path).
    config = BanScenarioConfig(mac="dynamic", app="rpeak", num_nodes=5,
                               join_protocol=True, measure_s=measure_s,
                               seed=20)
    scenario = BanScenario(config)
    for node in scenario.nodes:
        node.radio.crc_enabled = crc_enabled
    scenario.base_station.radio.crc_enabled = crc_enabled
    result = scenario.run()
    return scenario, result


def test_ablation_crc_collision_detection(benchmark):
    measure_s = min(bench_measure_s(), 20.0)
    scenario, _ = run_once(benchmark, run_collisions, measure_s, True)

    collisions = scenario.channel.collisions_detected
    retries = sum(node.mac.counters.slot_requests_sent
                  for node in scenario.nodes)
    benchmark.extra_info["collisions_detected"] = collisions
    benchmark.extra_info["slot_requests_sent"] = retries
    print(f"\nA3 CRC ablation: {collisions} collision corruptions "
          f"detected, {retries} slot requests to seat 5 nodes")

    # Five simultaneous joiners in a 10 ms ES window collide; the CRC
    # detects it and random retries converge.
    assert collisions > 0
    assert all(node.mac.is_synced for node in scenario.nodes)
    assert retries > 5  # the collided requests were retried

    # Counter-factual: with the CRC off, the same contention delivers
    # corrupted frames as if valid (stock-TOSSIM optimism) — collisions
    # still *happen* but nothing is dropped at the radios.
    scenario_off, _ = run_collisions(measure_s, False)
    corrupted_counted = sum(
        node.radio.snapshot_counters().corrupted
        for node in scenario_off.nodes) \
        + scenario_off.base_station.radio.snapshot_counters().corrupted
    assert corrupted_counted == 0
