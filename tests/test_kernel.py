"""Unit tests for the discrete-event kernel and event queue."""

import pytest

from repro.sim.events import (
    EVT_LABEL,
    Event,
    EventQueue,
    SimulationError,
    cancel_event,
    event_cancelled,
)
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(30, lambda: None, "c")
        queue.push(10, lambda: None, "a")
        queue.push(20, lambda: None, "b")
        assert [queue.pop()[EVT_LABEL] for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        queue = EventQueue()
        for label in "abcde":
            queue.push(5, lambda: None, label)
        assert [queue.pop()[EVT_LABEL] for _ in range(5)] == list("abcde")

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None, "dead")
        queue.push(2, lambda: None, "alive")
        cancel_event(first)
        assert queue.pop()[EVT_LABEL] == "alive"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None, "dead")
        queue.push(7, lambda: None, "alive")
        cancel_event(first)
        assert queue.peek_time() == 7

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_len_counts_entries(self):
        queue = EventQueue()
        queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert len(queue) == 2

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        stub = queue.push(1, lambda: None, "dead")
        queue.push(2, lambda: None, "alive")
        queue.push(3, lambda: None, "alive-too")
        cancel_event(stub)
        assert len(queue) == 2

    def test_len_empty_after_cancelling_everything(self):
        queue = EventQueue()
        entries = [queue.push(t, lambda: None) for t in (1, 2, 3)]
        for entry in entries:
            cancel_event(entry)
        assert len(queue) == 0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1, lambda: None)
        queue.clear()
        assert queue.pop() is None

    def test_cancel_event_flag(self):
        queue = EventQueue()
        entry = queue.push(1, lambda: None)
        assert not event_cancelled(entry)
        cancel_event(entry)
        assert event_cancelled(entry)

    def test_event_view_cancel_flag(self):
        event = Event(time=0, seq=0, callback=lambda: None)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled

    def test_event_view_is_valid_heap_entry(self):
        # Event instances and raw entries share one layout, so a view
        # pushed by hand interoperates with raw entries on the heap.
        from heapq import heappush

        queue = EventQueue()
        queue.push(5, lambda: None, "raw")
        heappush(queue._heap, Event(3, -1, lambda: None, "view"))
        assert queue.pop()[EVT_LABEL] == "view"
        assert queue.pop()[EVT_LABEL] == "raw"


class TestSimulatorScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_after_schedules_relative(self):
        sim = Simulator()
        fired = []
        sim.after(100, lambda: fired.append(sim.now))
        sim.run_until(200)
        assert fired == [100]

    def test_at_schedules_absolute(self):
        sim = Simulator()
        fired = []
        sim.at(150, lambda: fired.append(sim.now))
        sim.run_until(200)
        assert fired == [150]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.after(10, lambda: None)
        sim.run_until(50)
        with pytest.raises(SimulationError):
            sim.at(20, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1, lambda: None)

    def test_call_soon_runs_after_queued_same_time(self):
        sim = Simulator()
        order = []
        sim.at(10, lambda: order.append("first"))

        def second():
            order.append("second")
            sim.call_soon(lambda: order.append("third"))

        sim.at(10, second)
        sim.run_until(10)
        assert order == ["first", "second", "third"]

    def test_run_until_advances_clock_to_horizon(self):
        sim = Simulator()
        sim.run_until(1_000)
        assert sim.now == 1_000

    def test_run_until_backwards_raises(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimulationError):
            sim.run_until(50)

    def test_events_beyond_horizon_not_dispatched(self):
        sim = Simulator()
        fired = []
        sim.at(500, lambda: fired.append(1))
        sim.run_until(499)
        assert fired == []
        sim.run_until(500)
        assert fired == [1]

    def test_run_all_drains_queue(self):
        sim = Simulator()
        fired = []
        sim.at(5, lambda: fired.append("a"))
        sim.at(9, lambda: fired.append("b"))
        sim.run_all()
        assert fired == ["a", "b"]
        assert sim.now == 9

    def test_run_all_event_limit(self):
        sim = Simulator()

        def reschedule():
            sim.after(1, reschedule)

        sim.after(1, reschedule)
        with pytest.raises(SimulationError):
            sim.run_all(max_events=100)

    def test_exception_in_callback_is_annotated(self):
        sim = Simulator()

        def boom():
            raise ValueError("inner failure")

        sim.at(10, boom, label="exploding")
        with pytest.raises(SimulationError, match="exploding"):
            sim.run_until(10)

    def test_end_hooks_run_at_horizon(self):
        sim = Simulator()
        seen = []
        sim.add_end_hook(lambda: seen.append(sim.now))
        sim.run_until(1234)
        assert seen == [1234]

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        stub = sim.at(20, lambda: None)
        sim.at(30, lambda: None)
        assert sim.pending_events() == 3
        cancel_event(stub)
        assert sim.pending_events() == 2
        sim.run_until(30)
        assert sim.pending_events() == 0

    def test_events_dispatched_counter(self):
        sim = Simulator()
        for t in (1, 2, 3):
            sim.at(t, lambda: None)
        sim.run_until(10)
        assert sim.events_dispatched == 3

    def test_trace_records_dispatches(self):
        trace = TraceRecorder()
        sim = Simulator(trace=trace)
        sim.at(10, lambda: None, label="tick")
        sim.run_until(10)
        records = trace.filter(source="kernel")
        assert len(records) == 1
        assert records[0].detail == "tick"


class TestDeterminism:
    def test_same_seed_same_rng_sequence(self):
        first = Simulator(seed=42)
        second = Simulator(seed=42)
        a = [first.rng.stream("x").random() for _ in range(5)]
        b = [second.rng.stream("x").random() for _ in range(5)]
        assert a == b

    def test_different_seed_differs(self):
        a = Simulator(seed=1).rng.stream("x").random()
        b = Simulator(seed=2).rng.stream("x").random()
        assert a != b


class TestEvery:
    """Simulator.every re-arms one heap entry in place; its dispatch
    order must be indistinguishable from a naive per-fire at() re-arm."""

    def _run_and_log(self, schedule):
        sim = Simulator()
        log = []

        def make_handler(name):
            def handler():
                log.append((sim.now, name))
                # Coincident one-shot: its sequence number interleaves
                # with the re-arm's, so any seq-order drift shows up.
                sim.at(sim.now, lambda: log.append((sim.now,
                                                    name + ".echo")))
            return handler

        schedule(sim, make_handler)
        sim.run_until(2000)
        return log

    def test_matches_naive_at_rearm_ordering(self):
        def with_every(sim, make_handler):
            sim.every(70, make_handler("p70"))
            sim.every(110, make_handler("p110"), first_delay=30)

        def with_at(sim, make_handler):
            def arm(period, handler, first):
                def fire():
                    # Old formulation: re-arm (consuming the next seq)
                    # before the handler body runs.
                    sim.at(sim.now + period, fire)
                    handler()
                sim.at(first, fire)

            arm(70, make_handler("p70"), 70)
            arm(110, make_handler("p110"), 30)

        assert self._run_and_log(with_every) \
            == self._run_and_log(with_at)

    def test_cancelling_the_entry_stops_the_cycle(self):
        sim = Simulator()
        fired = []
        entry = sim.every(10, lambda: fired.append(sim.now))
        sim.run_until(35)
        cancel_event(entry)
        sim.run_until(100)
        assert fired == [10, 20, 30]

    def test_first_delay_zero_fires_immediately(self):
        sim = Simulator()
        fired = []
        sim.every(10, lambda: fired.append(sim.now), first_delay=0)
        sim.run_until(25)
        assert fired == [0, 10, 20]

    def test_invalid_period_and_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.every(0, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(-5, lambda: None)
        with pytest.raises(SimulationError):
            sim.every(10, lambda: None, first_delay=-1)
