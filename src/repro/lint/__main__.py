"""``python -m repro.lint`` dispatches to the lint CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
