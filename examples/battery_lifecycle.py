#!/usr/bin/env python3
"""Battery lifecycle: watching a node drain, alert, and (maybe) survive.

The platform's mission is autonomy.  This example runs one Rpeak node
on a deliberately tiny cell so its whole battery life fits in a short
simulation, and exercises the operational side of the energy model:

1. a :class:`BatteryMonitor` tracks state of charge on-line and fires
   threshold alerts (50% / 20% / 5%) during the run;
2. at the 20% alert the *deployment* reacts the way the ablations say
   it should — the simulation is re-run with the tight drift-tracking
   guard to show the lifetime a firmware update would buy;
3. finally the same node is judged against wearable harvesters: what
   cell size (if any) makes it energy-neutral.

Run:  python examples/battery_lifecycle.py
"""

from repro.hw.battery import Battery
from repro.hw.scavenger import ConstantHarvest, harvesting_budget
from repro.mac.sync import DriftTrackingLead
from repro.net.monitor import BatteryMonitor
from repro.net.scenario import BanScenario, BanScenarioConfig
from repro.sim.simtime import seconds, to_seconds

#: A toy cell (0.1 mAh) so depletion fits in ~1 minute of simulation.
TOY_CELL = Battery(capacity_mah=0.1, voltage_v=2.8, usable_fraction=1.0)

RUN_S = 60.0


def run_with_monitor(sync_factory=None):
    config = BanScenarioConfig(mac="static", app="rpeak", num_nodes=1,
                               cycle_ms=120.0, measure_s=RUN_S,
                               sync_policy_factory=sync_factory)
    scenario = BanScenario(config)
    monitor = BatteryMonitor(scenario.nodes[0], TOY_CELL,
                             include_asic=True, sample_period_s=0.5,
                             thresholds=(0.5, 0.2, 0.05))
    alerts = []
    for threshold in (0.5, 0.2, 0.05):
        monitor.on_threshold(
            threshold,
            lambda node_id, t, soc: alerts.append(
                (to_seconds(scenario.sim.now), t, soc)))
    monitor.start()
    scenario.run()
    return scenario, monitor, alerts


def main() -> None:
    print(f"Running one Rpeak node on a {TOY_CELL.capacity_mah} mAh "
          f"cell for {RUN_S:.0f} s...")
    scenario, monitor, alerts = run_with_monitor()
    for at_s, threshold, soc in alerts:
        print(f"  t={at_s:5.1f} s  ALERT: state of charge fell past "
              f"{100 * threshold:.0f}% (now {100 * soc:.1f}%)")
    final = monitor.state_of_charge
    print(f"  end of run: {100 * final:.1f}% left"
          + ("  [DEPLETED]" if monitor.is_depleted else ""))
    estimate = monitor.estimated_remaining_s()
    if estimate is not None:
        print(f"  linear time-to-empty estimate: {estimate:.0f} s")

    print("\nReacting to the 20% alert with a firmware change "
          "(drift-tracking guard, 50 ppm):")
    _, tight_monitor, _ = run_with_monitor(
        sync_factory=lambda cal: DriftTrackingLead(tolerance_ppm=50.0))
    print(f"  same run, tight guard: "
          f"{100 * tight_monitor.state_of_charge:.1f}% left "
          f"(vs {100 * final:.1f}%)")

    print("\nEnergy-neutrality check (radio+MCU, ASIC excluded):")
    node = scenario.nodes[0].collect_result(RUN_S)
    for power_mw in (1.0, 3.0, 6.0):
        budget = harvesting_budget(node,
                                   ConstantHarvest(power_mw * 1e-3),
                                   include_asic=False)
        print(f"  {power_mw:.0f} mW harvester: {budget.render()}")


if __name__ == "__main__":
    main()
