"""Validation metrics and the paper's accuracy claims.

The paper validates its simulator by the average fractional error
between simulation and hardware per table (5.6 %, 5.5 %, 2.2 %, 4.3 %
for the radio), with an overall "average error of 4 %".  This module
computes the same metrics for our reproduction, against both references:

* **vs real** — our simulator against the authors' hardware
  measurements (are we as good a *simulator* as theirs?);
* **vs paper sim** — our simulator against theirs (did we rebuild the
  *same model*?).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .experiments import ExperimentResult


@dataclass(frozen=True)
class TableValidation:
    """Error summary of one reproduced table."""

    table_id: str
    radio_vs_real: float
    mcu_vs_real: float
    radio_vs_paper_sim: float
    mcu_vs_paper_sim: float
    paper_radio_vs_real: float
    paper_mcu_vs_real: float

    @property
    def within_paper_band(self) -> bool:
        """Whether our sim-vs-real error is no worse than ~2x the
        paper's own (their setup had measurement noise we cannot
        replicate bit-for-bit)."""
        return (self.radio_vs_real <= 2.0 * max(self.paper_radio_vs_real,
                                                0.02)
                and self.mcu_vs_real <= 2.0 * max(self.paper_mcu_vs_real,
                                                  0.02))


def validate_table(result: ExperimentResult,
                   paper_avg_error: Sequence[float]) -> TableValidation:
    """Summarise one reproduced table against the paper's printed errors.

    Args:
        result: a reproduced table.
        paper_avg_error: the paper's printed (radio, mcu) average errors.
    """
    return TableValidation(
        table_id=result.table_id,
        radio_vs_real=result.mean_error("real", "radio"),
        mcu_vs_real=result.mean_error("real", "mcu"),
        radio_vs_paper_sim=result.mean_error("paper_sim", "radio"),
        mcu_vs_paper_sim=result.mean_error("paper_sim", "mcu"),
        paper_radio_vs_real=paper_avg_error[0],
        paper_mcu_vs_real=paper_avg_error[1],
    )


@dataclass(frozen=True)
class OverallValidation:
    """Cross-table summary (the abstract's "4 % average" claim)."""

    tables: Dict[str, TableValidation]

    @property
    def overall_vs_real(self) -> float:
        """Mean of all per-table radio and MCU errors vs hardware."""
        errors: List[float] = []
        for validation in self.tables.values():
            errors.append(validation.radio_vs_real)
            errors.append(validation.mcu_vs_real)
        return sum(errors) / len(errors)

    @property
    def overall_vs_paper_sim(self) -> float:
        """Mean of all per-table errors vs the paper's simulator."""
        errors: List[float] = []
        for validation in self.tables.values():
            errors.append(validation.radio_vs_paper_sim)
            errors.append(validation.mcu_vs_paper_sim)
        return sum(errors) / len(errors)

    def render(self) -> str:
        """Human-readable summary block."""
        lines = ["Validation summary (average fractional errors)"]
        for table_id, v in sorted(self.tables.items()):
            lines.append(
                f"  {table_id}: vs real radio {100 * v.radio_vs_real:.1f}% "
                f"uC {100 * v.mcu_vs_real:.1f}%   "
                f"(paper: {100 * v.paper_radio_vs_real:.1f}% / "
                f"{100 * v.paper_mcu_vs_real:.1f}%)   "
                f"vs paper-sim radio {100 * v.radio_vs_paper_sim:.1f}% "
                f"uC {100 * v.mcu_vs_paper_sim:.1f}%")
        lines.append(
            f"  overall: {100 * self.overall_vs_real:.1f}% vs real, "
            f"{100 * self.overall_vs_paper_sim:.1f}% vs paper sim "
            f"(paper claims 4% overall)")
        return "\n".join(lines)


def validate_all(results: Dict[str, ExperimentResult],
                 paper_errors: Optional[Dict[str, Sequence[float]]] = None
                 ) -> OverallValidation:
    """Summarise a set of reproduced tables.

    Args:
        results: table_id -> reproduced result.
        paper_errors: table_id -> the paper's printed (radio, mcu)
            errors; defaults to the published values.
    """
    from ..data.paper_tables import ALL_TABLES
    if paper_errors is None:
        paper_errors = {t.table_id: t.printed_avg_error for t in ALL_TABLES}
    tables = {
        table_id: validate_table(result, paper_errors[table_id])
        for table_id, result in results.items()
    }
    return OverallValidation(tables=tables)


__all__ = ["TableValidation", "OverallValidation",
           "validate_table", "validate_all"]
